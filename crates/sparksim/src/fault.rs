//! Deterministic fault injection and the failure taxonomy of the simulated
//! cluster.
//!
//! MEMPHIS's reuse/eviction story rests on Spark's guarantee that any lost
//! or evicted partition can be recomputed from lineage. A [`FaultPlan`]
//! (injected via [`crate::config::SparkConfig`]) lets tests and experiments
//! exercise exactly that guarantee under pressure: it can fail individual
//! task attempts, kill executors at stage boundaries, and drop cached
//! partitions or shuffle map outputs at job boundaries.
//!
//! **Determinism.** Every fault decision is a pure hash of the plan seed
//! and *run-stable* coordinates — the job sequence number within the
//! context, the stage sequence number within the job, the partition index,
//! and the attempt number. Raw `RddId`/`ShuffleId` values are never hashed
//! (they come from process-global counters and differ between otherwise
//! identical runs); cached partitions are instead tagged with a hash of
//! their RDD's *name*. Consequently a driver program that issues jobs
//! sequentially sees the identical fault schedule on every run with the
//! same seed, independent of executor thread count, and the chaos suite is
//! reproducible in CI.

use std::fmt;

/// SplitMix64 finalizer: a high-quality 64-bit mixing function used to turn
/// `(seed, coordinates)` into an i.i.d.-looking decision stream.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Combines the seed, a per-fault-kind salt, and up to four coordinates
/// into a uniform value in `[0, 1)`.
fn decide(seed: u64, salt: u64, coords: [u64; 4]) -> f64 {
    let mut h = mix(seed ^ salt.wrapping_mul(0xa076_1d64_78bd_642f));
    for c in coords {
        h = mix(h ^ c);
    }
    // 53 bits of mantissa → uniform in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Stable tag for an RDD used in cache-drop decisions: a hash of the
/// operator *name* (assigned at creation), which — unlike the RDD id — is
/// identical across repeated runs of the same driver program.
pub fn name_tag(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A planned executor loss: before stage `stage` of job `job` starts, the
/// executor dies, invalidating its cached partitions and shuffle map
/// outputs (attributed deterministically by `partition % num_executors`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorKill {
    /// Job sequence number within the context (0-based, in action order).
    pub job: u64,
    /// Stage sequence number within the job (0-based; ancestor map stages
    /// first in topological order, the result stage last). Killing before
    /// the result stage of a shuffle job loses freshly written map outputs
    /// and exercises fetch-failure-driven stage resubmission.
    pub stage: u64,
    /// The executor to lose.
    pub executor: usize,
}

/// Seeded, deterministic fault-injection plan for a simulated cluster.
///
/// The default plan injects nothing; `FaultPlan::seeded(seed)` is the
/// starting point for chaos configurations.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for all probabilistic decisions.
    pub seed: u64,
    /// Probability that any individual task *attempt* fails at launch
    /// (before side effects). Retried up to
    /// [`crate::config::SparkConfig::task_max_failures`] times.
    pub task_failure_rate: f64,
    /// Probability, evaluated at each job start for each cached partition,
    /// that the partition is dropped (as if its host died between jobs).
    pub cached_drop_rate: f64,
    /// Probability, evaluated at each job start for each retained shuffle
    /// map output, that the output is lost — forcing a fetch failure and a
    /// partial map-stage resubmission when next read.
    pub shuffle_drop_rate: f64,
    /// Planned executor losses at exact (job, stage) boundaries.
    pub executor_kills: Vec<ExecutorKill>,
    /// Probability that a durable disk record write is *torn*: only a
    /// prefix of the record reaches the file and the store crashes (as if
    /// the process died mid-`write`). Keyed by the store's write sequence
    /// number.
    pub disk_torn_write_rate: f64,
    /// Probability that a durable record is silently bit-flipped on its
    /// way to disk. The write is acknowledged normally; the corruption is
    /// only detectable by the record checksum at read/recovery time.
    pub disk_corrupt_rate: f64,
    /// Probability that an fsync "succeeds" while actually losing every
    /// byte written since the previous sync, then crashing the store —
    /// the classic lying-disk/partial-fsync power-loss failure. Keyed by
    /// the store's sync sequence number.
    pub disk_partial_fsync_rate: f64,
    /// Deterministic kill switch: crash the durable store at exactly the
    /// Nth sync point (1-based; every segment fsync, manifest fsync, and
    /// manifest rename is one sync point). Bytes written since the
    /// previous sync are lost. Drives the kill-at-every-sync sweep.
    pub disk_kill_at_sync: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: no injected faults.
    pub fn none() -> Self {
        Self {
            seed: 0,
            task_failure_rate: 0.0,
            cached_drop_rate: 0.0,
            shuffle_drop_rate: 0.0,
            executor_kills: Vec::new(),
            disk_torn_write_rate: 0.0,
            disk_corrupt_rate: 0.0,
            disk_partial_fsync_rate: 0.0,
            disk_kill_at_sync: None,
        }
    }

    /// An empty plan carrying a seed, to be populated with rates/kills.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::none()
        }
    }

    /// Sets the per-attempt task failure rate.
    pub fn with_task_failure_rate(mut self, rate: f64) -> Self {
        self.task_failure_rate = rate;
        self
    }

    /// Sets the per-job cached-partition drop rate.
    pub fn with_cached_drop_rate(mut self, rate: f64) -> Self {
        self.cached_drop_rate = rate;
        self
    }

    /// Sets the per-job shuffle-map-output drop rate.
    pub fn with_shuffle_drop_rate(mut self, rate: f64) -> Self {
        self.shuffle_drop_rate = rate;
        self
    }

    /// Adds a planned executor kill.
    pub fn with_executor_kill(mut self, job: u64, stage: u64, executor: usize) -> Self {
        self.executor_kills.push(ExecutorKill {
            job,
            stage,
            executor,
        });
        self
    }

    /// Sets the torn-disk-write rate.
    pub fn with_disk_torn_write_rate(mut self, rate: f64) -> Self {
        self.disk_torn_write_rate = rate;
        self
    }

    /// Sets the silent record-corruption rate.
    pub fn with_disk_corrupt_rate(mut self, rate: f64) -> Self {
        self.disk_corrupt_rate = rate;
        self
    }

    /// Sets the partial-fsync (lying disk) rate.
    pub fn with_disk_partial_fsync_rate(mut self, rate: f64) -> Self {
        self.disk_partial_fsync_rate = rate;
        self
    }

    /// Crashes the durable store at exactly the Nth sync point (1-based).
    pub fn with_disk_kill_at_sync(mut self, sync_point: u64) -> Self {
        self.disk_kill_at_sync = Some(sync_point);
        self
    }

    /// True when the plan can inject at least one *disk* fault. Separate
    /// from [`FaultPlan::is_active`], which gates cluster-level behavior
    /// (lazy-GC downgrades) and must not change when only disk faults are
    /// configured.
    pub fn disk_faults_active(&self) -> bool {
        self.disk_torn_write_rate > 0.0
            || self.disk_corrupt_rate > 0.0
            || self.disk_partial_fsync_rate > 0.0
            || self.disk_kill_at_sync.is_some()
    }

    /// Should the `write_seq`-th durable record write be torn?
    pub fn should_tear_disk_write(&self, write_seq: u64) -> bool {
        self.disk_torn_write_rate > 0.0
            && decide(self.seed, 4, [write_seq, 0, 0, 0]) < self.disk_torn_write_rate
    }

    /// Should the `write_seq`-th durable record be silently bit-flipped?
    pub fn should_corrupt_disk_record(&self, write_seq: u64) -> bool {
        self.disk_corrupt_rate > 0.0
            && decide(self.seed, 5, [write_seq, 0, 0, 0]) < self.disk_corrupt_rate
    }

    /// Should the `sync_seq`-th fsync lie (lose unsynced bytes + crash)?
    pub fn should_drop_fsync(&self, sync_seq: u64) -> bool {
        self.disk_partial_fsync_rate > 0.0
            && decide(self.seed, 6, [sync_seq, 0, 0, 0]) < self.disk_partial_fsync_rate
    }

    /// Is `sync_seq` the planned deterministic kill point?
    pub fn should_kill_at_sync(&self, sync_seq: u64) -> bool {
        self.disk_kill_at_sync == Some(sync_seq)
    }

    /// True when the plan can inject at least one fault (fast-path gate).
    pub fn is_active(&self) -> bool {
        self.task_failure_rate > 0.0
            || self.cached_drop_rate > 0.0
            || self.shuffle_drop_rate > 0.0
            || !self.executor_kills.is_empty()
    }

    /// Should the given task attempt fail at launch?
    pub fn should_fail_task(&self, job: u64, stage: u64, partition: usize, attempt: u64) -> bool {
        self.task_failure_rate > 0.0
            && decide(self.seed, 1, [job, stage, partition as u64, attempt])
                < self.task_failure_rate
    }

    /// Should this cached partition be dropped at the start of `job`?
    /// `tag` is the RDD's [`name_tag`] (stored by the block manager).
    pub fn should_drop_cached(&self, job: u64, tag: u64, partition: usize) -> bool {
        self.cached_drop_rate > 0.0
            && decide(self.seed, 2, [job, tag, partition as u64, 0]) < self.cached_drop_rate
    }

    /// Should this retained shuffle map output be dropped at the start of
    /// `job`? Keyed by map partition only (shuffle ids are not run-stable).
    pub fn should_drop_shuffle_output(&self, job: u64, map_partition: usize) -> bool {
        self.shuffle_drop_rate > 0.0
            && decide(self.seed, 3, [job, map_partition as u64, 0, 0]) < self.shuffle_drop_rate
    }

    /// Executors scheduled to die right before (job, stage) starts.
    pub fn kills_at(&self, job: u64, stage: u64) -> impl Iterator<Item = usize> + '_ {
        self.executor_kills
            .iter()
            .filter(move |k| k.job == job && k.stage == stage)
            .map(|k| k.executor)
    }
}

/// Why one task attempt failed.
#[derive(Debug, Clone)]
pub enum TaskError {
    /// An injected fault from the [`FaultPlan`].
    Injected {
        /// Job sequence number.
        job: u64,
        /// Stage sequence number within the job.
        stage: u64,
        /// Partition index.
        partition: usize,
        /// Attempt number (0-based).
        attempt: u64,
    },
    /// The task body panicked (user function failure).
    Panic(String),
    /// A shuffle read found map outputs missing (lost executor or dropped
    /// shuffle file). Triggers map-stage resubmission, not a task retry.
    FetchFailed {
        /// The shuffle whose outputs were missing.
        shuffle: crate::rdd::ShuffleId,
    },
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::Injected {
                job,
                stage,
                partition,
                attempt,
            } => write!(
                f,
                "injected failure (job {job}, stage {stage}, partition {partition}, attempt {attempt})"
            ),
            TaskError::Panic(msg) => write!(f, "task panicked: {msg}"),
            TaskError::FetchFailed { shuffle } => {
                write!(f, "fetch failure reading shuffle {}", shuffle.0)
            }
        }
    }
}

/// A job-level failure surfaced to the action caller. The job is aborted
/// cleanly: shuffle claims are released and unrelated jobs are unaffected.
#[derive(Debug, Clone)]
pub enum JobError {
    /// One task failed `attempts` times — past `task_max_failures`.
    TaskFailed {
        /// Stage sequence number within the job.
        stage: u64,
        /// Partition of the failing task.
        partition: usize,
        /// Number of failed attempts.
        attempts: u64,
        /// Description of the last failure.
        last: String,
    },
    /// A stage kept hitting fetch failures past `stage_max_attempts`.
    StageExhausted {
        /// Stage sequence number within the job.
        stage: u64,
        /// Number of attempts (initial run + resubmissions).
        attempts: u64,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::TaskFailed {
                stage,
                partition,
                attempts,
                last,
            } => write!(
                f,
                "job aborted: task for partition {partition} of stage {stage} failed {attempts} times (last: {last})"
            ),
            JobError::StageExhausted { stage, attempts } => write!(
                f,
                "job aborted: stage {stage} exhausted {attempts} attempts on fetch failures"
            ),
        }
    }
}

impl std::error::Error for JobError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_rate_shaped() {
        let plan = FaultPlan::seeded(7).with_task_failure_rate(0.3);
        let mut failures = 0usize;
        let total = 10_000usize;
        for p in 0..total {
            let a = plan.should_fail_task(0, 0, p, 0);
            let b = plan.should_fail_task(0, 0, p, 0);
            assert_eq!(a, b, "same coordinates must decide identically");
            if a {
                failures += 1;
            }
        }
        let rate = failures as f64 / total as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed rate {rate}");
    }

    #[test]
    fn different_attempts_decide_independently() {
        let plan = FaultPlan::seeded(3).with_task_failure_rate(0.5);
        // Over many partitions, attempt 0 and attempt 1 must disagree on a
        // healthy fraction (they are independent coin flips).
        let disagree = (0..1000)
            .filter(|&p| plan.should_fail_task(1, 0, p, 0) != plan.should_fail_task(1, 0, p, 1))
            .count();
        assert!(disagree > 300, "only {disagree}/1000 disagreements");
    }

    #[test]
    fn inactive_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        assert!(!plan.should_fail_task(0, 0, 0, 0));
        assert!(!plan.should_drop_cached(0, 1, 0));
        assert!(!plan.should_drop_shuffle_output(0, 0));
        assert_eq!(plan.kills_at(0, 0).count(), 0);
    }

    #[test]
    fn kills_match_exact_boundaries() {
        let plan = FaultPlan::seeded(1).with_executor_kill(2, 1, 0);
        assert_eq!(plan.kills_at(2, 1).collect::<Vec<_>>(), vec![0]);
        assert_eq!(plan.kills_at(2, 0).count(), 0);
        assert_eq!(plan.kills_at(1, 1).count(), 0);
    }

    #[test]
    fn disk_faults_are_separate_from_cluster_faults() {
        let plan = FaultPlan::seeded(9)
            .with_disk_torn_write_rate(0.5)
            .with_disk_corrupt_rate(0.5)
            .with_disk_partial_fsync_rate(0.5)
            .with_disk_kill_at_sync(3);
        assert!(plan.disk_faults_active());
        assert!(
            !plan.is_active(),
            "disk faults must not flip cluster-level fault gating"
        );
        assert!(plan.should_kill_at_sync(3));
        assert!(!plan.should_kill_at_sync(2));
        // Deterministic decisions per sequence number.
        for seq in 0..100 {
            assert_eq!(
                plan.should_tear_disk_write(seq),
                plan.should_tear_disk_write(seq)
            );
            assert_eq!(
                plan.should_corrupt_disk_record(seq),
                plan.should_corrupt_disk_record(seq)
            );
            assert_eq!(plan.should_drop_fsync(seq), plan.should_drop_fsync(seq));
        }
        let inert = FaultPlan::none();
        assert!(!inert.disk_faults_active());
        assert!(!inert.should_tear_disk_write(0));
        assert!(!inert.should_corrupt_disk_record(0));
        assert!(!inert.should_drop_fsync(0));
        assert!(!inert.should_kill_at_sync(1));
    }

    #[test]
    fn name_tag_is_stable() {
        assert_eq!(name_tag("X"), name_tag("X"));
        assert_ne!(name_tag("X"), name_tag("Y"));
    }

    #[test]
    fn errors_display() {
        let e = JobError::TaskFailed {
            stage: 1,
            partition: 3,
            attempts: 4,
            last: "injected".into(),
        };
        assert!(e.to_string().contains("partition 3"));
        let e = JobError::StageExhausted {
            stage: 0,
            attempts: 4,
        };
        assert!(e.to_string().contains("exhausted"));
    }
}
