//! The driver-side entry point: RDD creation, broadcast registration,
//! actions, and cache control — the surface MEMPHIS's runtime integrates
//! with.

use crate::block_manager::{BlockManager, RddStorageInfo, StorageLevel};
use crate::broadcast::BroadcastRef;
use crate::config::{CostModel, SparkConfig};
use crate::rdd::{
    next_rdd_id, next_shuffle_id, partition_of, CombineFn, EmitFn, MapBcFn, MapFn, RddInner,
    RddKind, RddRef, Record, ZipFn,
};
use crate::scheduler::{fully_cached, ExecutorPool, Runtime};
use crate::shuffle::ShuffleManager;
use crate::stats::{SparkStats, StatsSnapshot};
use memphis_matrix::{BlockedMatrix, Matrix};
use parking_lot::Mutex;
use std::sync::{Arc, Weak};

/// Handle to the simulated Spark cluster. Cheap to clone; all clones share
/// the same executors, storage, and shuffle service.
#[derive(Clone)]
pub struct SparkContext {
    rt: Arc<Runtime>,
    broadcasts: Arc<Mutex<Vec<Weak<crate::broadcast::BroadcastInner>>>>,
}

impl SparkContext {
    /// Boots a simulated cluster with the given configuration.
    pub fn new(config: SparkConfig) -> Self {
        let stats = Arc::new(SparkStats::default());
        let block_manager = BlockManager::new(
            config.storage_capacity,
            config.spill_dir.clone(),
            stats.clone(),
        );
        let shuffle = ShuffleManager::new(stats.clone(), config.cost.clone());
        let pool = ExecutorPool::new(config.num_executors, config.cores_per_executor);
        Self {
            rt: Arc::new(Runtime {
                config,
                stats,
                block_manager,
                shuffle,
                pool,
            }),
            broadcasts: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The shared runtime (for advanced tests and the MEMPHIS core).
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.rt
    }

    /// Cluster configuration.
    pub fn config(&self) -> &SparkConfig {
        &self.rt.config
    }

    /// Snapshot of all cluster counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.rt.stats.snapshot()
    }

    // ------------------------------------------------------------------
    // RDD creation
    // ------------------------------------------------------------------

    fn make_rdd(&self, kind: RddKind, num_partitions: usize, name: impl Into<String>) -> RddRef {
        RddRef(Arc::new(RddInner {
            id: next_rdd_id(),
            kind,
            num_partitions,
            persist_level: Mutex::new(None),
            name: name.into(),
        }))
    }

    /// Distributes keyed records over `num_partitions` hash partitions.
    pub fn parallelize(
        &self,
        records: Vec<Record>,
        num_partitions: usize,
        name: impl Into<String>,
    ) -> RddRef {
        let n = num_partitions.max(1);
        let mut partitions: Vec<Vec<Record>> = (0..n).map(|_| Vec::new()).collect();
        for (k, m) in records {
            partitions[partition_of(&k, n)].push((k, m));
        }
        self.make_rdd(
            RddKind::Parallelize {
                partitions: Arc::new(partitions),
            },
            n,
            name,
        )
    }

    /// Distributes a blocked matrix as one record per tile, using the
    /// default parallelism.
    pub fn parallelize_blocked(&self, m: &BlockedMatrix, name: impl Into<String>) -> RddRef {
        self.parallelize(
            m.blocks().to_vec(),
            self.rt.config.default_parallelism,
            name,
        )
    }

    /// Narrow per-record transformation (key-preserving).
    pub fn map(&self, parent: &RddRef, name: impl Into<String>, f: MapFn) -> RddRef {
        self.make_rdd(
            RddKind::Map {
                parent: parent.clone(),
                f,
            },
            parent.num_partitions(),
            name,
        )
    }

    /// Narrow transformation reading a broadcast matrix.
    pub fn map_with_broadcast(
        &self,
        parent: &RddRef,
        name: impl Into<String>,
        bc: &BroadcastRef,
        f: MapBcFn,
    ) -> RddRef {
        self.make_rdd(
            RddKind::MapWithBroadcast {
                parent: parent.clone(),
                bc: bc.clone(),
                f,
            },
            parent.num_partitions(),
            name,
        )
    }

    /// Narrow binary zip-join over co-partitioned RDDs with equal keys.
    ///
    /// # Panics
    /// Panics if the partition counts differ (MEMPHIS plans always
    /// co-partition zip inputs).
    pub fn zip_join(
        &self,
        left: &RddRef,
        right: &RddRef,
        name: impl Into<String>,
        f: ZipFn,
    ) -> RddRef {
        assert_eq!(
            left.num_partitions(),
            right.num_partitions(),
            "zip_join requires co-partitioned inputs"
        );
        self.make_rdd(
            RddKind::ZipJoin {
                left: left.clone(),
                right: right.clone(),
                f,
            },
            left.num_partitions(),
            name,
        )
    }

    /// Wide dependency: map-side `emit` re-keys records, the shuffle groups
    /// them, and `combine` folds each group.
    pub fn reduce_by_key(
        &self,
        parent: &RddRef,
        name: impl Into<String>,
        emit: EmitFn,
        combine: CombineFn,
        num_partitions: usize,
    ) -> RddRef {
        self.make_rdd(
            RddKind::ReduceByKey {
                parent: parent.clone(),
                emit,
                combine,
                shuffle: next_shuffle_id(),
            },
            num_partitions.max(1),
            name,
        )
    }

    // ------------------------------------------------------------------
    // Broadcast
    // ------------------------------------------------------------------

    /// Registers a broadcast variable (torrent-chunked, lazily shipped).
    pub fn broadcast(&self, value: Matrix) -> BroadcastRef {
        let b = BroadcastRef::new(value, self.rt.config.broadcast_chunk_size);
        self.broadcasts.lock().push(Arc::downgrade(&b.0));
        b
    }

    /// Total bytes currently pinned in the driver by live, undestroyed
    /// broadcast variables — the dangling-reference gauge of paper §2.2.
    pub fn driver_held_broadcast_bytes(&self) -> usize {
        let mut list = self.broadcasts.lock();
        list.retain(|w| w.strong_count() > 0);
        list.iter()
            .filter_map(|w| w.upgrade())
            .map(|inner| BroadcastRef(inner).driver_held_bytes())
            .sum()
    }

    // ------------------------------------------------------------------
    // Actions (trigger jobs)
    // ------------------------------------------------------------------

    /// Collects all records to the driver, charging the driver-link cost.
    ///
    /// # Panics
    /// Panics if the job fails past its retry bounds; fault-injection
    /// callers use [`SparkContext::try_collect`].
    pub fn collect(&self, rdd: &RddRef) -> Vec<Record> {
        self.try_collect(rdd).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`SparkContext::collect`]: task failures are retried and
    /// lost shuffle/cache state is recomputed from lineage; only exhausted
    /// retry budgets surface as an error.
    pub fn try_collect(&self, rdd: &RddRef) -> Result<Vec<Record>, crate::fault::JobError> {
        let parts = self.rt.try_run_job(rdd, |_, records| records.to_vec())?;
        let out: Vec<Record> = parts.into_iter().flatten().collect();
        let bytes = crate::block_manager::bytes_of_partition(&out);
        SparkStats::add(&self.rt.stats.bytes_collected, bytes as u64);
        let delay = CostModel::transfer_delay(bytes, self.rt.config.cost.collect_ns_per_byte);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        Ok(out)
    }

    /// Collects and reassembles a blocked matrix with the given logical
    /// shape and block length.
    pub fn collect_blocked(
        &self,
        rdd: &RddRef,
        rows: usize,
        cols: usize,
        blen: usize,
    ) -> BlockedMatrix {
        let mut blocks = self.collect(rdd);
        blocks.sort_by_key(|(k, _)| *k);
        BlockedMatrix::from_blocks(rows, cols, blen, blocks)
    }

    /// Fallible [`SparkContext::collect_blocked`].
    pub fn try_collect_blocked(
        &self,
        rdd: &RddRef,
        rows: usize,
        cols: usize,
        blen: usize,
    ) -> Result<BlockedMatrix, crate::fault::JobError> {
        let mut blocks = self.try_collect(rdd)?;
        blocks.sort_by_key(|(k, _)| *k);
        Ok(BlockedMatrix::from_blocks(rows, cols, blen, blocks))
    }

    /// Folds all record values with `combine` (ignoring keys), combining
    /// per-partition results at the driver. Returns `None` for empty RDDs.
    ///
    /// # Panics
    /// Panics if the job fails past its retry bounds.
    pub fn reduce(&self, rdd: &RddRef, combine: CombineFn) -> Option<Matrix> {
        self.try_reduce(rdd, combine)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`SparkContext::reduce`].
    pub fn try_reduce(
        &self,
        rdd: &RddRef,
        combine: CombineFn,
    ) -> Result<Option<Matrix>, crate::fault::JobError> {
        let c = combine.clone();
        let parts = self.rt.try_run_job(rdd, move |_, records| {
            let mut it = records.iter().map(|(_, m)| m.clone());
            let first = it.next()?;
            Some(it.fold(first, |a, b| c(a, b)))
        })?;
        let mut acc: Option<Matrix> = None;
        for part in parts.into_iter().flatten() {
            acc = Some(match acc {
                None => part,
                Some(a) => combine(a, part),
            });
        }
        if let Some(m) = &acc {
            SparkStats::add(&self.rt.stats.bytes_collected, m.size_bytes() as u64);
        }
        Ok(acc)
    }

    /// Counts records (the cheap materialization action MEMPHIS uses for
    /// asynchronous RDD materialization after `k` cache misses).
    ///
    /// # Panics
    /// Panics if the job fails past its retry bounds.
    pub fn count(&self, rdd: &RddRef) -> usize {
        self.try_count(rdd).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`SparkContext::count`].
    pub fn try_count(&self, rdd: &RddRef) -> Result<usize, crate::fault::JobError> {
        Ok(self
            .rt
            .try_run_job(rdd, |_, records| records.len())?
            .into_iter()
            .sum())
    }

    // ------------------------------------------------------------------
    // Cache control
    // ------------------------------------------------------------------

    /// Removes the persist flag and drops every cached partition (and any
    /// spill files). Mirrors Spark's asynchronous `unpersist`; in the
    /// simulation the drop happens inline but is cheap.
    pub fn unpersist(&self, rdd: &RddRef) {
        rdd.clear_persist();
        self.rt.block_manager.remove_rdd(rdd.id());
    }

    /// Drops the shuffle files owned by this RDD's wide dependency, if any.
    pub fn cleanup_shuffle(&self, rdd: &RddRef) {
        if let Some(sid) = rdd.shuffle_id() {
            self.rt.shuffle.remove(sid);
        }
    }

    /// Materialization summary (`getRDDStorageInfo`).
    pub fn storage_info(&self, rdd: &RddRef) -> RddStorageInfo {
        self.rt.block_manager.storage_info(rdd.id())
    }

    /// True when every partition of a persisted RDD is resident.
    pub fn is_fully_cached(&self, rdd: &RddRef) -> bool {
        fully_cached(&self.rt, rdd)
    }

    /// Storage memory currently used by cached partitions.
    pub fn storage_used(&self) -> usize {
        self.rt.block_manager.mem_used()
    }

    /// Storage capacity in bytes.
    pub fn storage_capacity(&self) -> usize {
        self.rt.block_manager.capacity()
    }

    /// Injects a partition loss (executor failure) for recovery tests.
    pub fn fail_partition(&self, rdd: &RddRef, partition: usize) {
        self.rt.block_manager.drop_partition(rdd.id(), partition);
    }

    /// Kills executor `executor` immediately: its cached partitions and
    /// shuffle map outputs are invalidated and later recomputed from
    /// lineage (a replacement executor is assumed to re-register, so task
    /// slots are unaffected).
    pub fn kill_executor(&self, executor: usize) {
        self.rt.kill_executor_now(executor);
    }

    /// Default storage level for persisted RDDs.
    pub fn default_storage_level(&self) -> StorageLevel {
        StorageLevel::Memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memphis_matrix::ops::binary::{binary, BinaryOp};
    use memphis_matrix::ops::matmul::{matmul, tsmm};
    use memphis_matrix::ops::reorg::transpose;
    use memphis_matrix::rand_gen::rand_uniform;
    use memphis_matrix::BlockId;

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConfig::local_test())
    }

    fn blocked(rows: usize, cols: usize, blen: usize, seed: u64) -> (Matrix, BlockedMatrix) {
        let m = rand_uniform(rows, cols, -1.0, 1.0, seed);
        let b = BlockedMatrix::from_dense(&m, blen).unwrap();
        (m, b)
    }

    #[test]
    fn parallelize_collect_roundtrip() {
        let sc = ctx();
        let (m, b) = blocked(20, 6, 4, 1);
        let rdd = sc.parallelize_blocked(&b, "X");
        let back = sc.collect_blocked(&rdd, 20, 6, 4).to_dense().unwrap();
        assert!(back.approx_eq(&m, 0.0));
        assert_eq!(sc.stats().jobs, 1);
    }

    #[test]
    fn lazy_evaluation_runs_nothing_until_action() {
        let sc = ctx();
        let (_, b) = blocked(8, 4, 4, 2);
        let rdd = sc.parallelize_blocked(&b, "X");
        let _mapped = sc.map(&rdd, "scale", Arc::new(|k, m| (*k, m.deep_clone())));
        assert_eq!(sc.stats().jobs, 0);
        assert_eq!(sc.stats().tasks, 0);
    }

    #[test]
    fn map_transformation_applies() {
        let sc = ctx();
        let (m, b) = blocked(10, 3, 4, 3);
        let rdd = sc.parallelize_blocked(&b, "X");
        let doubled = sc.map(
            &rdd,
            "x*2",
            Arc::new(|k, m| {
                (
                    *k,
                    memphis_matrix::ops::binary::binary_scalar(m, 2.0, BinaryOp::Mul, false),
                )
            }),
        );
        let got = sc.collect_blocked(&doubled, 10, 3, 4).to_dense().unwrap();
        let expected = memphis_matrix::ops::binary::binary_scalar(&m, 2.0, BinaryOp::Mul, false);
        assert!(got.approx_eq(&expected, 0.0));
    }

    #[test]
    fn zip_join_adds_copartitioned() {
        let sc = ctx();
        let (ma, ba) = blocked(12, 4, 4, 4);
        let (mb, bb) = blocked(12, 4, 4, 5);
        let ra = sc.parallelize_blocked(&ba, "A");
        let rb = sc.parallelize_blocked(&bb, "B");
        let sum = sc.zip_join(
            &ra,
            &rb,
            "A+B",
            Arc::new(|_, a, b| binary(a, b, BinaryOp::Add).unwrap()),
        );
        let got = sc.collect_blocked(&sum, 12, 4, 4).to_dense().unwrap();
        let expected = binary(&ma, &mb, BinaryOp::Add).unwrap();
        assert!(got.approx_eq(&expected, 0.0));
    }

    #[test]
    fn reduce_action_sums_tsmm_blocks() {
        // Distributed t(X)%*%X: per-block tsmm then a reduce action —
        // the single-block aggregate pattern of paper §4.1.
        let sc = ctx();
        let (m, b) = blocked(32, 6, 8, 6);
        let rdd = sc.parallelize_blocked(&b, "X");
        let partial = sc.map(
            &rdd,
            "tsmm",
            Arc::new(|k, m| (BlockId { row: 0, col: k.col }, tsmm(m).unwrap())),
        );
        let got = sc
            .reduce(
                &partial,
                Arc::new(|a, b| binary(&a, &b, BinaryOp::Add).unwrap()),
            )
            .unwrap();
        let expected = tsmm(&m).unwrap();
        assert!(got.approx_eq(&expected, 1e-9));
    }

    #[test]
    fn broadcast_mapside_multiply() {
        // y^T X via broadcasting y^T (Example 4.1's broadcast-based matmul).
        let sc = ctx();
        let x = rand_uniform(24, 5, -1.0, 1.0, 7);
        let y = rand_uniform(24, 1, -1.0, 1.0, 8);
        let bx = BlockedMatrix::from_dense(&x, 6).unwrap();
        let rdd = sc.parallelize_blocked(&bx, "X");
        let yt = transpose(&y);
        let byt = sc.broadcast(yt.clone());
        let blen = 6usize;
        let partial = sc.map_with_broadcast(
            &rdd,
            "y^T %*% Xblk",
            &byt,
            Arc::new(move |k, xblk, ytv| {
                let yslice = memphis_matrix::ops::reorg::slice_cols(
                    ytv,
                    k.row * blen,
                    k.row * blen + xblk.rows(),
                )
                .unwrap();
                (
                    BlockId { row: 0, col: k.col },
                    matmul(&yslice, xblk).unwrap(),
                )
            }),
        );
        let got = sc
            .reduce(
                &partial,
                Arc::new(|a, b| binary(&a, &b, BinaryOp::Add).unwrap()),
            )
            .unwrap();
        let expected = matmul(&yt, &x).unwrap();
        assert!(got.approx_eq(&expected, 1e-9));
        assert!(byt.delivered_executors() >= 1);
    }

    #[test]
    fn shuffle_reduce_by_key_aggregates() {
        let sc = ctx();
        let (m, b) = blocked(16, 4, 4, 9);
        let rdd = sc.parallelize_blocked(&b, "X");
        // Re-key every block to a single output key and sum.
        let total = sc.reduce_by_key(
            &rdd,
            "sumAll",
            Arc::new(|_, m| vec![(BlockId { row: 0, col: 0 }, m.deep_clone())]),
            Arc::new(|a, b| {
                // Sum of all cells accumulated as 1x1.
                let sa =
                    memphis_matrix::ops::agg::aggregate(&a, memphis_matrix::ops::agg::AggOp::Sum)
                        .unwrap();
                let sb =
                    memphis_matrix::ops::agg::aggregate(&b, memphis_matrix::ops::agg::AggOp::Sum)
                        .unwrap();
                Matrix::scalar(sa + sb)
            }),
            2,
        );
        let out = sc.collect(&total);
        assert_eq!(out.len(), 1);
        let got =
            memphis_matrix::ops::agg::aggregate(&out[0].1, memphis_matrix::ops::agg::AggOp::Sum)
                .unwrap();
        let expected =
            memphis_matrix::ops::agg::aggregate(&m, memphis_matrix::ops::agg::AggOp::Sum).unwrap();
        assert!((got - expected).abs() < 1e-9);
        assert!(sc.stats().shuffle_bytes_written > 0);
        assert_eq!(sc.stats().stages, 2); // map stage + result stage
    }

    #[test]
    fn persist_serves_second_job_from_cache() {
        let sc = ctx();
        let (_, b) = blocked(16, 4, 4, 10);
        let rdd = sc.parallelize_blocked(&b, "X");
        let mapped = sc.map(&rdd, "id", Arc::new(|k, m| (*k, m.deep_clone())));
        mapped.persist(StorageLevel::Memory);
        sc.count(&mapped);
        let cached_after_first = sc.stats().partitions_cached;
        assert!(cached_after_first > 0);
        sc.count(&mapped);
        assert!(sc.stats().cache_hits >= cached_after_first);
        assert!(sc.is_fully_cached(&mapped));
    }

    #[test]
    fn shuffle_files_skip_map_stage_on_rerun() {
        let sc = ctx();
        let (_, b) = blocked(16, 4, 4, 11);
        let rdd = sc.parallelize_blocked(&b, "X");
        let shuffled = sc.reduce_by_key(
            &rdd,
            "rekey",
            Arc::new(|k, m| vec![(BlockId { row: 0, col: k.row }, m.deep_clone())]),
            Arc::new(|a, _| a),
            2,
        );
        sc.count(&shuffled);
        assert_eq!(sc.stats().skipped_stages, 0);
        sc.count(&shuffled);
        assert_eq!(sc.stats().skipped_stages, 1, "map stage must be skipped");
        sc.cleanup_shuffle(&shuffled);
        sc.count(&shuffled);
        assert_eq!(sc.stats().skipped_stages, 1, "after cleanup it re-runs");
    }

    #[test]
    fn unpersist_releases_and_recomputes() {
        let sc = ctx();
        let (_, b) = blocked(16, 4, 4, 12);
        let rdd = sc.parallelize_blocked(&b, "X");
        let mapped = sc.map(&rdd, "id", Arc::new(|k, m| (*k, m.deep_clone())));
        mapped.persist(StorageLevel::Memory);
        sc.count(&mapped);
        assert!(sc.storage_used() > 0);
        sc.unpersist(&mapped);
        assert_eq!(sc.storage_used(), 0);
        // Runs fine afterwards (recomputed from lineage).
        assert_eq!(sc.count(&mapped), b.blocks().len());
    }

    #[test]
    fn lost_partition_is_recomputed() {
        let sc = ctx();
        let (m, b) = blocked(16, 4, 4, 13);
        let rdd = sc.parallelize_blocked(&b, "X");
        let mapped = sc.map(&rdd, "id", Arc::new(|k, m| (*k, m.deep_clone())));
        mapped.persist(StorageLevel::Memory);
        sc.count(&mapped);
        sc.fail_partition(&mapped, 0);
        let back = sc.collect_blocked(&mapped, 16, 4, 4).to_dense().unwrap();
        assert!(back.approx_eq(&m, 0.0));
        assert!(sc.stats().partitions_recomputed >= 1);
    }

    #[test]
    fn fully_cached_rdd_skips_ancestor_shuffle_plan() {
        let sc = ctx();
        let (_, b) = blocked(16, 4, 4, 14);
        let rdd = sc.parallelize_blocked(&b, "X");
        let shuffled = sc.reduce_by_key(
            &rdd,
            "rekey",
            Arc::new(|k, m| vec![(BlockId { row: 0, col: k.row }, m.deep_clone())]),
            Arc::new(|a, _| a),
            2,
        );
        shuffled.persist(StorageLevel::Memory);
        sc.count(&shuffled);
        sc.cleanup_shuffle(&shuffled); // shuffle files gone, cache remains
        let jobs_before = sc.stats().jobs;
        sc.count(&shuffled); // must be served from cache, no map stage
        let s = sc.stats();
        assert_eq!(s.jobs, jobs_before + 1);
        assert!(sc.is_fully_cached(&shuffled));
    }

    #[test]
    fn driver_broadcast_gauge_tracks_destroy() {
        let sc = ctx();
        let y = rand_uniform(128, 1, 0.0, 1.0, 15);
        let b1 = sc.broadcast(y.clone());
        let b2 = sc.broadcast(y);
        assert_eq!(sc.driver_held_broadcast_bytes(), 2 * 128 * 8);
        b1.destroy();
        assert_eq!(sc.driver_held_broadcast_bytes(), 128 * 8);
        drop(b2);
        assert_eq!(sc.driver_held_broadcast_bytes(), 0);
    }

    #[test]
    fn concurrent_jobs_share_shuffle_production() {
        let sc = ctx();
        let (_, b) = blocked(32, 4, 4, 16);
        let rdd = sc.parallelize_blocked(&b, "X");
        let shuffled = sc.reduce_by_key(
            &rdd,
            "rekey",
            Arc::new(|k, m| vec![(BlockId { row: 0, col: k.row }, m.deep_clone())]),
            Arc::new(|a, _| a),
            2,
        );
        let sc2 = sc.clone();
        let r2 = shuffled.clone();
        let t = std::thread::spawn(move || sc2.count(&r2));
        let a = sc.count(&shuffled);
        let b2 = t.join().unwrap();
        assert_eq!(a, b2);
        // The shuffle map stage ran exactly once across both jobs.
        let s = sc.stats();
        assert_eq!(
            s.stages + s.skipped_stages,
            4,
            "2 result + 1 map + 1 skipped"
        );
    }
}
