//! Chaos suite: seeded fault injection against real workload pipelines.
//!
//! Every test runs a pipeline twice — once on a fault-free cluster, once
//! under a seeded [`FaultPlan`] — and requires *bit-identical* results plus
//! nonzero recovery counters. The fault schedule is a pure function of the
//! plan seed and run-stable coordinates, so these tests are deterministic;
//! `CHAOS_SEED` selects an alternative seed in CI.

use memphis_matrix::ops::binary::{binary, binary_scalar, BinaryOp};
use memphis_matrix::rand_gen::rand_uniform;
use memphis_matrix::{BlockId, BlockedMatrix, Matrix};
use memphis_sparksim::fault::JobError;
use memphis_sparksim::{FaultPlan, Record, SparkConfig, SparkContext, StorageLevel};
use proptest::prelude::*;
use std::sync::Arc;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Cluster for chaos runs: ample storage (so LRU eviction — which is
/// timing-dependent — never fires) and a generous task retry budget (at a
/// 30% per-attempt failure rate, 4 attempts still lose ~0.8% of tasks).
fn chaos_config(plan: FaultPlan) -> SparkConfig {
    SparkConfig {
        storage_capacity: 256 << 20,
        task_max_failures: 10,
        // 8 partitions: wide enough that a 30% per-attempt failure rate
        // reliably fires on the CI seeds.
        default_parallelism: 8,
        fault_plan: plan,
        ..SparkConfig::local_test()
    }
}

fn records_equal(a: &[Record], b: &[Record]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|((ka, ma), (kb, mb))| ka == kb && ma.approx_eq(mb, 0.0))
}

// ---------------------------------------------------------------------
// Workload pipelines (each runs two jobs so faults can hit cached /
// shuffled state produced by the first).
// ---------------------------------------------------------------------

/// Narrow map chain with a persisted intermediate: count then collect.
fn pipeline_narrow_cache(sc: &SparkContext) -> (usize, Vec<Record>) {
    let m = rand_uniform(32, 8, -1.0, 1.0, 77);
    let b = BlockedMatrix::from_dense(&m, 4).unwrap();
    let rdd = sc.parallelize_blocked(&b, "A:X");
    let mapped = sc.map(
        &rdd,
        "A:x*2",
        Arc::new(|k, m| (*k, binary_scalar(m, 2.0, BinaryOp::Mul, false))),
    );
    mapped.persist(StorageLevel::Memory);
    let n = sc.count(&mapped); // job 0
    let out = sc.collect(&mapped); // job 1
    (n, out)
}

/// Wide row-sum aggregation: the second action reuses retained shuffle
/// files (skipped map stage) — unless a fault dropped them.
fn pipeline_shuffle_agg(sc: &SparkContext) -> (usize, Vec<Record>) {
    let m = rand_uniform(32, 8, -1.0, 1.0, 78);
    let b = BlockedMatrix::from_dense(&m, 4).unwrap();
    let rdd = sc.parallelize_blocked(&b, "B:X");
    let shuffled = sc.reduce_by_key(
        &rdd,
        "B:rowsum",
        Arc::new(|k, m| vec![(BlockId { row: k.row, col: 0 }, m.deep_clone())]),
        Arc::new(|a, b| binary(&a, &b, BinaryOp::Add).unwrap()),
        2,
    );
    let n = sc.count(&shuffled); // job 0: map stage + result stage
    let out = sc.collect(&shuffled); // job 1: skipped map stage + result stage
    (n, out)
}

/// Zip-join of co-partitioned RDDs, broadcast scaling, and a driver-side
/// reduce.
fn pipeline_zip_broadcast(sc: &SparkContext) -> Matrix {
    let ma = rand_uniform(12, 4, -1.0, 1.0, 79);
    let mb = rand_uniform(12, 4, -1.0, 1.0, 80);
    let ba = BlockedMatrix::from_dense(&ma, 4).unwrap();
    let bb = BlockedMatrix::from_dense(&mb, 4).unwrap();
    let ra = sc.parallelize_blocked(&ba, "C:A");
    let rb = sc.parallelize_blocked(&bb, "C:B");
    let sum = sc.zip_join(
        &ra,
        &rb,
        "C:A+B",
        Arc::new(|_, a, b| binary(a, b, BinaryOp::Add).unwrap()),
    );
    let scale = sc.broadcast(rand_uniform(4, 4, 0.5, 1.5, 81));
    let scaled = sc.map_with_broadcast(
        &sum,
        "C:scaled",
        &scale,
        Arc::new(|k, m, v| (*k, binary(m, v, BinaryOp::Mul).unwrap())),
    );
    sc.reduce(
        &scaled,
        Arc::new(|a, b| binary(&a, &b, BinaryOp::Add).unwrap()),
    )
    .unwrap()
}

// ---------------------------------------------------------------------
// Bit-identical results under chaos
// ---------------------------------------------------------------------

#[test]
fn narrow_cache_pipeline_survives_task_failures_and_executor_kill() {
    let clean = SparkContext::new(chaos_config(FaultPlan::none()));
    let want = pipeline_narrow_cache(&clean);

    // Kill executor 0 right before job 1's result stage: its cached
    // partitions (p % num_executors == 0) are lost and must recompute.
    let plan = FaultPlan::seeded(chaos_seed())
        .with_task_failure_rate(0.3)
        .with_executor_kill(1, 0, 0);
    let sc = SparkContext::new(chaos_config(plan));
    let (n, out) = pipeline_narrow_cache(&sc);

    assert_eq!(n, want.0);
    assert!(records_equal(&out, &want.1), "results diverged under chaos");
    let s = sc.stats();
    assert!(s.task_failures > 0, "injected failures must fire: {s:?}");
    assert!(s.tasks_retried > 0);
    assert_eq!(s.executors_lost, 1);
    assert_eq!(
        s.cached_blocks_lost, 4,
        "even partitions lived on executor 0"
    );
    assert!(
        s.partitions_recomputed >= 4,
        "lost partitions recompute from lineage"
    );
}

#[test]
fn shuffle_pipeline_survives_task_failures_and_executor_kill() {
    let clean = SparkContext::new(chaos_config(FaultPlan::none()));
    let want = pipeline_shuffle_agg(&clean);

    // Kill executor 0 before job 1's result stage (stage 0 of job 1 is the
    // skipped map stage): its retained shuffle map outputs vanish, reduce
    // tasks fetch-fail, and the map stage is partially resubmitted.
    let plan = FaultPlan::seeded(chaos_seed())
        .with_task_failure_rate(0.3)
        .with_executor_kill(1, 1, 0);
    let sc = SparkContext::new(chaos_config(plan));
    let (n, out) = pipeline_shuffle_agg(&sc);

    assert_eq!(n, want.0);
    assert!(records_equal(&out, &want.1), "results diverged under chaos");
    let s = sc.stats();
    assert!(s.task_failures > 0);
    assert!(s.tasks_retried > 0);
    assert_eq!(s.executors_lost, 1);
    assert_eq!(
        s.shuffle_outputs_lost, 4,
        "even map outputs lived on executor 0"
    );
    assert!(s.fetch_failures > 0);
    assert!(s.stages_resubmitted >= 1, "map stage must be resubmitted");
}

#[test]
fn zip_broadcast_pipeline_survives_task_failures_and_executor_kill() {
    let clean = SparkContext::new(chaos_config(FaultPlan::none()));
    let want = pipeline_zip_broadcast(&clean);

    let plan = FaultPlan::seeded(chaos_seed())
        .with_task_failure_rate(0.3)
        .with_executor_kill(0, 0, 1);
    let sc = SparkContext::new(chaos_config(plan));
    let got = pipeline_zip_broadcast(&sc);

    assert!(got.approx_eq(&want, 0.0), "results diverged under chaos");
    let s = sc.stats();
    assert!(s.task_failures > 0);
    assert!(s.tasks_retried > 0);
    assert_eq!(s.executors_lost, 1);
}

// ---------------------------------------------------------------------
// Individual fault kinds
// ---------------------------------------------------------------------

#[test]
fn cached_partition_drops_recompute_from_lineage() {
    let clean = SparkContext::new(chaos_config(FaultPlan::none()));
    let want = pipeline_narrow_cache(&clean);

    let plan = FaultPlan::seeded(chaos_seed()).with_cached_drop_rate(0.5);
    let sc = SparkContext::new(chaos_config(plan));
    let (n, out) = pipeline_narrow_cache(&sc);

    assert_eq!(n, want.0);
    assert!(records_equal(&out, &want.1));
    let s = sc.stats();
    assert!(s.cached_blocks_lost > 0, "drop rate 0.5 must hit: {s:?}");
    assert!(s.partitions_recomputed > 0);
}

#[test]
fn shuffle_output_drops_trigger_partial_resubmission() {
    let clean = SparkContext::new(chaos_config(FaultPlan::none()));
    let want = pipeline_shuffle_agg(&clean);

    let plan = FaultPlan::seeded(chaos_seed()).with_shuffle_drop_rate(0.5);
    let sc = SparkContext::new(chaos_config(plan));
    let (n, out) = pipeline_shuffle_agg(&sc);

    assert_eq!(n, want.0);
    assert!(records_equal(&out, &want.1));
    let s = sc.stats();
    assert!(s.shuffle_outputs_lost > 0, "drop rate 0.5 must hit: {s:?}");
    // The loss happens at a job boundary, so planning finds the shuffle
    // incomplete and proactively resubmits the missing map partitions —
    // no fetch failure is ever observed by a reduce task.
    assert!(s.stages_resubmitted > 0);
}

// ---------------------------------------------------------------------
// Clean failure past the retry budgets
// ---------------------------------------------------------------------

#[test]
fn exhausted_task_retries_surface_as_clean_job_error() {
    let plan = FaultPlan::seeded(chaos_seed()).with_task_failure_rate(0.95);
    let cfg = SparkConfig {
        task_max_failures: 2,
        fault_plan: plan,
        ..SparkConfig::local_test()
    };
    let sc = SparkContext::new(cfg);
    let b = BlockedMatrix::from_dense(&rand_uniform(16, 4, -1.0, 1.0, 82), 4).unwrap();
    let rdd = sc.parallelize_blocked(&b, "X");

    let err = sc
        .try_count(&rdd)
        .expect_err("95% failure rate, 2 attempts");
    match err {
        JobError::TaskFailed { attempts, .. } => assert_eq!(attempts, 2),
        other => panic!("expected TaskFailed, got {other}"),
    }
    // The cluster is not poisoned: the next job fails just as cleanly
    // (no hang, no panic) instead of aborting the process.
    assert!(sc.try_count(&rdd).is_err());
    assert!(sc.stats().task_failures >= 2);
}

#[test]
fn stage_exhaustion_fails_one_job_and_spares_the_next() {
    // One executor kill before job 1's result stage, but zero stage-retry
    // budget: job 1 aborts with StageExhausted. Job 2 then repairs the
    // shuffle (fresh production claim) and succeeds.
    let plan = FaultPlan::seeded(chaos_seed()).with_executor_kill(1, 1, 0);
    let cfg = SparkConfig {
        stage_max_attempts: 1,
        fault_plan: plan,
        ..SparkConfig::local_test()
    };
    let sc = SparkContext::new(cfg);
    let b = BlockedMatrix::from_dense(&rand_uniform(32, 8, -1.0, 1.0, 83), 4).unwrap();
    let rdd = sc.parallelize_blocked(&b, "X");
    let shuffled = sc.reduce_by_key(
        &rdd,
        "rowsum",
        Arc::new(|k, m| vec![(BlockId { row: k.row, col: 0 }, m.deep_clone())]),
        Arc::new(|a, b| binary(&a, &b, BinaryOp::Add).unwrap()),
        2,
    );

    let n = sc.count(&shuffled); // job 0: produces the shuffle
    let err = sc.try_count(&shuffled).expect_err("no stage retry budget");
    assert!(matches!(err, JobError::StageExhausted { .. }), "got {err}");
    // Job 2: the failed job released its claims; recovery runs normally.
    assert_eq!(sc.try_count(&shuffled).expect("cluster stays usable"), n);
    let s = sc.stats();
    assert_eq!(s.executors_lost, 1);
    assert!(s.shuffle_outputs_lost > 0);
}

// ---------------------------------------------------------------------
// Determinism: same seed → same schedule, same counters, same results
// ---------------------------------------------------------------------

fn full_chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_task_failure_rate(0.3)
        .with_cached_drop_rate(0.2)
        .with_shuffle_drop_rate(0.2)
        .with_executor_kill(1, 1, 0)
}

#[test]
fn same_seed_runs_report_identical_recovery_counters() {
    let run = || {
        let sc = SparkContext::new(chaos_config(full_chaos_plan(chaos_seed())));
        let out = pipeline_shuffle_agg(&sc);
        (out, sc.stats())
    };
    let (out_a, stats_a) = run();
    let (out_b, stats_b) = run();
    assert_eq!(out_a.0, out_b.0);
    assert!(records_equal(&out_a.1, &out_b.1));
    assert_eq!(
        stats_a.recovery_pairs(),
        stats_b.recovery_pairs(),
        "recovery schedule must be a pure function of the seed"
    );
    assert_eq!(stats_a.tasks, stats_b.tasks);
    assert_eq!(stats_a.stages, stats_b.stages);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Action results and the fault/recovery schedule are invariant across
    /// executor thread counts (1 vs 4 cores per executor) and across
    /// repeated runs, with and without faults.
    #[test]
    fn results_invariant_across_thread_counts(seed in 0u64..1_000, faulty in any::<bool>()) {
        let run = |cores: usize| {
            let plan = if faulty { full_chaos_plan(seed) } else { FaultPlan::none() };
            let cfg = SparkConfig {
                cores_per_executor: cores,
                ..chaos_config(plan)
            };
            let sc = SparkContext::new(cfg);
            let m = rand_uniform(32, 8, -1.0, 1.0, 78);
            let b = BlockedMatrix::from_dense(&m, 4).unwrap();
            let rdd = sc.parallelize_blocked(&b, "B:X");
            let shuffled = sc.reduce_by_key(
                &rdd,
                "B:rowsum",
                Arc::new(|k, m| vec![(BlockId { row: k.row, col: 0 }, m.deep_clone())]),
                Arc::new(|a, b| binary(&a, &b, BinaryOp::Add).unwrap()),
                2,
            );
            let first = sc.try_count(&shuffled);
            let second = sc.try_collect(&shuffled);
            (first.map_err(|e| e.to_string()), second.map_err(|e| e.to_string()), sc.stats())
        };
        let (count_1, collect_1, stats_1) = run(1);
        let (count_1b, collect_1b, stats_1b) = run(1);
        let (count_4, collect_4, stats_4) = run(4);

        // Repeated run, same thread count: everything identical.
        prop_assert_eq!(&count_1, &count_1b);
        prop_assert_eq!(collect_1.is_ok(), collect_1b.is_ok());
        prop_assert_eq!(stats_1.recovery_pairs(), stats_1b.recovery_pairs());
        prop_assert_eq!(stats_1.tasks, stats_1b.tasks);

        // Different thread count: same results, same schedule.
        prop_assert_eq!(&count_1, &count_4);
        prop_assert_eq!(stats_1.recovery_pairs(), stats_4.recovery_pairs());
        prop_assert_eq!(stats_1.tasks, stats_4.tasks);
        match (&collect_1, &collect_4) {
            (Ok(a), Ok(b)) => prop_assert!(records_equal(a, b), "collect diverged"),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "one thread count failed, the other succeeded"),
        }
        match (&collect_1, &collect_1b) {
            (Ok(a), Ok(b)) => prop_assert!(records_equal(a, b), "collect not reproducible"),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "same-seed runs disagreed on success"),
        }
    }
}
