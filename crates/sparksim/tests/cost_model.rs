//! Tests of the injected cost model: task-launch overhead and transfer
//! delays must shape wall-clock time the way the calibration promises
//! (more partitions → more scheduling cost; bigger broadcast → longer
//! first fetch per executor).

use memphis_matrix::rand_gen::rand_uniform;
use memphis_matrix::BlockedMatrix;
use memphis_sparksim::{CostModel, SparkConfig, SparkContext};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn cfg_with_task_launch(micros: u64) -> SparkConfig {
    let mut c = SparkConfig::local_test();
    c.cost = CostModel {
        task_launch: Duration::from_micros(micros),
        ..CostModel::zero()
    };
    c
}

#[test]
fn task_launch_overhead_scales_with_partitions() {
    let m = rand_uniform(64, 4, 0.0, 1.0, 1);
    let blocked = BlockedMatrix::from_dense(&m, 4).unwrap(); // 16 blocks
    let sc = SparkContext::new(cfg_with_task_launch(3000));
    let rdd = sc.parallelize(blocked.blocks().to_vec(), 8, "X");
    let t0 = Instant::now();
    for _ in 0..5 {
        sc.count(&rdd);
    }
    let slow = t0.elapsed();
    // 5 jobs x 8 tasks x 3 ms / 4 parallel slots = 30 ms of injected sleep
    // minimum. A lower bound enforced by the injected delay is load-safe
    // (comparing against an unthrottled run is not, under CI load).
    assert!(slow >= Duration::from_millis(25), "slow={slow:?}");
    assert_eq!(sc.stats().tasks, 40, "5 jobs x 8 tasks pay the overhead");
}

#[test]
fn broadcast_transfer_charged_once_per_executor() {
    let mut c = SparkConfig::local_test();
    c.cost = CostModel {
        broadcast_ns_per_byte: 10_000.0, // 10 µs per byte → measurable
        ..CostModel::zero()
    };
    let sc = SparkContext::new(c);
    let m = rand_uniform(16, 4, 0.0, 1.0, 2);
    let blocked = BlockedMatrix::from_dense(&m, 4).unwrap();
    let rdd = sc.parallelize(blocked.blocks().to_vec(), 4, "X");
    let bc = sc.broadcast(rand_uniform(1, 512, 0.0, 1.0, 3)); // 4 KB
    let mapped = sc.map_with_broadcast(&rdd, "useB", &bc, Arc::new(|k, b, _| (*k, b.deep_clone())));
    let t0 = Instant::now();
    sc.count(&mapped);
    let first = t0.elapsed();
    // First job ships 4 KB x 10 µs/B = ~41 ms per executor.
    assert!(
        first > Duration::from_millis(20),
        "first job must pay the injected transfer cost, got {first:?}"
    );
    sc.count(&mapped);
    sc.count(&mapped);
    // Chunks are shipped at most once per executor no matter how many jobs
    // read the broadcast. Which executors run tasks is scheduling-
    // dependent, so assert the per-executor cap rather than an exact count:
    // without caching, three jobs x four tasks would ship up to 12 sets.
    let sent = sc.stats().broadcast_chunks_sent;
    let per_executor = bc.num_chunks() as u64;
    assert!(
        sent >= per_executor && sent <= per_executor * 2,
        "sent={sent}, per-executor chunk set={per_executor}"
    );
    assert_eq!(sent % per_executor, 0, "whole chunk sets only");
}
