//! Tests of the injected cost model: task-launch overhead and transfer
//! delays must shape wall-clock time the way the calibration promises
//! (more partitions → more scheduling cost; bigger broadcast → longer
//! first fetch per executor).

use memphis_matrix::rand_gen::rand_uniform;
use memphis_matrix::BlockedMatrix;
use memphis_sparksim::{CostModel, SparkConfig, SparkContext};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn cfg_with_task_launch(micros: u64) -> SparkConfig {
    let mut c = SparkConfig::local_test();
    c.cost = CostModel {
        task_launch: Duration::from_micros(micros),
        ..CostModel::zero()
    };
    c
}

#[test]
fn task_launch_overhead_scales_with_partitions() {
    let m = rand_uniform(64, 4, 0.0, 1.0, 1);
    let blocked = BlockedMatrix::from_dense(&m, 4).unwrap(); // 16 blocks
    let time_with = |micros: u64| {
        let sc = SparkContext::new(cfg_with_task_launch(micros));
        let rdd = sc.parallelize(blocked.blocks().to_vec(), 8, "X");
        let t0 = Instant::now();
        for _ in 0..5 {
            sc.count(&rdd);
        }
        t0.elapsed()
    };
    let fast = time_with(0);
    let slow = time_with(3000);
    // 5 jobs x 8 tasks x 3 ms / 4 parallel slots = ~30 ms minimum extra.
    assert!(
        slow > fast + Duration::from_millis(20),
        "fast={fast:?} slow={slow:?}"
    );
}

#[test]
fn broadcast_transfer_charged_once_per_executor() {
    let mut c = SparkConfig::local_test();
    c.cost = CostModel {
        broadcast_ns_per_byte: 10_000.0, // 10 µs per byte → measurable
        ..CostModel::zero()
    };
    let sc = SparkContext::new(c);
    let m = rand_uniform(16, 4, 0.0, 1.0, 2);
    let blocked = BlockedMatrix::from_dense(&m, 4).unwrap();
    let rdd = sc.parallelize(blocked.blocks().to_vec(), 4, "X");
    let bc = sc.broadcast(rand_uniform(1, 512, 0.0, 1.0, 3)); // 4 KB
    let mapped = sc.map_with_broadcast(&rdd, "useB", &bc, Arc::new(|k, b, _| (*k, b.deep_clone())));
    let t0 = Instant::now();
    sc.count(&mapped);
    let first = t0.elapsed();
    // First job ships 4 KB x 10 µs/B = ~41 ms per executor.
    assert!(
        first > Duration::from_millis(20),
        "first job must pay the injected transfer cost, got {first:?}"
    );
    let sent_after_first = sc.stats().broadcast_chunks_sent;
    sc.count(&mapped);
    // The second job finds the chunks resident: nothing else is shipped.
    // (Checked via stats, not wall clock — elapsed time is load-dependent.)
    assert_eq!(sc.stats().broadcast_chunks_sent, sent_after_first);
    assert_eq!(sent_after_first, bc.num_chunks() as u64 * 2);
}
