//! Raw binary (de)serialization of matrices, used by disk eviction in the
//! lineage cache and by partition spilling in the simulated Spark
//! BlockManager.
//!
//! Format: `magic (4) | rows (8 LE) | cols (8 LE) | values (rows*cols*8 LE)`.

use crate::dense::Matrix;
use crate::error::{MatrixError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"MPHM";

/// Serializes a matrix to a contiguous byte buffer.
pub fn to_bytes(m: &Matrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(20 + m.size_bytes());
    buf.put_slice(MAGIC);
    buf.put_u64_le(m.rows() as u64);
    buf.put_u64_le(m.cols() as u64);
    for &v in m.values() {
        buf.put_f64_le(v);
    }
    buf.freeze()
}

/// Deserializes a matrix from bytes produced by [`to_bytes`].
pub fn from_bytes(mut bytes: Bytes) -> Result<Matrix> {
    if bytes.remaining() < 20 {
        return Err(MatrixError::Corrupt("buffer too short".into()));
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(MatrixError::Corrupt("bad magic".into()));
    }
    let rows = bytes.get_u64_le() as usize;
    let cols = bytes.get_u64_le() as usize;
    let expected = rows
        .checked_mul(cols)
        .and_then(|n| n.checked_mul(8))
        .ok_or_else(|| MatrixError::Corrupt("shape overflow".into()))?;
    if bytes.remaining() != expected {
        return Err(MatrixError::Corrupt(format!(
            "expected {} value bytes, found {}",
            expected,
            bytes.remaining()
        )));
    }
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(bytes.get_f64_le());
    }
    Matrix::from_vec(rows, cols, data)
}

/// Writes a matrix to a file (used by disk eviction).
pub fn write_file(m: &Matrix, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_bytes(m))
}

/// Reads a matrix previously written with [`write_file`].
pub fn read_file(path: &std::path::Path) -> std::io::Result<Matrix> {
    let bytes = Bytes::from(std::fs::read(path)?);
    from_bytes(bytes).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_gen::rand_uniform;

    #[test]
    fn roundtrip_preserves_bits() {
        let m = rand_uniform(17, 23, -1e9, 1e9, 42);
        let back = from_bytes(to_bytes(&m)).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn roundtrip_empty_and_scalar() {
        for m in [Matrix::zeros(0, 5), Matrix::scalar(3.25)] {
            let back = from_bytes(to_bytes(&m)).unwrap();
            assert_eq!(m, back);
        }
    }

    #[test]
    fn rejects_corrupt_buffers() {
        assert!(from_bytes(Bytes::from_static(b"short")).is_err());
        let mut ok = to_bytes(&Matrix::scalar(1.0)).to_vec();
        ok[0] = b'X';
        assert!(from_bytes(Bytes::from(ok)).is_err());
        let mut truncated = to_bytes(&Matrix::zeros(4, 4)).to_vec();
        truncated.pop();
        assert!(from_bytes(Bytes::from(truncated)).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("memphis_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.bin");
        let m = rand_uniform(8, 8, 0.0, 1.0, 7);
        write_file(&m, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(m, back);
        std::fs::remove_file(&path).ok();
    }
}
