//! Dense, row-major `f64` matrix type.

use crate::error::{MatrixError, Result};
use std::fmt;
use std::sync::Arc;

/// A dense, row-major matrix of `f64` values.
///
/// The value buffer is reference-counted so matrices can be shared across
/// the lineage cache, the live-variable map, and asynchronous backend
/// threads without deep copies; copy-on-write semantics apply to in-place
/// mutation helpers.
#[derive(Clone)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Arc<Vec<f64>>,
}

impl Matrix {
    /// Creates a matrix from a row-major value buffer.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::Corrupt(format!(
                "buffer length {} does not match {}x{}",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Self {
            rows,
            cols,
            data: Arc::new(data),
        })
    }

    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: Arc::new(vec![0.0; rows * cols]),
        }
    }

    /// Creates a matrix with every cell set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: Arc::new(vec![value; rows * cols]),
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Self {
            rows: n,
            cols: n,
            data: Arc::new(data),
        }
    }

    /// Creates a single-cell matrix holding a scalar.
    pub fn scalar(value: f64) -> Self {
        Self::filled(1, 1, value)
    }

    /// Creates a column vector from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: Arc::new(values.to_vec()),
        }
    }

    /// Creates a row vector from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: Arc::new(values.to_vec()),
        }
    }

    /// Generates the sequence `from, from+incr, ...` up to (and including)
    /// `to` when it lands on the grid, as a column vector — mirrors DML's
    /// `seq()` builtin.
    pub fn seq(from: f64, to: f64, incr: f64) -> Self {
        // Index-based (from + i*incr): no accumulation drift on long
        // sequences, so lengths are stable across platforms.
        let mut v = Vec::new();
        if incr != 0.0 {
            let n = ((to - from) / incr + 1e-9).floor();
            if n >= 0.0 {
                for i in 0..=(n as usize) {
                    v.push(from + i as f64 * incr);
                }
            }
        }
        Self::col_vector(&v)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True when the matrix has zero cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap size in bytes (the value buffer).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<f64>()
    }

    /// Row-major value slice.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// The value at `(r, c)` with bounds checking.
    pub fn get(&self, r: usize, c: usize) -> Result<f64> {
        if r >= self.rows || c >= self.cols {
            return Err(MatrixError::OutOfBounds {
                op: "get",
                index: (r, c),
                shape: self.shape(),
            });
        }
        Ok(self.data[r * self.cols + c])
    }

    /// The value at `(r, c)` without bounds checking in release builds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable access to the value buffer, cloning it first if shared
    /// (copy-on-write).
    pub fn values_mut(&mut self) -> &mut [f64] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Sets the value at `(r, c)`, applying copy-on-write.
    pub fn set(&mut self, r: usize, c: usize, v: f64) -> Result<()> {
        if r >= self.rows || c >= self.cols {
            return Err(MatrixError::OutOfBounds {
                op: "set",
                index: (r, c),
                shape: self.shape(),
            });
        }
        let cols = self.cols;
        Arc::make_mut(&mut self.data)[r * cols + c] = v;
        Ok(())
    }

    /// Interprets a 1x1 matrix as a scalar.
    pub fn as_scalar(&self) -> Result<f64> {
        if self.rows == 1 && self.cols == 1 {
            Ok(self.data[0])
        } else {
            Err(MatrixError::DimensionMismatch {
                op: "as_scalar",
                lhs: self.shape(),
                rhs: (1, 1),
            })
        }
    }

    /// True when the two matrices have the same shape and all cells are
    /// within `tol` of each other.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol || (a.is_nan() && b.is_nan()))
    }

    /// A stable 64-bit content fingerprint (shape + bit pattern of values).
    ///
    /// Used by the simulated backends to key prediction caches and to check
    /// result equivalence across execution paths.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the shape and raw bit patterns.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.rows as u64);
        mix(self.cols as u64);
        for v in self.data.iter() {
            mix(v.to_bits());
        }
        h
    }

    /// Returns a deep copy whose buffer is uniquely owned.
    pub fn deep_clone(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: Arc::new(self.data.as_ref().clone()),
        }
    }

    /// Number of strong references to the shared value buffer (for tests of
    /// copy-on-write behaviour).
    pub fn buffer_refcount(&self) -> usize {
        Arc::strong_count(&self.data)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.len() <= 36 {
            writeln!(f)?;
            for r in 0..self.rows {
                write!(f, "  [")?;
                for c in 0..self.cols {
                    if c > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{:.4}", self.at(r, c))?;
                }
                writeln!(f, "]")?;
            }
        }
        Ok(())
    }
}

impl PartialEq for Matrix {
    fn eq(&self, other: &Self) -> bool {
        self.shape() == other.shape() && self.data == other.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn zeros_and_filled() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.values().iter().all(|&v| v == 0.0));
        let f = Matrix::filled(2, 2, 7.5);
        assert!(f.values().iter().all(|&v| v == 7.5));
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.at(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn seq_matches_dml_semantics() {
        let s = Matrix::seq(1.0, 5.0, 2.0);
        assert_eq!(s.values(), &[1.0, 3.0, 5.0]);
        let s = Matrix::seq(5.0, 1.0, -2.0);
        assert_eq!(s.values(), &[5.0, 3.0, 1.0]);
        let s = Matrix::seq(1.0, 1.0, 1.0);
        assert_eq!(s.values(), &[1.0]);
    }

    #[test]
    fn get_set_bounds_checked() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.set(1, 1, 3.0).is_ok());
        assert_eq!(m.get(1, 1).unwrap(), 3.0);
        assert!(m.get(2, 0).is_err());
        assert!(m.set(0, 2, 1.0).is_err());
    }

    #[test]
    fn copy_on_write_preserves_shared_buffer() {
        let a = Matrix::zeros(2, 2);
        let mut b = a.clone();
        assert_eq!(a.buffer_refcount(), 2);
        b.set(0, 0, 9.0).unwrap();
        assert_eq!(a.at(0, 0), 0.0);
        assert_eq!(b.at(0, 0), 9.0);
        assert_eq!(a.buffer_refcount(), 1);
    }

    #[test]
    fn scalar_roundtrip() {
        let s = Matrix::scalar(2.5);
        assert_eq!(s.as_scalar().unwrap(), 2.5);
        assert!(Matrix::zeros(2, 1).as_scalar().is_err());
    }

    #[test]
    fn fingerprint_distinguishes_content_and_shape() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 5.0]).unwrap();
        let c = Matrix::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), a.deep_clone().fingerprint());
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let a = Matrix::filled(2, 2, 1.0);
        let mut b = a.deep_clone();
        b.set(0, 0, 1.0 + 1e-12).unwrap();
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-15));
        assert!(!a.approx_eq(&Matrix::zeros(2, 3), 1.0));
    }
}
