//! Linear-system solve: Cholesky for symmetric positive definite systems
//! (the `solve(t(X)%*%X + lambda*I, t(X)%*%y)` path of `linRegDS`), with a
//! partial-pivoting LU fallback for general square systems.

use crate::dense::Matrix;
use crate::error::{MatrixError, Result};

/// Solves `A x = B` for `x`, where `A` is square (`n x n`) and `B` is
/// `n x k`. Tries Cholesky first; falls back to LU with partial pivoting.
pub fn solve(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let n = a.rows();
    if a.cols() != n || b.rows() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "solve",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if n == 0 {
        return Err(MatrixError::Empty("solve"));
    }
    match cholesky_solve(a, b) {
        Ok(x) => Ok(x),
        Err(_) => lu_solve(a, b),
    }
}

/// Cholesky factorization solve; errors unless `A` is symmetric positive
/// definite.
pub fn cholesky_solve(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let n = a.rows();
    // Cheap symmetry check on a sample of off-diagonal entries.
    for i in 0..n.min(8) {
        for j in 0..i {
            if (a.at(i, j) - a.at(j, i)).abs() > 1e-8 * (1.0 + a.at(i, j).abs()) {
                return Err(MatrixError::SingularMatrix);
            }
        }
    }
    // Factor A = L L^T.
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut s = a.at(i, j);
            for k in 0..j {
                s -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if s <= 0.0 || !s.is_finite() {
                    return Err(MatrixError::SingularMatrix);
                }
                l[i * n + i] = s.sqrt();
            } else {
                l[i * n + j] = s / l[j * n + j];
            }
        }
    }
    // Solve L y = B, then L^T x = y, one right-hand side at a time.
    let k = b.cols();
    let mut x = vec![0.0; n * k];
    for col in 0..k {
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b.at(i, col);
            for j in 0..i {
                s -= l[i * n + j] * y[j];
            }
            y[i] = s / l[i * n + i];
        }
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in i + 1..n {
                s -= l[j * n + i] * x[j * k + col];
            }
            x[i * k + col] = s / l[i * n + i];
        }
    }
    Matrix::from_vec(n, k, x)
}

/// LU solve with partial pivoting for general square systems.
pub fn lu_solve(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let n = a.rows();
    let k = b.cols();
    let mut lu = a.values().to_vec();
    let mut piv: Vec<usize> = (0..n).collect();

    for col in 0..n {
        // Pivot selection.
        let mut pivot = col;
        let mut best = lu[col * n + col].abs();
        for r in col + 1..n {
            let v = lu[r * n + col].abs();
            if v > best {
                best = v;
                pivot = r;
            }
        }
        if best < 1e-12 {
            return Err(MatrixError::SingularMatrix);
        }
        if pivot != col {
            for c in 0..n {
                lu.swap(col * n + c, pivot * n + c);
            }
            piv.swap(col, pivot);
        }
        // Elimination.
        let d = lu[col * n + col];
        for r in col + 1..n {
            let f = lu[r * n + col] / d;
            lu[r * n + col] = f;
            for c in col + 1..n {
                lu[r * n + c] -= f * lu[col * n + c];
            }
        }
    }

    let mut x = vec![0.0; n * k];
    for rhs in 0..k {
        // Apply permutation, then forward substitution with unit lower.
        let mut y: Vec<f64> = (0..n).map(|i| b.at(piv[i], rhs)).collect();
        for i in 1..n {
            for j in 0..i {
                y[i] -= lu[i * n + j] * y[j];
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            for j in i + 1..n {
                y[i] -= lu[i * n + j] * x[j * k + rhs];
            }
            x[i * k + rhs] = y[i] / lu[i * n + i];
        }
    }
    Matrix::from_vec(n, k, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul::{matmul, tsmm};
    use crate::ops::reorg::transpose;
    use crate::rand_gen::rand_uniform;

    #[test]
    fn solves_spd_system_via_cholesky() {
        let x = rand_uniform(50, 8, -1.0, 1.0, 11);
        let a = tsmm(&x).unwrap(); // SPD with high probability
        let truth = rand_uniform(8, 1, -1.0, 1.0, 12);
        let b = matmul(&a, &truth).unwrap();
        let sol = cholesky_solve(&a, &b).unwrap();
        assert!(sol.approx_eq(&truth, 1e-8));
    }

    #[test]
    fn solves_general_system_via_lu() {
        // Asymmetric, needs pivoting (zero on the diagonal).
        let a = Matrix::from_vec(3, 3, vec![0.0, 2.0, 1.0, 1.0, 0.0, 1.0, 2.0, 1.0, 0.0]).unwrap();
        let truth = Matrix::col_vector(&[1.0, -2.0, 3.0]);
        let b = matmul(&a, &truth).unwrap();
        let sol = solve(&a, &b).unwrap();
        assert!(sol.approx_eq(&truth, 1e-10));
    }

    #[test]
    fn multiple_right_hand_sides() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 1.0, 1.0, 3.0]).unwrap();
        let truth = Matrix::from_vec(2, 2, vec![1.0, 0.5, -1.0, 2.0]).unwrap();
        let b = matmul(&a, &truth).unwrap();
        let sol = solve(&a, &b).unwrap();
        assert!(sol.approx_eq(&truth, 1e-10));
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        let b = Matrix::col_vector(&[1.0, 2.0]);
        assert_eq!(solve(&a, &b), Err(MatrixError::SingularMatrix));
    }

    #[test]
    fn shape_validation() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 1);
        assert!(solve(&a, &b).is_err());
        let a = Matrix::identity(3);
        let b = Matrix::zeros(2, 1);
        assert!(solve(&a, &b).is_err());
    }

    #[test]
    fn lu_matches_cholesky_on_spd() {
        let x = rand_uniform(30, 6, -1.0, 1.0, 21);
        let a = tsmm(&x).unwrap();
        let b = matmul(&transpose(&x), &rand_uniform(30, 1, -1.0, 1.0, 22)).unwrap();
        let c = cholesky_solve(&a, &b).unwrap();
        let l = lu_solve(&a, &b).unwrap();
        assert!(c.approx_eq(&l, 1e-7));
    }
}
