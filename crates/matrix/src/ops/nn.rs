//! Neural-network kernels: conv2d (im2col), max pooling, softmax, dropout,
//! and the affine layer helper used by the DNN workloads (HDROP, EN2DE,
//! TLVIS, and the GPU micro-benchmarks).

use crate::dense::Matrix;
use crate::error::{MatrixError, Result};
use crate::ops::matmul::matmul;

/// Shape parameters of a 2-D convolution over NCHW-linearized images.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (number of filters).
    pub out_channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding in both dimensions.
    pub pad: usize,
}

impl Conv2dParams {
    /// Output spatial height.
    pub fn out_height(&self) -> usize {
        (self.height + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Output spatial width.
    pub fn out_width(&self) -> usize {
        (self.width + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Columns of the linearized output matrix (`C_out * H_out * W_out`).
    pub fn out_cols(&self) -> usize {
        self.out_channels * self.out_height() * self.out_width()
    }

    /// Columns of the linearized input matrix (`C_in * H * W`).
    pub fn in_cols(&self) -> usize {
        self.in_channels * self.height * self.width
    }
}

/// Shape parameters of 2-D max pooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool2dParams {
    /// Channels.
    pub channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Square pooling window.
    pub window: usize,
    /// Stride.
    pub stride: usize,
}

impl Pool2dParams {
    /// Output spatial height.
    pub fn out_height(&self) -> usize {
        (self.height - self.window) / self.stride + 1
    }

    /// Output spatial width.
    pub fn out_width(&self) -> usize {
        (self.width - self.window) / self.stride + 1
    }

    /// Columns of the linearized output.
    pub fn out_cols(&self) -> usize {
        self.channels * self.out_height() * self.out_width()
    }
}

/// 2-D convolution via im2col + matmul.
///
/// `input` is `N x (C_in*H*W)` (one linearized image per row); `weights` is
/// `C_out x (C_in*k*k)`. Returns `N x (C_out*H_out*W_out)`.
pub fn conv2d(input: &Matrix, weights: &Matrix, p: &Conv2dParams) -> Result<Matrix> {
    if input.cols() != p.in_cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "conv2d/input",
            lhs: input.shape(),
            rhs: (input.rows(), p.in_cols()),
        });
    }
    if weights.shape() != (p.out_channels, p.in_channels * p.kernel * p.kernel) {
        return Err(MatrixError::DimensionMismatch {
            op: "conv2d/weights",
            lhs: weights.shape(),
            rhs: (p.out_channels, p.in_channels * p.kernel * p.kernel),
        });
    }
    let (oh, ow) = (p.out_height(), p.out_width());
    let patch = p.in_channels * p.kernel * p.kernel;
    let n = input.rows();
    let mut out = Vec::with_capacity(n * p.out_cols());
    // Reused im2col buffer: one column per output pixel.
    let mut col = vec![0.0; patch * oh * ow];
    for img in 0..n {
        let row = input.row(img);
        im2col(row, p, &mut col);
        let colm = Matrix::from_vec(patch, oh * ow, col.clone())?;
        let conv = matmul(weights, &colm)?; // C_out x (oh*ow)
        out.extend_from_slice(conv.values());
    }
    Matrix::from_vec(n, p.out_cols(), out)
}

fn im2col(row: &[f64], p: &Conv2dParams, col: &mut [f64]) {
    let (oh, ow) = (p.out_height(), p.out_width());
    let hw = p.height * p.width;
    let mut idx = 0usize;
    for c in 0..p.in_channels {
        for kr in 0..p.kernel {
            for kc in 0..p.kernel {
                for or_ in 0..oh {
                    let ir = (or_ * p.stride + kr) as isize - p.pad as isize;
                    for oc in 0..ow {
                        let ic = (oc * p.stride + kc) as isize - p.pad as isize;
                        col[idx] = if ir >= 0
                            && (ir as usize) < p.height
                            && ic >= 0
                            && (ic as usize) < p.width
                        {
                            row[c * hw + ir as usize * p.width + ic as usize]
                        } else {
                            0.0
                        };
                        idx += 1;
                    }
                }
            }
        }
    }
}

/// 2-D max pooling over `N x (C*H*W)` linearized images.
pub fn max_pool2d(input: &Matrix, p: &Pool2dParams) -> Result<Matrix> {
    if input.cols() != p.channels * p.height * p.width {
        return Err(MatrixError::DimensionMismatch {
            op: "max_pool2d",
            lhs: input.shape(),
            rhs: (input.rows(), p.channels * p.height * p.width),
        });
    }
    let (oh, ow) = (p.out_height(), p.out_width());
    let hw = p.height * p.width;
    let mut out = Vec::with_capacity(input.rows() * p.out_cols());
    for img in 0..input.rows() {
        let row = input.row(img);
        for c in 0..p.channels {
            for or_ in 0..oh {
                for oc in 0..ow {
                    let mut best = f64::NEG_INFINITY;
                    for kr in 0..p.window {
                        for kc in 0..p.window {
                            let ir = or_ * p.stride + kr;
                            let ic = oc * p.stride + kc;
                            best = best.max(row[c * hw + ir * p.width + ic]);
                        }
                    }
                    out.push(best);
                }
            }
        }
    }
    Matrix::from_vec(input.rows(), p.out_cols(), out)
}

/// Row-wise softmax (numerically stabilized).
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = Vec::with_capacity(m.len());
    for r in 0..m.rows() {
        let row = m.row(r);
        let mx = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = row.iter().map(|&v| (v - mx).exp()).collect();
        let sum: f64 = exps.iter().sum();
        out.extend(exps.iter().map(|&e| e / sum));
    }
    Matrix::from_vec(m.rows(), m.cols(), out).expect("shape preserved")
}

/// Applies a dropout mask with keep probability `1 - rate`, scaling kept
/// cells by `1/(1-rate)` (inverted dropout). The mask is derived from a
/// deterministic seed so lineage-identified results are reproducible.
pub fn dropout(m: &Matrix, rate: f64, seed: u64) -> Matrix {
    if rate <= 0.0 {
        return m.clone();
    }
    let keep = 1.0 - rate;
    let scale = 1.0 / keep;
    // xorshift64* stream, cheap and deterministic.
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        (s.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
    };
    let out: Vec<f64> = m
        .values()
        .iter()
        .map(|&v| if next() < keep { v * scale } else { 0.0 })
        .collect();
    Matrix::from_vec(m.rows(), m.cols(), out).expect("shape preserved")
}

/// Affine layer: `X %*% W + b` with `b` a row vector broadcast across rows.
pub fn affine(x: &Matrix, w: &Matrix, b: &Matrix) -> Result<Matrix> {
    let xw = matmul(x, w)?;
    crate::ops::binary::binary(&xw, b, crate::ops::binary::BinaryOp::Add)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::agg::{aggregate, row_agg, AggOp};
    use crate::rand_gen::rand_uniform;

    #[test]
    fn conv2d_identity_kernel_preserves_image() {
        // 1x1 kernel with weight 1 reproduces the input.
        let p = Conv2dParams {
            in_channels: 1,
            out_channels: 1,
            height: 4,
            width: 4,
            kernel: 1,
            stride: 1,
            pad: 0,
        };
        let img = rand_uniform(2, 16, 0.0, 1.0, 5);
        let w = Matrix::filled(1, 1, 1.0);
        let out = conv2d(&img, &w, &p).unwrap();
        assert!(out.approx_eq(&img, 1e-12));
    }

    #[test]
    fn conv2d_box_filter_sums_patches() {
        let p = Conv2dParams {
            in_channels: 1,
            out_channels: 1,
            height: 3,
            width: 3,
            kernel: 3,
            stride: 1,
            pad: 0,
        };
        let img = Matrix::from_vec(1, 9, (1..=9).map(|v| v as f64).collect()).unwrap();
        let w = Matrix::filled(1, 9, 1.0);
        let out = conv2d(&img, &w, &p).unwrap();
        assert_eq!(out.shape(), (1, 1));
        assert_eq!(out.at(0, 0), 45.0);
    }

    #[test]
    fn conv2d_padding_expands_output() {
        let p = Conv2dParams {
            in_channels: 1,
            out_channels: 2,
            height: 4,
            width: 4,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!(p.out_height(), 4);
        let img = rand_uniform(1, 16, 0.0, 1.0, 6);
        let w = rand_uniform(2, 9, -1.0, 1.0, 7);
        let out = conv2d(&img, &w, &p).unwrap();
        assert_eq!(out.shape(), (1, 2 * 4 * 4));
    }

    #[test]
    fn max_pool_downsamples() {
        let p = Pool2dParams {
            channels: 1,
            height: 4,
            width: 4,
            window: 2,
            stride: 2,
        };
        let img = Matrix::from_vec(1, 16, (1..=16).map(|v| v as f64).collect()).unwrap();
        let out = max_pool2d(&img, &p).unwrap();
        assert_eq!(out.shape(), (1, 4));
        assert_eq!(out.values(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = rand_uniform(5, 10, -4.0, 4.0, 8);
        let s = softmax_rows(&m);
        let sums = row_agg(&s, AggOp::Sum).unwrap();
        for r in 0..5 {
            assert!((sums.at(r, 0) - 1.0).abs() < 1e-12);
        }
        assert!(aggregate(&s, AggOp::Min).unwrap() >= 0.0);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let m = Matrix::from_vec(1, 3, vec![1000.0, 1000.0, 999.0]).unwrap();
        let s = softmax_rows(&m);
        assert!(s.values().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn dropout_zeroes_roughly_rate_fraction() {
        let m = Matrix::filled(100, 100, 1.0);
        let d = dropout(&m, 0.3, 99);
        let zeros = d.values().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f64 / d.len() as f64;
        assert!((frac - 0.3).abs() < 0.03, "zero fraction {frac}");
        // Kept cells are scaled by 1/0.7.
        let kept: Vec<f64> = d.values().iter().copied().filter(|&v| v != 0.0).collect();
        assert!(kept.iter().all(|&v| (v - 1.0 / 0.7).abs() < 1e-12));
        // Deterministic per seed.
        assert!(d.approx_eq(&dropout(&m, 0.3, 99), 0.0));
        assert!(!d.approx_eq(&dropout(&m, 0.3, 100), 0.0));
    }

    #[test]
    fn dropout_rate_zero_is_identity() {
        let m = rand_uniform(4, 4, -1.0, 1.0, 1);
        assert!(dropout(&m, 0.0, 5).approx_eq(&m, 0.0));
    }

    #[test]
    fn affine_adds_bias_rowwise() {
        let x = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let w = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::row_vector(&[10.0, 20.0]);
        let out = affine(&x, &w, &b).unwrap();
        assert_eq!(out.values(), &[11.0, 22.0, 13.0, 24.0]);
    }
}
