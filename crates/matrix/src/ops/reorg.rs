//! Reorganization operations: transpose, slicing, row/column appends.

use crate::dense::Matrix;
use crate::error::{MatrixError, Result};

/// `t(m)`.
pub fn transpose(m: &Matrix) -> Matrix {
    let (rows, cols) = m.shape();
    let src = m.values();
    let mut out = vec![0.0; rows * cols];
    // Blocked transpose for cache locality on larger inputs.
    const B: usize = 32;
    for rb in (0..rows).step_by(B) {
        for cb in (0..cols).step_by(B) {
            for r in rb..(rb + B).min(rows) {
                for c in cb..(cb + B).min(cols) {
                    out[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
    Matrix::from_vec(cols, rows, out).expect("shape preserved")
}

/// Rows `[start, end)` of `m` — DML's `X[start:end,]`.
pub fn slice_rows(m: &Matrix, start: usize, end: usize) -> Result<Matrix> {
    if start > end || end > m.rows() {
        return Err(MatrixError::OutOfBounds {
            op: "slice_rows",
            index: (start, end),
            shape: m.shape(),
        });
    }
    let cols = m.cols();
    let out = m.values()[start * cols..end * cols].to_vec();
    Matrix::from_vec(end - start, cols, out)
}

/// Columns `[start, end)` of `m` — DML's `X[,start:end]`.
pub fn slice_cols(m: &Matrix, start: usize, end: usize) -> Result<Matrix> {
    if start > end || end > m.cols() {
        return Err(MatrixError::OutOfBounds {
            op: "slice_cols",
            index: (start, end),
            shape: m.shape(),
        });
    }
    let cols = m.cols();
    let width = end - start;
    let mut out = Vec::with_capacity(m.rows() * width);
    for r in 0..m.rows() {
        out.extend_from_slice(&m.values()[r * cols + start..r * cols + end]);
    }
    Matrix::from_vec(m.rows(), width, out)
}

/// Vertical append (`rbind`): stacks `top` above `bottom`.
pub fn rbind(top: &Matrix, bottom: &Matrix) -> Result<Matrix> {
    if top.cols() != bottom.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "rbind",
            lhs: top.shape(),
            rhs: bottom.shape(),
        });
    }
    let mut out = Vec::with_capacity(top.len() + bottom.len());
    out.extend_from_slice(top.values());
    out.extend_from_slice(bottom.values());
    Matrix::from_vec(top.rows() + bottom.rows(), top.cols(), out)
}

/// Horizontal append (`cbind`): places `right` next to `left`.
pub fn cbind(left: &Matrix, right: &Matrix) -> Result<Matrix> {
    if left.rows() != right.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "cbind",
            lhs: left.shape(),
            rhs: right.shape(),
        });
    }
    let cols = left.cols() + right.cols();
    let mut out = Vec::with_capacity(left.rows() * cols);
    for r in 0..left.rows() {
        out.extend_from_slice(left.row(r));
        out.extend_from_slice(right.row(r));
    }
    Matrix::from_vec(left.rows(), cols, out)
}

/// Selects the rows of `m` flagged by the 0/1 column vector `mask` —
/// the core of `removeEmpty(target=X, margin="rows", select=mask)` used by
/// sampling and outlier-removal primitives.
pub fn select_rows(m: &Matrix, mask: &Matrix) -> Result<Matrix> {
    if mask.rows() != m.rows() || mask.cols() != 1 {
        return Err(MatrixError::DimensionMismatch {
            op: "select_rows",
            lhs: m.shape(),
            rhs: mask.shape(),
        });
    }
    let mut out = Vec::new();
    let mut kept = 0usize;
    for r in 0..m.rows() {
        if mask.at(r, 0) != 0.0 {
            out.extend_from_slice(m.row(r));
            kept += 1;
        }
    }
    Matrix::from_vec(kept, m.cols(), out)
}

/// Gathers rows of `m` by 0-based indices (order-preserving, repeats
/// allowed) — used by shuffling and mini-batch slicing with permutations.
pub fn gather_rows(m: &Matrix, indices: &[usize]) -> Result<Matrix> {
    let mut out = Vec::with_capacity(indices.len() * m.cols());
    for &idx in indices {
        if idx >= m.rows() {
            return Err(MatrixError::OutOfBounds {
                op: "gather_rows",
                index: (idx, 0),
                shape: m.shape(),
            });
        }
        out.extend_from_slice(m.row(idx));
    }
    Matrix::from_vec(indices.len(), m.cols(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_gen::rand_uniform;

    #[test]
    fn transpose_roundtrip() {
        let m = rand_uniform(33, 65, -1.0, 1.0, 3);
        let tt = transpose(&transpose(&m));
        assert!(m.approx_eq(&tt, 0.0));
        assert_eq!(transpose(&m).shape(), (65, 33));
    }

    #[test]
    fn transpose_small_exact() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = transpose(&m);
        assert_eq!(t.values(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn row_and_col_slices() {
        let m = Matrix::from_vec(3, 3, (1..=9).map(|v| v as f64).collect()).unwrap();
        let rs = slice_rows(&m, 1, 3).unwrap();
        assert_eq!(rs.values(), &[4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        let cs = slice_cols(&m, 0, 2).unwrap();
        assert_eq!(cs.values(), &[1.0, 2.0, 4.0, 5.0, 7.0, 8.0]);
        assert!(slice_rows(&m, 2, 4).is_err());
        assert!(slice_cols(&m, 2, 1).is_err());
    }

    #[test]
    fn empty_slices_allowed() {
        let m = Matrix::zeros(3, 3);
        let s = slice_rows(&m, 1, 1).unwrap();
        assert_eq!(s.shape(), (0, 3));
    }

    #[test]
    fn rbind_cbind() {
        let a = Matrix::filled(1, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        let v = rbind(&a, &b).unwrap();
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.values(), &[1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);

        let l = Matrix::filled(2, 1, 3.0);
        let r = Matrix::filled(2, 2, 4.0);
        let h = cbind(&l, &r).unwrap();
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h.values(), &[3.0, 4.0, 4.0, 3.0, 4.0, 4.0]);

        assert!(rbind(&a, &Matrix::zeros(1, 3)).is_err());
        assert!(cbind(&l, &Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn select_rows_by_mask() {
        let m = Matrix::from_vec(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]).unwrap();
        let mask = Matrix::col_vector(&[1.0, 0.0, 1.0]);
        let s = select_rows(&m, &mask).unwrap();
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.values(), &[1.0, 1.0, 3.0, 3.0]);
    }

    #[test]
    fn gather_rows_with_repeats() {
        let m = Matrix::from_vec(3, 1, vec![10.0, 20.0, 30.0]).unwrap();
        let g = gather_rows(&m, &[2, 0, 2]).unwrap();
        assert_eq!(g.values(), &[30.0, 10.0, 30.0]);
        assert!(gather_rows(&m, &[3]).is_err());
    }
}
