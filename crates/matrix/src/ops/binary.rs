//! Elementwise binary operations with row/column-vector broadcasting.

use crate::dense::Matrix;
use crate::error::{MatrixError, Result};

/// Elementwise binary operator codes, matching DML semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b` (Hadamard)
    Mul,
    /// `a / b`
    Div,
    /// `a ^ b`
    Pow,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// `a > b` as 0/1
    Greater,
    /// `a < b` as 0/1
    Less,
    /// `a >= b` as 0/1
    GreaterEq,
    /// `a <= b` as 0/1
    LessEq,
    /// `a == b` as 0/1
    Equal,
    /// `a != b` as 0/1
    NotEqual,
}

impl BinaryOp {
    /// Applies the operator to one pair of values.
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
            BinaryOp::Pow => a.powf(b),
            BinaryOp::Min => a.min(b),
            BinaryOp::Max => a.max(b),
            BinaryOp::Greater => (a > b) as u8 as f64,
            BinaryOp::Less => (a < b) as u8 as f64,
            BinaryOp::GreaterEq => (a >= b) as u8 as f64,
            BinaryOp::LessEq => (a <= b) as u8 as f64,
            BinaryOp::Equal => (a == b) as u8 as f64,
            BinaryOp::NotEqual => (a != b) as u8 as f64,
        }
    }

    /// Operator opcode string used in lineage traces.
    pub fn opcode(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Pow => "^",
            BinaryOp::Min => "min",
            BinaryOp::Max => "max",
            BinaryOp::Greater => ">",
            BinaryOp::Less => "<",
            BinaryOp::GreaterEq => ">=",
            BinaryOp::LessEq => "<=",
            BinaryOp::Equal => "==",
            BinaryOp::NotEqual => "!=",
        }
    }
}

/// Elementwise `lhs op rhs` with DML-style broadcasting.
///
/// Supported shapes: equal shapes, `rhs` a column vector with matching rows
/// (broadcast across columns), `rhs` a row vector with matching columns
/// (broadcast across rows), the symmetric cases for `lhs`, and 1x1 operands
/// on either side.
pub fn binary(lhs: &Matrix, rhs: &Matrix, op: BinaryOp) -> Result<Matrix> {
    if lhs.shape() == rhs.shape() {
        let out: Vec<f64> = lhs
            .values()
            .iter()
            .zip(rhs.values())
            .map(|(&a, &b)| op.apply(a, b))
            .collect();
        return Matrix::from_vec(lhs.rows(), lhs.cols(), out);
    }
    // Scalar-shaped operands.
    if rhs.shape() == (1, 1) {
        return Ok(binary_scalar(lhs, rhs.at(0, 0), op, false));
    }
    if lhs.shape() == (1, 1) {
        return Ok(binary_scalar(rhs, lhs.at(0, 0), op, true));
    }
    // Column-vector broadcast.
    if rhs.cols() == 1 && rhs.rows() == lhs.rows() {
        let mut out = Vec::with_capacity(lhs.len());
        for r in 0..lhs.rows() {
            let b = rhs.at(r, 0);
            out.extend(lhs.row(r).iter().map(|&a| op.apply(a, b)));
        }
        return Matrix::from_vec(lhs.rows(), lhs.cols(), out);
    }
    if lhs.cols() == 1 && lhs.rows() == rhs.rows() {
        let mut out = Vec::with_capacity(rhs.len());
        for r in 0..rhs.rows() {
            let a = lhs.at(r, 0);
            out.extend(rhs.row(r).iter().map(|&b| op.apply(a, b)));
        }
        return Matrix::from_vec(rhs.rows(), rhs.cols(), out);
    }
    // Row-vector broadcast.
    if rhs.rows() == 1 && rhs.cols() == lhs.cols() {
        let brow = rhs.row(0);
        let mut out = Vec::with_capacity(lhs.len());
        for r in 0..lhs.rows() {
            out.extend(lhs.row(r).iter().zip(brow).map(|(&a, &b)| op.apply(a, b)));
        }
        return Matrix::from_vec(lhs.rows(), lhs.cols(), out);
    }
    if lhs.rows() == 1 && lhs.cols() == rhs.cols() {
        let arow = lhs.row(0);
        let mut out = Vec::with_capacity(rhs.len());
        for r in 0..rhs.rows() {
            out.extend(arow.iter().zip(rhs.row(r)).map(|(&a, &b)| op.apply(a, b)));
        }
        return Matrix::from_vec(rhs.rows(), rhs.cols(), out);
    }
    Err(MatrixError::DimensionMismatch {
        op: "binary",
        lhs: lhs.shape(),
        rhs: rhs.shape(),
    })
}

/// Elementwise `m op s` (or `s op m` when `scalar_on_left`).
pub fn binary_scalar(m: &Matrix, s: f64, op: BinaryOp, scalar_on_left: bool) -> Matrix {
    let out: Vec<f64> = m
        .values()
        .iter()
        .map(|&v| {
            if scalar_on_left {
                op.apply(s, v)
            } else {
                op.apply(v, s)
            }
        })
        .collect();
    Matrix::from_vec(m.rows(), m.cols(), out).expect("shape preserved")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn same_shape_add() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[10.0, 20.0, 30.0, 40.0]);
        let c = binary(&a, &b, BinaryOp::Add).unwrap();
        assert_eq!(c.values(), &[11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn column_vector_broadcast() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let v = m(2, 1, &[10.0, 100.0]);
        let c = binary(&a, &v, BinaryOp::Mul).unwrap();
        assert_eq!(c.values(), &[10.0, 20.0, 30.0, 400.0, 500.0, 600.0]);
    }

    #[test]
    fn row_vector_broadcast() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let v = m(1, 3, &[1.0, 0.0, -1.0]);
        let c = binary(&a, &v, BinaryOp::Add).unwrap();
        assert_eq!(c.values(), &[2.0, 2.0, 2.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn scalar_operand_either_side() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let s = Matrix::scalar(2.0);
        let c = binary(&a, &s, BinaryOp::Pow).unwrap();
        assert_eq!(c.values(), &[1.0, 4.0, 9.0]);
        let d = binary(&s, &a, BinaryOp::Sub).unwrap();
        assert_eq!(d.values(), &[1.0, 0.0, -1.0]);
    }

    #[test]
    fn comparison_ops_produce_indicators() {
        let a = m(1, 4, &[1.0, 2.0, 3.0, 4.0]);
        let c = binary_scalar(&a, 2.5, BinaryOp::Greater, false);
        assert_eq!(c.values(), &[0.0, 0.0, 1.0, 1.0]);
        let c = binary_scalar(&a, 2.0, BinaryOp::Equal, false);
        assert_eq!(c.values(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn incompatible_shapes_rejected() {
        let a = m(2, 3, &[0.0; 6]);
        let b = m(3, 2, &[0.0; 6]);
        assert!(matches!(
            binary(&a, &b, BinaryOp::Add),
            Err(MatrixError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn min_max_and_div() {
        let a = m(1, 3, &[1.0, -2.0, 3.0]);
        let b = m(1, 3, &[2.0, -1.0, 3.0]);
        assert_eq!(
            binary(&a, &b, BinaryOp::Min).unwrap().values(),
            &[1.0, -2.0, 3.0]
        );
        assert_eq!(
            binary(&a, &b, BinaryOp::Max).unwrap().values(),
            &[2.0, -1.0, 3.0]
        );
        assert_eq!(
            binary(&a, &b, BinaryOp::Div).unwrap().values(),
            &[0.5, 2.0, 1.0]
        );
    }
}
