//! Elementwise unary operations.

use crate::dense::Matrix;

/// Elementwise unary operator codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `exp(x)`
    Exp,
    /// Natural logarithm.
    Log,
    /// `sqrt(x)`
    Sqrt,
    /// `|x|`
    Abs,
    /// `-x`
    Neg,
    /// `round(x)` (half away from zero)
    Round,
    /// `floor(x)`
    Floor,
    /// `ceil(x)`
    Ceil,
    /// Rectified linear unit: `max(0, x)`.
    Relu,
    /// Logistic sigmoid: `1 / (1 + exp(-x))`.
    Sigmoid,
    /// `tanh(x)`
    Tanh,
    /// Sign function in `{-1, 0, 1}`.
    Sign,
    /// `1/x`
    Recip,
    /// Indicator of non-zero cells.
    NotZero,
    /// Indicator of NaN cells (used by imputation primitives).
    IsNan,
    /// Replaces NaN cells with zero (used by imputation primitives).
    Nan0,
}

impl UnaryOp {
    /// Applies the operator to one value.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            UnaryOp::Exp => x.exp(),
            UnaryOp::Log => x.ln(),
            UnaryOp::Sqrt => x.sqrt(),
            UnaryOp::Abs => x.abs(),
            UnaryOp::Neg => -x,
            UnaryOp::Round => x.round(),
            UnaryOp::Floor => x.floor(),
            UnaryOp::Ceil => x.ceil(),
            UnaryOp::Relu => x.max(0.0),
            UnaryOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            UnaryOp::Tanh => x.tanh(),
            UnaryOp::Sign => {
                if x > 0.0 {
                    1.0
                } else if x < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            UnaryOp::Recip => 1.0 / x,
            UnaryOp::NotZero => (x != 0.0) as u8 as f64,
            UnaryOp::IsNan => x.is_nan() as u8 as f64,
            UnaryOp::Nan0 => {
                if x.is_nan() {
                    0.0
                } else {
                    x
                }
            }
        }
    }

    /// Operator opcode string used in lineage traces.
    pub fn opcode(self) -> &'static str {
        match self {
            UnaryOp::Exp => "exp",
            UnaryOp::Log => "log",
            UnaryOp::Sqrt => "sqrt",
            UnaryOp::Abs => "abs",
            UnaryOp::Neg => "neg",
            UnaryOp::Round => "round",
            UnaryOp::Floor => "floor",
            UnaryOp::Ceil => "ceil",
            UnaryOp::Relu => "relu",
            UnaryOp::Sigmoid => "sigmoid",
            UnaryOp::Tanh => "tanh",
            UnaryOp::Sign => "sign",
            UnaryOp::Recip => "recip",
            UnaryOp::NotZero => "notzero",
            UnaryOp::IsNan => "isnan",
            UnaryOp::Nan0 => "nan0",
        }
    }
}

/// Applies `op` to every cell of `m`.
pub fn unary(m: &Matrix, op: UnaryOp) -> Matrix {
    let out: Vec<f64> = m.values().iter().map(|&v| op.apply(v)).collect();
    Matrix::from_vec(m.rows(), m.cols(), out).expect("shape preserved")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let m = Matrix::from_vec(1, 4, vec![-2.0, -0.5, 0.0, 3.0]).unwrap();
        assert_eq!(unary(&m, UnaryOp::Relu).values(), &[0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn sigmoid_is_bounded_and_symmetric() {
        let m = Matrix::from_vec(1, 3, vec![-10.0, 0.0, 10.0]).unwrap();
        let s = unary(&m, UnaryOp::Sigmoid);
        assert!(s.at(0, 0) < 0.001);
        assert_eq!(s.at(0, 1), 0.5);
        assert!(s.at(0, 2) > 0.999);
    }

    #[test]
    fn exp_log_roundtrip() {
        let m = Matrix::from_vec(1, 3, vec![0.5, 1.0, 2.0]).unwrap();
        let back = unary(&unary(&m, UnaryOp::Log), UnaryOp::Exp);
        assert!(m.approx_eq(&back, 1e-12));
    }

    #[test]
    fn sign_and_notzero() {
        let m = Matrix::from_vec(1, 3, vec![-4.0, 0.0, 9.0]).unwrap();
        assert_eq!(unary(&m, UnaryOp::Sign).values(), &[-1.0, 0.0, 1.0]);
        assert_eq!(unary(&m, UnaryOp::NotZero).values(), &[1.0, 0.0, 1.0]);
    }

    #[test]
    fn isnan_flags_missing_values() {
        let m = Matrix::from_vec(1, 3, vec![1.0, f64::NAN, 3.0]).unwrap();
        assert_eq!(unary(&m, UnaryOp::IsNan).values(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn rounding_family() {
        let m = Matrix::from_vec(1, 3, vec![1.4, 1.5, -1.5]).unwrap();
        assert_eq!(unary(&m, UnaryOp::Round).values(), &[1.0, 2.0, -2.0]);
        assert_eq!(unary(&m, UnaryOp::Floor).values(), &[1.0, 1.0, -2.0]);
        assert_eq!(unary(&m, UnaryOp::Ceil).values(), &[2.0, 2.0, -1.0]);
    }
}
