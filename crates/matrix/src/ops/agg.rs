//! Full, row-wise, and column-wise aggregations.

use crate::dense::Matrix;
use crate::error::{MatrixError, Result};

/// Aggregation operator codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggOp {
    /// Sum of values.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sum of squares (used by norms and variance computations).
    SumSq,
    /// Number of non-zero values.
    Nnz,
    /// Population variance.
    Var,
    /// Index (1-based, as in DML) of the row-wise maximum; only valid for
    /// row aggregation.
    ArgMax,
}

impl AggOp {
    /// Opcode string used in lineage traces.
    pub fn opcode(self) -> &'static str {
        match self {
            AggOp::Sum => "sum",
            AggOp::Mean => "mean",
            AggOp::Min => "min",
            AggOp::Max => "max",
            AggOp::SumSq => "sumsq",
            AggOp::Nnz => "nnz",
            AggOp::Var => "var",
            AggOp::ArgMax => "argmax",
        }
    }
}

fn agg_slice(values: impl Iterator<Item = f64>, op: AggOp, n: usize) -> f64 {
    match op {
        AggOp::Sum => values.sum(),
        AggOp::Mean => values.sum::<f64>() / n as f64,
        AggOp::Min => values.fold(f64::INFINITY, f64::min),
        AggOp::Max => values.fold(f64::NEG_INFINITY, f64::max),
        AggOp::SumSq => values.map(|v| v * v).sum(),
        AggOp::Nnz => values.filter(|&v| v != 0.0).count() as f64,
        AggOp::Var => {
            let vals: Vec<f64> = values.collect();
            let mean = vals.iter().sum::<f64>() / n as f64;
            vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64
        }
        AggOp::ArgMax => {
            let mut best = f64::NEG_INFINITY;
            let mut idx = 0usize;
            for (i, v) in values.enumerate() {
                if v > best {
                    best = v;
                    idx = i;
                }
            }
            (idx + 1) as f64
        }
    }
}

/// Aggregates the full matrix to a scalar.
pub fn aggregate(m: &Matrix, op: AggOp) -> Result<f64> {
    if m.is_empty() {
        return Err(MatrixError::Empty("aggregate"));
    }
    Ok(agg_slice(m.values().iter().copied(), op, m.len()))
}

/// Aggregates each row, producing a column vector (`rows x 1`).
pub fn row_agg(m: &Matrix, op: AggOp) -> Result<Matrix> {
    if m.is_empty() {
        return Err(MatrixError::Empty("row_agg"));
    }
    let out: Vec<f64> = (0..m.rows())
        .map(|r| agg_slice(m.row(r).iter().copied(), op, m.cols()))
        .collect();
    Matrix::from_vec(m.rows(), 1, out)
}

/// Aggregates each column, producing a row vector (`1 x cols`).
pub fn col_agg(m: &Matrix, op: AggOp) -> Result<Matrix> {
    if m.is_empty() {
        return Err(MatrixError::Empty("col_agg"));
    }
    let cols = m.cols();
    let out: Vec<f64> = (0..cols)
        .map(|c| agg_slice((0..m.rows()).map(|r| m.at(r, c)), op, m.rows()))
        .collect();
    Matrix::from_vec(1, cols, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m23() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn full_aggregations() {
        let m = m23();
        assert_eq!(aggregate(&m, AggOp::Sum).unwrap(), 21.0);
        assert_eq!(aggregate(&m, AggOp::Mean).unwrap(), 3.5);
        assert_eq!(aggregate(&m, AggOp::Min).unwrap(), 1.0);
        assert_eq!(aggregate(&m, AggOp::Max).unwrap(), 6.0);
        assert_eq!(aggregate(&m, AggOp::SumSq).unwrap(), 91.0);
    }

    #[test]
    fn nnz_counts_nonzeros() {
        let m = Matrix::from_vec(2, 2, vec![0.0, 1.0, 0.0, -2.0]).unwrap();
        assert_eq!(aggregate(&m, AggOp::Nnz).unwrap(), 2.0);
    }

    #[test]
    fn row_and_col_sums() {
        let m = m23();
        assert_eq!(row_agg(&m, AggOp::Sum).unwrap().values(), &[6.0, 15.0]);
        assert_eq!(col_agg(&m, AggOp::Sum).unwrap().values(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn row_argmax_is_one_based() {
        let m = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.0, 0.5, 0.2, 0.3]).unwrap();
        assert_eq!(row_agg(&m, AggOp::ArgMax).unwrap().values(), &[2.0, 1.0]);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let m = Matrix::filled(3, 3, 4.2);
        assert!(aggregate(&m, AggOp::Var).unwrap().abs() < 1e-12);
        let v = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((aggregate(&v, AggOp::Var).unwrap() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_rejected() {
        let m = Matrix::zeros(0, 0);
        assert!(aggregate(&m, AggOp::Sum).is_err());
        assert!(row_agg(&m, AggOp::Sum).is_err());
        assert!(col_agg(&m, AggOp::Sum).is_err());
    }

    #[test]
    fn col_mean_matches_manual() {
        let m = m23();
        let cm = col_agg(&m, AggOp::Mean).unwrap();
        assert_eq!(cm.values(), &[2.5, 3.5, 4.5]);
    }
}
