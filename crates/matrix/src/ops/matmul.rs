//! Matrix multiplication kernels.
//!
//! The single-threaded kernel uses i-k-j loop order over the row-major
//! buffers (cache-friendly, auto-vectorizable inner loop). The parallel
//! kernel splits the output row range across scoped threads — this is the
//! kernel the simulated Spark executors and the simulated GPU device invoke,
//! so its results are bit-identical to the sequential one.

use crate::dense::Matrix;
use crate::error::{MatrixError, Result};

/// `lhs %*% rhs` (single-threaded).
pub fn matmul(lhs: &Matrix, rhs: &Matrix) -> Result<Matrix> {
    if lhs.cols() != rhs.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "matmul",
            lhs: lhs.shape(),
            rhs: rhs.shape(),
        });
    }
    let (m, k, n) = (lhs.rows(), lhs.cols(), rhs.cols());
    let mut out = vec![0.0; m * n];
    matmul_into(lhs.values(), rhs.values(), &mut out, m, k, n, 0, m);
    Matrix::from_vec(m, n, out)
}

/// `lhs %*% rhs` using up to `threads` scoped worker threads over row
/// partitions of the output.
pub fn matmul_parallel(lhs: &Matrix, rhs: &Matrix, threads: usize) -> Result<Matrix> {
    if lhs.cols() != rhs.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "matmul",
            lhs: lhs.shape(),
            rhs: rhs.shape(),
        });
    }
    let (m, k, n) = (lhs.rows(), lhs.cols(), rhs.cols());
    let threads = threads.max(1).min(m.max(1));
    if threads == 1 || m * n < 64 * 64 {
        return matmul(lhs, rhs);
    }
    let mut out = vec![0.0; m * n];
    let rows_per = m.div_ceil(threads);
    let a = lhs.values();
    let b = rhs.values();
    std::thread::scope(|scope| {
        let mut rest: &mut [f64] = &mut out;
        let mut start = 0usize;
        while start < m {
            let take = rows_per.min(m - start) * n;
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            let row0 = start;
            let row1 = start + take / n;
            scope.spawn(move || {
                matmul_into(a, b, chunk, m, k, n, row0, row1);
            });
            start = row1;
        }
    });
    Matrix::from_vec(m, n, out)
}

/// Computes rows `[row0, row1)` of the product into `out` (which holds only
/// those rows).
#[allow(clippy::too_many_arguments)]
fn matmul_into(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    _m: usize,
    k: usize,
    n: usize,
    row0: usize,
    row1: usize,
) {
    for i in row0..row1 {
        let orow = &mut out[(i - row0) * n..(i - row0 + 1) * n];
        let arow = &a[i * k..(i + 1) * k];
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                *o += aik * bkj;
            }
        }
    }
}

/// Transpose-self matrix multiply `t(X) %*% X` — the hot kernel of
/// `linRegDS` and L2SVM. Exploits the symmetry of the result.
pub fn tsmm(x: &Matrix) -> Result<Matrix> {
    let (m, n) = x.shape();
    if m == 0 || n == 0 {
        return Err(MatrixError::Empty("tsmm"));
    }
    let a = x.values();
    let mut out = vec![0.0; n * n];
    for r in 0..m {
        let row = &a[r * n..(r + 1) * n];
        for i in 0..n {
            let vi = row[i];
            if vi == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for j in i..n {
                orow[j] += vi * row[j];
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..n {
        for j in 0..i {
            out[i * n + j] = out[j * n + i];
        }
    }
    Matrix::from_vec(n, n, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::reorg::transpose;
    use crate::rand_gen::rand_uniform;

    fn m(rows: usize, cols: usize, v: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn small_product() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.values(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = rand_uniform(5, 5, -1.0, 1.0, 42);
        let i = Matrix::identity(5);
        assert!(matmul(&a, &i).unwrap().approx_eq(&a, 1e-12));
        assert!(matmul(&i, &a).unwrap().approx_eq(&a, 1e-12));
    }

    #[test]
    fn mismatched_inner_dims_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = rand_uniform(130, 70, -1.0, 1.0, 1);
        let b = rand_uniform(70, 90, -1.0, 1.0, 2);
        let s = matmul(&a, &b).unwrap();
        for threads in [2, 3, 8, 200] {
            let p = matmul_parallel(&a, &b, threads).unwrap();
            assert!(p.approx_eq(&s, 0.0), "threads={threads}");
        }
    }

    #[test]
    fn tsmm_matches_explicit_transpose_multiply() {
        let x = rand_uniform(40, 12, -2.0, 2.0, 7);
        let expected = matmul(&transpose(&x), &x).unwrap();
        let got = tsmm(&x).unwrap();
        assert!(got.approx_eq(&expected, 1e-9));
    }

    #[test]
    fn vector_products() {
        // Row vector times matrix (the broadcast-based y^T X of Example 4.1).
        let yt = m(1, 3, &[1.0, 2.0, 3.0]);
        let x = m(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let b = matmul(&yt, &x).unwrap();
        assert_eq!(b.values(), &[4.0, 5.0]);
    }
}
