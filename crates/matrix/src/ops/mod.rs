//! Matrix operator kernels.
//!
//! Each submodule implements one family of operations from the SystemDS
//! operator set that the MEMPHIS runtime executes: elementwise binary and
//! unary maps, aggregations, matrix multiplication, reorganization
//! (transpose, slicing, appends), linear-system solves, and neural-network
//! kernels.

pub mod agg;
pub mod binary;
pub mod matmul;
pub mod nn;
pub mod reorg;
pub mod solve;
pub mod unary;

pub use agg::{aggregate, col_agg, row_agg, AggOp};
pub use binary::{binary, binary_scalar, BinaryOp};
pub use matmul::{matmul, matmul_parallel, tsmm};
pub use nn::{conv2d, max_pool2d, Conv2dParams, Pool2dParams};
pub use reorg::{cbind, rbind, slice_cols, slice_rows, transpose};
pub use solve::solve;
pub use unary::{unary, UnaryOp};
