//! Blocked (tiled) matrices — the partitioned representation the simulated
//! Spark backend distributes as keyed RDD collections, mirroring SystemDS's
//! binary-block matrices.

use crate::dense::Matrix;
use crate::error::{MatrixError, Result};
use crate::ops::reorg::{slice_cols, slice_rows};

/// Key of one tile within a blocked matrix: `(row_block, col_block)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    /// 0-based row-block index.
    pub row: usize,
    /// 0-based column-block index.
    pub col: usize,
}

/// A matrix tiled into `blen x blen` blocks (boundary blocks may be
/// smaller). Tiles are stored in row-block-major order.
#[derive(Debug, Clone)]
pub struct BlockedMatrix {
    rows: usize,
    cols: usize,
    blen: usize,
    blocks: Vec<(BlockId, Matrix)>,
}

impl BlockedMatrix {
    /// Tiles a dense matrix with block side length `blen`.
    pub fn from_dense(m: &Matrix, blen: usize) -> Result<Self> {
        if blen == 0 {
            return Err(MatrixError::Empty("block length"));
        }
        let (rows, cols) = m.shape();
        let mut blocks = Vec::new();
        let nrb = rows.div_ceil(blen).max(1);
        let ncb = cols.div_ceil(blen).max(1);
        for rb in 0..nrb {
            let r0 = rb * blen;
            let r1 = ((rb + 1) * blen).min(rows);
            let rslice = slice_rows(m, r0.min(rows), r1)?;
            for cb in 0..ncb {
                let c0 = cb * blen;
                let c1 = ((cb + 1) * blen).min(cols);
                let tile = slice_cols(&rslice, c0.min(cols), c1)?;
                blocks.push((BlockId { row: rb, col: cb }, tile));
            }
        }
        Ok(Self {
            rows,
            cols,
            blen,
            blocks,
        })
    }

    /// Reassembles the dense matrix from its tiles.
    pub fn to_dense(&self) -> Result<Matrix> {
        let mut out = vec![0.0; self.rows * self.cols];
        for (id, tile) in &self.blocks {
            let r0 = id.row * self.blen;
            let c0 = id.col * self.blen;
            for r in 0..tile.rows() {
                let dst = (r0 + r) * self.cols + c0;
                out[dst..dst + tile.cols()].copy_from_slice(tile.row(r));
            }
        }
        Matrix::from_vec(self.rows, self.cols, out)
    }

    /// Builds a blocked matrix directly from tiles (used by the distributed
    /// backend when collecting job results).
    pub fn from_blocks(
        rows: usize,
        cols: usize,
        blen: usize,
        blocks: Vec<(BlockId, Matrix)>,
    ) -> Self {
        Self {
            rows,
            cols,
            blen,
            blocks,
        }
    }

    /// Total logical rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total logical columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Block side length.
    pub fn blen(&self) -> usize {
        self.blen
    }

    /// Number of row blocks.
    pub fn num_row_blocks(&self) -> usize {
        self.rows.div_ceil(self.blen).max(1)
    }

    /// Number of column blocks.
    pub fn num_col_blocks(&self) -> usize {
        self.cols.div_ceil(self.blen).max(1)
    }

    /// All tiles with their keys.
    pub fn blocks(&self) -> &[(BlockId, Matrix)] {
        &self.blocks
    }

    /// Consumes the blocked matrix, returning its tiles.
    pub fn into_blocks(self) -> Vec<(BlockId, Matrix)> {
        self.blocks
    }

    /// Approximate in-memory size in bytes across all tiles.
    pub fn size_bytes(&self) -> usize {
        self.blocks.iter().map(|(_, b)| b.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_gen::rand_uniform;

    #[test]
    fn tile_roundtrip_exact_multiple() {
        let m = rand_uniform(8, 8, -1.0, 1.0, 1);
        let b = BlockedMatrix::from_dense(&m, 4).unwrap();
        assert_eq!(b.blocks().len(), 4);
        assert!(b.to_dense().unwrap().approx_eq(&m, 0.0));
    }

    #[test]
    fn tile_roundtrip_ragged_boundary() {
        let m = rand_uniform(10, 7, -1.0, 1.0, 2);
        let b = BlockedMatrix::from_dense(&m, 4).unwrap();
        assert_eq!(b.num_row_blocks(), 3);
        assert_eq!(b.num_col_blocks(), 2);
        assert!(b.to_dense().unwrap().approx_eq(&m, 0.0));
    }

    #[test]
    fn single_block_when_blen_exceeds_shape() {
        let m = rand_uniform(3, 3, 0.0, 1.0, 3);
        let b = BlockedMatrix::from_dense(&m, 100).unwrap();
        assert_eq!(b.blocks().len(), 1);
        assert!(b.to_dense().unwrap().approx_eq(&m, 0.0));
    }

    #[test]
    fn zero_block_length_rejected() {
        let m = Matrix::zeros(2, 2);
        assert!(BlockedMatrix::from_dense(&m, 0).is_err());
    }

    #[test]
    fn size_bytes_matches_dense() {
        let m = rand_uniform(9, 9, 0.0, 1.0, 4);
        let b = BlockedMatrix::from_dense(&m, 4).unwrap();
        assert_eq!(b.size_bytes(), m.size_bytes());
    }
}
