//! Seeded random matrix generation (DML's `rand()` builtin).

use crate::dense::Matrix;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random matrix in `[min, max)` with a fixed seed. `min == max`
/// yields a constant matrix (DML's `rand(min=v, max=v)`).
pub fn rand_uniform(rows: usize, cols: usize, min: f64, max: f64, seed: u64) -> Matrix {
    if min >= max {
        return Matrix::filled(rows, cols, min);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(min, max);
    let data: Vec<f64> = (0..rows * cols).map(|_| dist.sample(&mut rng)).collect();
    Matrix::from_vec(rows, cols, data).expect("length matches")
}

/// Standard-normal random matrix (Box–Muller over the seeded stream),
/// scaled by `std` and shifted by `mean`.
pub fn rand_normal(rows: usize, cols: usize, mean: f64, std: f64, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rows * cols;
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < n {
            data.push(mean + std * r * theta.sin());
        }
    }
    Matrix::from_vec(rows, cols, data).expect("length matches")
}

/// Random matrix with the given density: each cell is non-zero (uniform in
/// `[min, max)`) with probability `sparsity`, else exactly zero.
pub fn rand_sparse(
    rows: usize,
    cols: usize,
    min: f64,
    max: f64,
    sparsity: f64,
    seed: u64,
) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(min, max);
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| {
            if rng.gen::<f64>() < sparsity {
                dist.sample(&mut rng)
            } else {
                0.0
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data).expect("length matches")
}

/// A random permutation of `0..n` (Fisher–Yates over the seeded stream),
/// used for shuffling and sampling primitives.
pub fn rand_permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::agg::{aggregate, AggOp};

    #[test]
    fn uniform_respects_bounds_and_seed() {
        let a = rand_uniform(50, 50, -2.0, 3.0, 77);
        assert!(a.values().iter().all(|&v| (-2.0..3.0).contains(&v)));
        let b = rand_uniform(50, 50, -2.0, 3.0, 77);
        assert!(a.approx_eq(&b, 0.0));
        let c = rand_uniform(50, 50, -2.0, 3.0, 78);
        assert!(!a.approx_eq(&c, 0.0));
    }

    #[test]
    fn normal_has_expected_moments() {
        let m = rand_normal(200, 200, 1.0, 2.0, 9);
        let mean = aggregate(&m, AggOp::Mean).unwrap();
        let var = aggregate(&m, AggOp::Var).unwrap();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn sparse_density_close_to_target() {
        let m = rand_sparse(100, 100, 1.0, 2.0, 0.1, 4);
        let nnz = aggregate(&m, AggOp::Nnz).unwrap();
        let density = nnz / m.len() as f64;
        assert!((density - 0.1).abs() < 0.02, "density {density}");
    }

    #[test]
    fn permutation_is_a_bijection() {
        let p = rand_permutation(100, 5);
        let mut seen = [false; 100];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(rand_permutation(100, 5), p);
        assert_ne!(rand_permutation(100, 6), p);
    }
}
