//! Error types for matrix operations.

use std::fmt;

/// Result alias used across the matrix crate.
pub type Result<T> = std::result::Result<T, MatrixError>;

/// Errors produced by dense and blocked matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Operation name (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// An index or range is outside the matrix bounds.
    OutOfBounds {
        /// Operation name.
        op: &'static str,
        /// Offending index (row, col).
        index: (usize, usize),
        /// Matrix shape.
        shape: (usize, usize),
    },
    /// A solve failed because the system matrix is singular (or not SPD for
    /// the Cholesky path and not invertible for the LU fallback).
    SingularMatrix,
    /// Serialized bytes could not be decoded into a matrix.
    Corrupt(String),
    /// The operation requires a non-empty matrix.
    Empty(&'static str),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::OutOfBounds { op, index, shape } => write!(
                f,
                "index ({}, {}) out of bounds in {op} for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            MatrixError::SingularMatrix => write!(f, "matrix is singular"),
            MatrixError::Corrupt(msg) => write!(f, "corrupt matrix bytes: {msg}"),
            MatrixError::Empty(op) => write!(f, "{op} requires a non-empty matrix"),
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = MatrixError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert!(e.to_string().contains("matmul"));
        assert!(e.to_string().contains("2x3"));

        let e = MatrixError::OutOfBounds {
            op: "get",
            index: (9, 9),
            shape: (3, 3),
        };
        assert!(e.to_string().contains("out of bounds"));

        assert_eq!(
            MatrixError::SingularMatrix.to_string(),
            "matrix is singular"
        );
    }
}
