//! Dense matrix substrate for the MEMPHIS reproduction.
//!
//! This crate provides the in-memory linear-algebra kernels that every
//! backend (local CPU, the simulated Spark engine, and the simulated GPU
//! device) executes. It mirrors the operator set SystemDS exposes to the
//! MEMPHIS runtime: blocked matrix multiplication, transpose, elementwise
//! binary/unary operations, aggregations, linear-system solves, reorg
//! operations (slicing, rbind/cbind), neural-network kernels (conv2d,
//! max-pooling, softmax, dropout), and seeded random generation.
//!
//! Matrices are dense, row-major `f64` buffers. The distributed backend
//! tiles them into [`blocked::BlockedMatrix`] collections of fixed-size
//! [`Matrix`] blocks, matching Spark's keyed matrix-tile RDDs.

pub mod blocked;
pub mod dense;
pub mod error;
pub mod io;
pub mod ops;
pub mod rand_gen;

pub use blocked::{BlockId, BlockedMatrix};
pub use dense::Matrix;
pub use error::{MatrixError, Result};
