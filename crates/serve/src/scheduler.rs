//! The virtual-time serving scheduler.
//!
//! All scheduling decisions — admission, queueing, shedding, suspension,
//! retry, and every cache interaction — happen on the dispatcher thread
//! over a virtual tick clock; real worker threads execute only pure
//! payload computation between two sequential phases. Per dispatched
//! batch:
//!
//! 1. **Classify** (dispatcher, in dispatch order): decide the attempt's
//!    transient fault from a SplitMix64 hash of `(request id, attempt)`
//!    (mirroring the PR 2 [`FaultPlan`] task-fault semantics: failures
//!    strike at launch, before side effects); deduplicate same-item
//!    requests within the batch (followers ride the first request's
//!    outcome — serve-level coalescing); probe the shared lineage cache
//!    via [`LineageCache::probe_or_begin_as`], holding the
//!    [`ComputeGuard`] of every miss.
//! 2. **Execute** (parallel): compute owned payloads and run pipeline
//!    requests on a pool of `workers` scoped threads.
//! 3. **Commit** (dispatcher, in dispatch order): complete each guard —
//!    so every cache mutation (admissions, eq. (1)/quota evictions,
//!    spills) happens in a deterministic order.
//!
//! The consequence is the serving determinism the experiments gate on:
//! every counter in [`ServeCounters::deterministic_slice`] is identical
//! across repeated runs *and across worker-thread counts*, because the
//! worker pool never makes a decision — it only burns CPU.
//!
//! Memory pressure measures *unevictable demand* (executing reservations
//! plus queued estimates) against the cache's local budget — see
//! [`crate::pressure`]. A run drains gracefully: arrivals stop, the
//! queue empties, suspended requests are force-resumed once nothing else
//! can lower pressure, and every admitted request reaches exactly one
//! terminal [`Outcome`].

use crate::admission::{TenantCaps, TokenBucket};
use crate::pressure::{PressureLevel, PressureMonitor};
use crate::queue::RequestQueue;
use crate::request::{Outcome, Request, TenantId, Work};
use crate::rng::{decide, salt};
use crate::stats::ServeCounters;
use memphis_core::cache::entry::CachedObject;
use memphis_core::cache::{ComputeGuard, LineageCache, MemoryPressure, Probed};
use memphis_core::lineage::{LItem, LineageId, LineageItem};
use memphis_core::stats::ReuseStatsSnapshot;
use memphis_matrix::Matrix;
use memphis_obs::cat;
use memphis_sparksim::FaultPlan;
use memphis_workloads::pipelines;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Analytical compute cost attributed to a shared serving item (keeps
/// proven shared entries score-favoured under eq. (1)).
const ITEM_COST: f64 = 50.0;

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Virtual execution slots (logical concurrency; determines batch
    /// sizes and queueing delay, independent of real threads).
    pub slots: usize,
    /// Real worker threads for the parallel execute phase.
    pub workers: usize,
    /// Bound of the priority/deadline queue (new admissions only;
    /// retries of already-admitted requests are exempt).
    pub queue_capacity: usize,
    /// Token-bucket burst capacity.
    pub token_capacity: u64,
    /// Token-bucket refill per virtual tick.
    pub tokens_per_tick: u64,
    /// Shed threshold as a fraction of the cache's local budget.
    pub shed_frac: f64,
    /// Suspend threshold as a fraction of the cache's local budget.
    pub suspend_frac: f64,
    /// Requests with `mem_estimate` at or above this are
    /// memory-intensive (suspended while pressure is at suspend).
    pub intensive_bytes: usize,
    /// Hard in-flight memory cap for tenants without an override.
    pub default_tenant_cap: usize,
    /// Per-tenant hard-cap overrides.
    pub tenant_caps: HashMap<TenantId, usize>,
    /// Per-tenant soft cache quotas, applied to the cache at scheduler
    /// construction (see [`LineageCache::set_tenant_quota`]).
    pub tenant_quotas: HashMap<TenantId, usize>,
    /// Retry budget per request (1 = no retries).
    pub max_attempts: u32,
    /// Exponential-backoff base in ticks (attempt n waits
    /// `base << (n-1)`, capped).
    pub backoff_base: u64,
    /// Backoff cap in ticks.
    pub backoff_cap: u64,
    /// Transient-fault plan (PR 2 style); `seed` and
    /// `task_failure_rate` drive per-attempt request faults.
    pub faults: FaultPlan,
}

impl ServeConfig {
    /// Small deterministic configuration for tests.
    pub fn test() -> Self {
        Self {
            slots: 4,
            workers: 4,
            queue_capacity: 32,
            token_capacity: 8,
            tokens_per_tick: 2,
            shed_frac: 0.5,
            suspend_frac: 0.8,
            intensive_bytes: 8 << 10,
            default_tenant_cap: 64 << 10,
            tenant_caps: HashMap::new(),
            tenant_quotas: HashMap::new(),
            max_attempts: 4,
            backoff_base: 2,
            backoff_cap: 32,
            faults: FaultPlan::none(),
        }
    }
}

/// Lineage id of shared serving item `idx` (the cross-tenant reuse
/// unit).
pub fn shared_item(idx: usize) -> LItem {
    LineageItem::leaf(&format!("serve/item{idx}"))
}

/// Deterministic payload of shared item `idx` (16×16 matrix, 2 KiB).
pub fn shared_payload(idx: usize) -> Matrix {
    memphis_workloads::data::embeddings(16, 16, 0xBEEF + idx as u64)
}

/// Per-tenant terminal accounting in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantReport {
    /// Tenant id.
    pub tenant: TenantId,
    /// The tenant's hard in-flight cap.
    pub cap: usize,
    /// High-water mark of the tenant's executing bytes (must stay
    /// `<= cap`).
    pub high_water: usize,
    /// Completed requests.
    pub completed: u64,
    /// Shed requests.
    pub shed: u64,
    /// Requests that exhausted retries.
    pub failed: u64,
    /// Requests rejected at admission (tokens, cap, or queue bound).
    pub rejected: u64,
}

/// Outcome of one scheduler run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Serving counters.
    pub counters: ServeCounters,
    /// `(request id, terminal outcome)` in input order.
    pub outcomes: Vec<(u64, Outcome)>,
    /// Per-tenant rows, sorted by tenant id.
    pub tenants: Vec<TenantReport>,
    /// Pipeline `(kind, checksum)` pairs in completion order.
    pub checks: Vec<(String, f64)>,
    /// Cache counters at the end of the run.
    pub reuse: ReuseStatsSnapshot,
    /// Final virtual time.
    pub ticks: u64,
    /// Wall-clock of the run.
    pub elapsed: Duration,
}

impl ServeReport {
    /// The terminal outcome of request `id`.
    pub fn outcome_of(&self, id: u64) -> Option<Outcome> {
        self.outcomes
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, o)| *o)
    }

    /// Zero hard-cap overshoots: no tenant's executing bytes ever
    /// exceeded its cap.
    pub fn hard_caps_respected(&self) -> bool {
        self.tenants.iter().all(|t| t.high_water <= t.cap)
    }

    /// The deterministic serving invariants: every admitted request
    /// reached exactly one terminal state (nothing starved), no
    /// duplicate computes, and no hard-cap overshoot.
    pub fn invariants_hold(&self) -> bool {
        self.counters.terminally_complete()
            && self.counters.duplicates == 0
            && self.hard_caps_respected()
    }
}

/// Mutable per-request scheduling state.
struct ReqState {
    req: Request,
    attempts: u32,
    started: Option<u64>,
    fault_pending: bool,
    outcome: Option<Outcome>,
}

/// One unit of parallel-phase work.
enum Job {
    /// Compute the payload of a shared item this batch owns.
    Payload { item: usize },
    /// Run a session pipeline end-to-end.
    Pipe { kind: &'static str },
}

/// Result of one [`Job`].
enum JobOut {
    Matrix(Matrix),
    Check(Result<f64, String>),
}

/// The admission-controlled, deadline-aware request scheduler over a
/// shared lineage cache.
pub struct Scheduler {
    cache: Arc<LineageCache>,
    cfg: ServeConfig,
}

impl Scheduler {
    /// Creates a scheduler over `cache`, applying the configured tenant
    /// quotas to it.
    pub fn new(cache: Arc<LineageCache>, cfg: ServeConfig) -> Self {
        for (t, q) in &cfg.tenant_quotas {
            cache.set_tenant_quota(*t, *q);
        }
        Self { cache, cfg }
    }

    /// The shared cache.
    pub fn cache(&self) -> &Arc<LineageCache> {
        &self.cache
    }

    /// The configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Runs the full request trace to drain and reports. Request ids
    /// must be unique.
    pub fn run(&self, requests: Vec<Request>) -> ServeReport {
        let _run_span = memphis_obs::span(cat::SERVE, "serve_run");
        let t0 = Instant::now();
        let reuse_before = self.cache.stats();

        let mut table: Vec<ReqState> = requests
            .into_iter()
            .map(|req| ReqState {
                req,
                attempts: 0,
                started: None,
                fault_pending: false,
                outcome: None,
            })
            .collect();
        let mut by_id: HashMap<u64, usize> = HashMap::new();
        for (i, st) in table.iter().enumerate() {
            assert!(
                by_id.insert(st.req.id, i).is_none(),
                "duplicate request id {}",
                st.req.id
            );
        }
        let mut order: Vec<usize> = (0..table.len()).collect();
        order.sort_by_key(|&i| (table[i].req.arrival, table[i].req.id));

        let monitor = PressureMonitor::new(
            self.cache.config().local_budget,
            self.cfg.shed_frac,
            self.cfg.suspend_frac,
            self.cfg.intensive_bytes,
        );
        let mut bucket = TokenBucket::new(self.cfg.token_capacity, self.cfg.tokens_per_tick);
        let mut caps = TenantCaps::new(self.cfg.default_tenant_cap, self.cfg.tenant_caps.clone());
        let mut queue = RequestQueue::new(self.cfg.queue_capacity);
        let mut suspended: Vec<u64> = Vec::new();
        // Min-heaps over (tick, request id).
        let mut completions: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut retries: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut counters = ServeCounters::default();
        // Keyed on the interned lineage identity: membership checks are
        // integer compares, and the ledger speaks the same key type as the
        // cache it audits.
        let mut computed_before: HashSet<LineageId> = HashSet::new();
        let mut in_progress: HashSet<LineageId> = HashSet::new();
        let mut checks: Vec<(String, f64)> = Vec::new();
        let mut slots_free = self.cfg.slots.max(1);
        let mut inflight_bytes = 0usize;
        let mut ai = 0usize;
        let mut now = 0u64;

        loop {
            // ---- completions due ----
            while let Some(&Reverse((t, id))) = completions.peek() {
                if t > now {
                    break;
                }
                completions.pop();
                let i = by_id[&id];
                let st = &mut table[i];
                let (tenant, mem) = (st.req.tenant, st.req.mem_estimate);
                slots_free += 1;
                inflight_bytes = inflight_bytes.saturating_sub(mem);
                caps.finish(tenant, mem);
                if st.fault_pending {
                    st.fault_pending = false;
                    if st.attempts >= self.cfg.max_attempts {
                        st.outcome = Some(Outcome::Failed {
                            attempts: st.attempts,
                        });
                        counters.failed += 1;
                        caps.uncommit(tenant, mem);
                        memphis_obs::instant_val(
                            cat::SERVE,
                            "request_failed",
                            "attempts",
                            st.attempts as u64,
                        );
                    } else {
                        counters.retries += 1;
                        let exp = st.attempts.saturating_sub(1).min(16);
                        let backoff = self
                            .cfg
                            .backoff_base
                            .saturating_mul(1u64 << exp)
                            .clamp(1, self.cfg.backoff_cap.max(1));
                        retries.push(Reverse((now + backoff, id)));
                        memphis_obs::instant_val(cat::SERVE, "retry", "backoff_ticks", backoff);
                    }
                } else {
                    let started = st.started.unwrap_or(now);
                    let late = started > st.req.deadline;
                    st.outcome = Some(Outcome::Completed {
                        started,
                        finished: now,
                        attempts: st.attempts,
                        late,
                    });
                    counters.completed += 1;
                    if late {
                        counters.completed_late += 1;
                    }
                    caps.uncommit(tenant, mem);
                }
            }

            // ---- retries ready (already admitted: bypass admission and
            // the queue bound, still committed against their cap) ----
            while let Some(&Reverse((t, id))) = retries.peek() {
                if t > now {
                    break;
                }
                retries.pop();
                queue.push(&table[by_id[&id]].req);
            }

            // ---- arrivals ----
            {
                let _adm_span = memphis_obs::span(cat::SERVE, "admission");
                bucket.refill(now);
                while ai < order.len() && table[order[ai]].req.arrival <= now {
                    let i = order[ai];
                    ai += 1;
                    counters.arrivals += 1;
                    let (tenant, mem) = (table[i].req.tenant, table[i].req.mem_estimate);
                    if !bucket.try_take() {
                        table[i].outcome = Some(Outcome::RejectedTokens);
                        counters.rejected_tokens += 1;
                        continue;
                    }
                    if !caps.admits(tenant, mem) {
                        table[i].outcome = Some(Outcome::RejectedCap);
                        counters.rejected_cap += 1;
                        memphis_obs::instant_val(cat::SERVE, "reject_cap", "bytes", mem as u64);
                        continue;
                    }
                    let committed = inflight_bytes + queue.queued_bytes();
                    if monitor.level(committed) >= PressureLevel::Suspend
                        && monitor.is_intensive(mem)
                    {
                        caps.commit(tenant, mem);
                        counters.admitted += 1;
                        counters.suspended += 1;
                        suspended.push(table[i].req.id);
                        memphis_obs::instant_val(cat::SERVE, "suspend", "bytes", mem as u64);
                        continue;
                    }
                    if queue.is_full() {
                        table[i].outcome = Some(Outcome::RejectedQueueFull);
                        counters.rejected_queue_full += 1;
                        continue;
                    }
                    caps.commit(tenant, mem);
                    counters.admitted += 1;
                    queue.push(&table[i].req);
                }
            }

            // ---- resume suspended once pressure drops below suspend ----
            if !suspended.is_empty() {
                let committed = inflight_bytes + queue.queued_bytes();
                if monitor.level(committed) < PressureLevel::Suspend {
                    for id in suspended.drain(..) {
                        counters.resumed += 1;
                        queue.push(&table[by_id[&id]].req);
                    }
                }
            }

            // ---- shed queued past-deadline requests under pressure ----
            {
                let mut committed = inflight_bytes + queue.queued_bytes();
                // Mirror the monitor's level into the cache once per
                // tick so the DelayedHits admission gate (MURS-style
                // TTNA shedding) sees the same pressure the dispatcher
                // acts on. A no-op under the Paper policy.
                self.cache
                    .set_memory_pressure(match monitor.level(committed) {
                        PressureLevel::Normal => MemoryPressure::Normal,
                        PressureLevel::Shed => MemoryPressure::Shed,
                        PressureLevel::Suspend => MemoryPressure::Suspend,
                    });
                if monitor.level(committed) >= PressureLevel::Shed && !queue.is_empty() {
                    let expired = queue.shed_expired(now, |id| table[by_id[&id]].req.mem_estimate);
                    for id in expired {
                        let i = by_id[&id];
                        if monitor.level(committed) < PressureLevel::Shed {
                            // Pressure relieved: the remaining expired
                            // requests keep their chance (they complete
                            // late or shed in a later pass).
                            queue.push(&table[i].req);
                            continue;
                        }
                        let (tenant, mem) = (table[i].req.tenant, table[i].req.mem_estimate);
                        table[i].outcome = Some(Outcome::Shed { at: now });
                        counters.shed += 1;
                        committed = committed.saturating_sub(mem);
                        caps.uncommit(tenant, mem);
                        memphis_obs::instant_val(cat::SERVE, "shed", "bytes", mem as u64);
                    }
                }
            }

            // ---- dispatch a batch into free slots ----
            if slots_free > 0 && !queue.is_empty() {
                let mut batch: Vec<u64> = Vec::new();
                while slots_free > 0 {
                    let Some(id) = queue.pop(|id| table[by_id[&id]].req.mem_estimate) else {
                        break;
                    };
                    let i = by_id[&id];
                    let st = &mut table[i];
                    slots_free -= 1;
                    st.attempts += 1;
                    st.started = Some(now);
                    inflight_bytes += st.req.mem_estimate;
                    caps.start(st.req.tenant, st.req.mem_estimate);
                    counters.dispatched += 1;
                    memphis_obs::instant_val(
                        cat::SERVE,
                        "queue_wait",
                        "ticks",
                        now.saturating_sub(st.req.arrival),
                    );
                    batch.push(id);
                }
                if !batch.is_empty() {
                    self.execute_batch(
                        &mut table,
                        &by_id,
                        &batch,
                        &mut counters,
                        &mut computed_before,
                        &mut in_progress,
                        &mut checks,
                    );
                    for &id in &batch {
                        let st = &table[by_id[&id]];
                        completions.push(Reverse((now + st.req.service_ticks.max(1), id)));
                    }
                }
            }

            // ---- advance virtual time ----
            let t_arr = order.get(ai).map(|&i| table[i].req.arrival);
            let t_cmp = completions.peek().map(|&Reverse((t, _))| t);
            let t_rty = retries.peek().map(|&Reverse((t, _))| t);
            match [t_arr, t_cmp, t_rty].into_iter().flatten().min() {
                Some(t) => now = t,
                None => {
                    if !suspended.is_empty() {
                        // Graceful drain: nothing in flight or queued can
                        // lower pressure further — force-resume so every
                        // admitted request reaches a terminal state.
                        for id in suspended.drain(..) {
                            counters.resumed += 1;
                            queue.push(&table[by_id[&id]].req);
                        }
                        continue;
                    }
                    if queue.is_empty() {
                        break;
                    }
                    // A non-empty queue with free slots dispatches above;
                    // without free slots, completions exist. Unreachable,
                    // but exit rather than spin.
                    debug_assert_eq!(slots_free, 0, "stalled queue with free slots");
                    break;
                }
            }
        }

        // ---- report ----
        let reuse = self.cache.stats();
        counters.quota_evictions = reuse
            .quota_evictions
            .saturating_sub(reuse_before.quota_evictions);
        let outcomes: Vec<(u64, Outcome)> = table
            .iter()
            .map(|st| {
                (
                    st.req.id,
                    st.outcome.expect("every request reaches a terminal state"),
                )
            })
            .collect();
        let mut rows: HashMap<TenantId, TenantReport> = HashMap::new();
        for st in &table {
            let t = st.req.tenant;
            let row = rows.entry(t).or_insert(TenantReport {
                tenant: t,
                cap: caps.cap(t),
                high_water: caps.high_water(t),
                completed: 0,
                shed: 0,
                failed: 0,
                rejected: 0,
            });
            match st.outcome.expect("terminal") {
                Outcome::Completed { .. } => row.completed += 1,
                Outcome::Shed { .. } => row.shed += 1,
                Outcome::Failed { .. } => row.failed += 1,
                Outcome::RejectedTokens | Outcome::RejectedCap | Outcome::RejectedQueueFull => {
                    row.rejected += 1
                }
            }
        }
        let mut tenants: Vec<TenantReport> = rows.into_values().collect();
        tenants.sort_by_key(|r| r.tenant);

        ServeReport {
            counters,
            outcomes,
            tenants,
            checks,
            reuse,
            ticks: now,
            elapsed: t0.elapsed(),
        }
    }

    /// The three-phase batch execution protocol (see the module doc).
    #[allow(clippy::too_many_arguments)]
    fn execute_batch(
        &self,
        table: &mut [ReqState],
        by_id: &HashMap<u64, usize>,
        batch: &[u64],
        counters: &mut ServeCounters,
        computed_before: &mut HashSet<LineageId>,
        in_progress: &mut HashSet<LineageId>,
        checks: &mut Vec<(String, f64)>,
    ) {
        let _exec_span =
            memphis_obs::span_with(cat::SERVE, "execute", || format!("batch={}", batch.len()));

        // Phase 1: classify sequentially on the dispatcher.
        let mut jobs: Vec<Job> = Vec::new();
        let mut guards: Vec<(LineageId, ComputeGuard, usize)> = Vec::new(); // (key, guard, job)
        let mut pipes: Vec<(usize, usize, &'static str)> = Vec::new(); // (table idx, job, kind)
        let mut batch_items: HashSet<usize> = HashSet::new();
        for &id in batch {
            let i = by_id[&id];
            let st = &mut table[i];
            let faulted = decide(
                self.cfg.faults.seed,
                salt::FAULT,
                [st.req.id, st.attempts as u64, 0, 0],
            ) < self.cfg.faults.task_failure_rate;
            if faulted {
                // Strikes at launch, before side effects (FaultPlan task
                // semantics): the slot is burned, the cache untouched.
                st.fault_pending = true;
                continue;
            }
            match st.req.work {
                Work::SharedItem(idx) => {
                    if !batch_items.insert(idx) {
                        // A same-batch request already owns this item's
                        // outcome: ride it (serve-level coalescing).
                        counters.coalesced += 1;
                        continue;
                    }
                    match self
                        .cache
                        .probe_or_begin_as(&shared_item(idx), Some(st.req.tenant))
                    {
                        Probed::Hit(_) | Probed::Coalesced(_) => counters.hits += 1,
                        Probed::Compute(g) => {
                            let key = g.key();
                            counters.computes += 1;
                            if in_progress.contains(&key) {
                                counters.duplicates += 1;
                            }
                            if computed_before.contains(&key) {
                                counters.recomputes += 1;
                            }
                            in_progress.insert(key);
                            jobs.push(Job::Payload { item: idx });
                            guards.push((key, g, jobs.len() - 1));
                        }
                    }
                }
                Work::Pipeline(kind) => {
                    jobs.push(Job::Pipe { kind });
                    pipes.push((i, jobs.len() - 1, kind));
                }
            }
        }

        // Phase 2: execute in parallel (pure computation only).
        let mut results: Vec<Option<JobOut>> = if jobs.is_empty() {
            Vec::new()
        } else {
            let slots: Vec<Mutex<Option<JobOut>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            let nworkers = self.cfg.workers.clamp(1, jobs.len());
            std::thread::scope(|scope| {
                for _ in 0..nworkers {
                    let next = &next;
                    let slots = &slots;
                    let jobs = &jobs;
                    let cache = &self.cache;
                    scope.spawn(move || loop {
                        let j = next.fetch_add(1, Ordering::Relaxed);
                        if j >= jobs.len() {
                            break;
                        }
                        let out = match &jobs[j] {
                            Job::Payload { item } => JobOut::Matrix(shared_payload(*item)),
                            Job::Pipe { kind } => {
                                let mut ctx = pipelines::session_context(cache);
                                JobOut::Check(
                                    pipelines::run_session_kind(&mut ctx, kind)
                                        .map_err(|e| format!("{e:?}")),
                                )
                            }
                        };
                        *slots[j].lock() = Some(out);
                    });
                }
            });
            slots.into_iter().map(|m| m.into_inner()).collect()
        };

        // Phase 3: commit sequentially on the dispatcher, in dispatch
        // order — cache admissions and evictions are fully ordered.
        for (key, guard, j) in guards {
            let Some(JobOut::Matrix(m)) = results[j].take() else {
                unreachable!("payload job produced a matrix");
            };
            let m = Arc::new(m);
            let size = m.size_bytes();
            self.cache
                .complete(guard, CachedObject::Matrix(m), ITEM_COST, size, 1);
            in_progress.remove(&key);
            computed_before.insert(key);
        }
        for (i, j, kind) in pipes {
            match results[j].take() {
                Some(JobOut::Check(Ok(v))) => checks.push((kind.to_string(), v)),
                // An engine error is treated like a task fault: the
                // attempt burns its slot and retries with backoff.
                Some(JobOut::Check(Err(_))) | Some(JobOut::Matrix(_)) | None => {
                    table[i].fault_pending = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{open_loop, StreamSpec};
    use crate::request::Priority;
    use memphis_core::cache::config::CacheConfig;

    fn cache_with_budget(budget: usize) -> Arc<LineageCache> {
        let mut cfg = CacheConfig::test();
        cfg.local_budget = budget;
        cfg.spill_to_disk = false;
        Arc::new(LineageCache::new(cfg))
    }

    fn simple(id: u64, tenant: TenantId, mem: usize, arrival: u64, deadline: u64) -> Request {
        Request {
            id,
            tenant,
            priority: Priority::Normal,
            arrival,
            deadline,
            mem_estimate: mem,
            service_ticks: 2,
            work: Work::SharedItem(id as usize % 4),
        }
    }

    #[test]
    fn fault_free_trace_completes_everything() {
        let sched = Scheduler::new(cache_with_budget(1 << 20), ServeConfig::test());
        let trace: Vec<Request> = (0..8).map(|i| simple(i, 0, 2048, i, i + 100)).collect();
        let report = sched.run(trace);
        assert_eq!(report.counters.arrivals, 8);
        assert_eq!(report.counters.completed, 8);
        assert_eq!(report.counters.failed, 0);
        assert_eq!(report.counters.duplicates, 0);
        assert!(report.invariants_hold());
        // 4 distinct items across 8 requests: at most 4 owner computes,
        // the rest hits or same-batch coalesced followers.
        assert_eq!(
            report.counters.hits + report.counters.computes + report.counters.coalesced,
            8
        );
        assert_eq!(report.counters.computes, 4);
    }

    #[test]
    fn counters_identical_across_runs_and_worker_counts() {
        for seed in [42u64, 1337] {
            let spec = StreamSpec::test();
            let mut reports = Vec::new();
            for workers in [1usize, 4, 4] {
                let mut cfg = ServeConfig::test();
                cfg.workers = workers;
                cfg.faults = FaultPlan::seeded(seed).with_task_failure_rate(0.2);
                let sched = Scheduler::new(cache_with_budget(1 << 20), cfg);
                reports.push(sched.run(open_loop(seed, &spec)));
            }
            // 1 MB budget, ~2 KiB entries: no evictions, so the *full*
            // counter structs must match, not just the deterministic
            // slice.
            assert_eq!(reports[0].counters, reports[1].counters, "seed {seed}");
            assert_eq!(reports[1].counters, reports[2].counters, "seed {seed}");
            assert_eq!(
                reports[0].reuse.local_spills + reports[0].reuse.local_drops,
                0
            );
            assert!(reports[0].invariants_hold());
            assert_eq!(reports[0].outcomes, reports[1].outcomes);
        }
    }

    #[test]
    fn transient_faults_retry_with_backoff_and_converge() {
        let mut cfg = ServeConfig::test();
        cfg.faults = FaultPlan::seeded(7).with_task_failure_rate(0.4);
        let sched = Scheduler::new(cache_with_budget(1 << 20), cfg);
        let trace: Vec<Request> = (0..16).map(|i| simple(i, 0, 2048, i, i + 200)).collect();
        let report = sched.run(trace);
        assert!(report.counters.retries > 0, "40% faults must retry");
        assert!(report.counters.terminally_complete());
        assert!(report.invariants_hold());
        // Every dispatched attempt ends as exactly one of: success,
        // a retry re-enqueue, or the final failing attempt.
        assert_eq!(
            report.counters.dispatched,
            report.counters.completed + report.counters.retries + report.counters.failed
        );
    }

    #[test]
    fn token_bucket_rejects_bursts() {
        let mut cfg = ServeConfig::test();
        cfg.token_capacity = 2;
        cfg.tokens_per_tick = 1;
        let sched = Scheduler::new(cache_with_budget(1 << 20), cfg);
        let trace: Vec<Request> = (0..5).map(|i| simple(i, 0, 1024, 0, 100)).collect();
        let report = sched.run(trace);
        assert_eq!(report.counters.rejected_tokens, 3);
        assert_eq!(report.counters.admitted, 2);
        assert!(report.invariants_hold());
    }

    #[test]
    fn tenant_hard_cap_rejects_and_never_overshoots() {
        let mut cfg = ServeConfig::test();
        cfg.default_tenant_cap = 8 << 10;
        let sched = Scheduler::new(cache_with_budget(1 << 20), cfg);
        let mut trace: Vec<Request> = (0..4).map(|i| simple(i, 1, 4 << 10, 0, 100)).collect();
        trace.push(simple(4, 2, 4 << 10, 0, 100));
        let report = sched.run(trace);
        assert_eq!(report.counters.rejected_cap, 2, "tenant 1 fits only two");
        assert_eq!(report.counters.completed, 3);
        assert!(report.hard_caps_respected());
        let t1 = report.tenants.iter().find(|t| t.tenant == 1).unwrap();
        assert!(t1.high_water <= t1.cap);
        assert_eq!(t1.rejected, 2);
    }

    #[test]
    fn pressure_sheds_expired_low_priority_work() {
        let mut cfg = ServeConfig::test();
        cfg.slots = 1;
        cfg.intensive_bytes = 8 << 10; // 4 KiB requests are not intensive
        let sched = Scheduler::new(cache_with_budget(32 << 10), cfg);
        // Eight 4 KiB requests at tick 0 with immediate deadlines: the
        // queue holds 28 KiB (over the 16 KiB shed threshold), so once
        // the clock moves everything still queued is past deadline.
        let trace: Vec<Request> = (0..8)
            .map(|i| {
                let mut r = simple(i, (i % 2) as TenantId, 4 << 10, 0, 0);
                r.priority = if i < 4 {
                    Priority::Batch
                } else {
                    Priority::Interactive
                };
                r
            })
            .collect();
        let report = sched.run(trace);
        assert!(report.counters.shed > 0, "expired queued work must shed");
        assert!(report.counters.terminally_complete());
        // Interactive pops first, so every shed request is Batch.
        for (id, o) in &report.outcomes {
            if matches!(o, Outcome::Shed { .. }) {
                assert!(*id < 4, "only batch requests shed, got {id}");
            }
        }
    }

    #[test]
    fn suspend_parks_intensive_requests_then_resumes() {
        let mut cfg = ServeConfig::test();
        cfg.slots = 1;
        cfg.intensive_bytes = 8 << 10;
        let sched = Scheduler::new(cache_with_budget(32 << 10), cfg);
        // 8 KiB intensive requests; committed crosses the 25.6 KiB
        // suspend threshold after three, so later arrivals park.
        let trace: Vec<Request> = (0..6).map(|i| simple(i, 0, 8 << 10, 0, 500)).collect();
        let report = sched.run(trace);
        assert!(report.counters.suspended > 0, "suspend gate must trip");
        assert_eq!(report.counters.resumed, report.counters.suspended);
        assert_eq!(report.counters.completed, 6, "drain completes everyone");
        assert!(report.invariants_hold());
    }

    #[test]
    fn pipeline_requests_run_through_the_session_helper() {
        let cfg = ServeConfig::test();
        let sched = Scheduler::new(cache_with_budget(4 << 20), cfg);
        let trace = vec![
            Request {
                id: 0,
                tenant: 0,
                priority: Priority::Interactive,
                arrival: 0,
                deadline: 100,
                mem_estimate: 4 << 10,
                service_ticks: 2,
                work: Work::Pipeline("hcv"),
            },
            simple(1, 1, 2048, 0, 100),
        ];
        let report = sched.run(trace);
        assert_eq!(report.counters.completed, 2);
        assert_eq!(report.checks.len(), 1);
        assert_eq!(report.checks[0].0, "hcv");
        assert!(report.checks[0].1.is_finite());
    }
}
