//! Serving requests: the unit of admission, scheduling, and execution.

/// Tenant identifier (matches the `tenant` tag on lineage-cache entries).
pub type TenantId = u16;

/// Request priority class. Ordering is scheduling order: `Interactive`
/// beats `Normal` beats `Batch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Throughput traffic: first shed under pressure.
    Batch,
    /// Default traffic.
    Normal,
    /// Latency-sensitive traffic: scheduled first, shed last.
    Interactive,
}

impl Priority {
    /// Numeric rank (higher schedules first).
    pub fn rank(self) -> u8 {
        match self {
            Priority::Batch => 0,
            Priority::Normal => 1,
            Priority::Interactive => 2,
        }
    }
}

/// What a request asks the serving layer to produce.
#[derive(Debug, Clone)]
pub enum Work {
    /// Compute (or reuse) shared lineage item `serve/item{idx}` — the
    /// cross-tenant reuse unit; concurrent requests for the same index
    /// coalesce on one computation.
    SharedItem(usize),
    /// Run one of the paper pipelines (a
    /// [`memphis_workloads::pipelines::SESSION_MIX`] kind) end-to-end
    /// over the shared cache.
    Pipeline(&'static str),
}

/// One serving request, tagged with tenant, priority, and deadline.
#[derive(Debug, Clone)]
pub struct Request {
    /// Unique, dense id (also the scheduling tiebreaker).
    pub id: u64,
    /// Issuing tenant.
    pub tenant: TenantId,
    /// Priority class.
    pub priority: Priority,
    /// Arrival tick (virtual time).
    pub arrival: u64,
    /// Start-by deadline tick: a queued request past this tick is shed
    /// under memory pressure, and a completion that started later is
    /// counted late.
    pub deadline: u64,
    /// Estimated peak memory of executing this request, in bytes. Charged
    /// against the tenant's hard in-flight cap at admission and reserved
    /// while queued/executing.
    pub mem_estimate: usize,
    /// Service time in virtual ticks (occupies an execution slot).
    pub service_ticks: u64,
    /// The work to perform.
    pub work: Work,
}

/// Terminal outcome of one request, indexed by request id in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Completed successfully.
    Completed {
        /// Dispatch tick of the successful attempt.
        started: u64,
        /// Completion tick.
        finished: u64,
        /// Attempts used (1 = no retries).
        attempts: u32,
        /// True when the successful attempt started past the deadline.
        late: bool,
    },
    /// Shed from the queue under memory pressure (past deadline).
    Shed {
        /// Tick of the shed decision.
        at: u64,
    },
    /// Rejected at admission by the token bucket.
    RejectedTokens,
    /// Rejected at admission by the tenant's hard in-flight memory cap.
    RejectedCap,
    /// Rejected at admission because the bounded queue was full.
    RejectedQueueFull,
    /// Exhausted its retry budget on transient faults.
    Failed {
        /// Attempts used.
        attempts: u32,
    },
}

impl Outcome {
    /// True for outcomes that went through the queue (admitted).
    pub fn was_admitted(&self) -> bool {
        !matches!(
            self,
            Outcome::RejectedTokens | Outcome::RejectedCap | Outcome::RejectedQueueFull
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_interactive_first() {
        assert!(Priority::Interactive > Priority::Normal);
        assert!(Priority::Normal > Priority::Batch);
        assert_eq!(Priority::Interactive.rank(), 2);
    }

    #[test]
    fn admission_classification() {
        assert!(Outcome::Shed { at: 3 }.was_admitted());
        assert!(!Outcome::RejectedCap.was_admitted());
    }
}
