//! Cluster-aware request dispatch: routes tenant requests to the nodes
//! of a [`ClusterCache`] and serves shared-item work through the
//! cluster probe path (remote reuse, replication, staged handoff)
//! instead of one shared cache.
//!
//! The dispatcher is a single-threaded virtual-time loop — requests
//! are processed in `(arrival, id)` order, rebalance epochs fire on
//! arrival-clock boundaries, and every routing decision is a SplitMix64
//! hash — so a run's digest and full cluster counter snapshot are a
//! pure function of `(seed, config, trace)`. Pipeline requests run
//! their session over the origin node's cache (session-local reuse);
//! shared items go through [`ClusterCache::probe_or_begin_from`] so
//! cross-tenant reuse works across node boundaries.

use crate::request::{Request, TenantId, Work};
use crate::rng;
use crate::scheduler::{shared_item, shared_payload};
use memphis_cluster::{ClusterCache, ClusterConfig, ClusterProbed, ClusterStatsSnapshot, NodeId};
use memphis_core::CachedObject;
use memphis_workloads::pipelines;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Tenant-routing salt (distinct from the generator salts).
const SALT_ROUTE: u64 = 0xc105;

/// Cost charged for a shared serve item (mirrors the scheduler).
const ITEM_COST: f64 = 50.0;

/// Configuration of the cluster serving layer.
#[derive(Debug, Clone)]
pub struct ClusterServeConfig {
    /// Initial node count (ids `0..nodes`).
    pub nodes: usize,
    /// Seed for placement and routing.
    pub seed: u64,
    /// Replica copies per hot item.
    pub replicas: usize,
    /// Top-k replicated items.
    pub hot_k: usize,
    /// Heat threshold for replication.
    pub hot_min_probes: u64,
    /// Rebalance budget per epoch.
    pub rebalance_moves: usize,
    /// Per-node cache budget in bytes.
    pub node_budget: usize,
    /// Fire a rebalance epoch every this many arrival ticks (0 = never).
    pub epoch_ticks: u64,
}

impl ClusterServeConfig {
    /// Small deterministic test configuration.
    pub fn test() -> Self {
        Self {
            nodes: 4,
            seed: 42,
            replicas: 1,
            hot_k: 4,
            hot_min_probes: 3,
            rebalance_moves: 8,
            node_budget: 1 << 20,
            epoch_ticks: 32,
        }
    }
}

/// Outcome of one dispatched trace.
#[derive(Debug, Clone)]
pub struct ClusterServeReport {
    /// Requests completed (the dispatcher has no admission control —
    /// everything completes).
    pub completed: u64,
    /// Shared-item requests served.
    pub shared: u64,
    /// Pipeline requests served.
    pub pipelines: u64,
    /// Order-sensitive fold of served fingerprints and pipeline
    /// checksums.
    pub digest: u64,
    /// Pipeline checksums in completion order.
    pub checks: Vec<(String, f64)>,
    /// Requests routed per node, sorted by node id.
    pub node_requests: Vec<(NodeId, u64)>,
    /// Rebalance epochs fired.
    pub epochs: u64,
    /// Final cluster counter snapshot.
    pub cluster: ClusterStatsSnapshot,
}

/// Routes tenant requests onto cluster nodes and serves them.
pub struct ClusterDispatcher {
    cfg: ClusterServeConfig,
    cluster: Arc<ClusterCache>,
}

impl ClusterDispatcher {
    /// Builds the dispatcher and its cluster.
    pub fn new(cfg: ClusterServeConfig) -> Self {
        let ccfg = ClusterConfig {
            seed: cfg.seed,
            node_budget: cfg.node_budget,
            shards: 8,
            replicas: cfg.replicas,
            hot_k: cfg.hot_k,
            hot_min_probes: cfg.hot_min_probes,
            rebalance_moves: cfg.rebalance_moves,
            net: memphis_cluster::NetworkModel::test(),
        };
        let ids: Vec<NodeId> = (0..cfg.nodes as NodeId).collect();
        Self {
            cluster: Arc::new(ClusterCache::new(ccfg, &ids)),
            cfg,
        }
    }

    /// The underlying cluster (for joins/leaves between traces and for
    /// metrics export).
    pub fn cluster(&self) -> &Arc<ClusterCache> {
        &self.cluster
    }

    /// The node a tenant's requests land on: HRW over the mixed tenant
    /// id, so tenants re-route minimally when membership changes.
    pub fn route(&self, tenant: TenantId) -> NodeId {
        self.cluster.route_hash(rng::hash(
            self.cfg.seed,
            SALT_ROUTE,
            [tenant as u64, 0, 0, 0],
        ))
    }

    /// Dispatches a trace in `(arrival, id)` order.
    pub fn run(&self, requests: &[Request]) -> ClusterServeReport {
        let _span = memphis_obs::span_with(memphis_obs::cat::CLUSTER, "cluster_dispatch", || {
            format!("nodes={} requests={}", self.cfg.nodes, requests.len())
        });
        let mut order: Vec<&Request> = requests.iter().collect();
        order.sort_by_key(|r| (r.arrival, r.id));

        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |v: u64| {
            digest ^= v;
            digest = digest.wrapping_mul(0x1000_0000_01b3);
        };
        let mut checks = Vec::new();
        let mut node_requests: BTreeMap<NodeId, u64> = BTreeMap::new();
        let mut shared = 0u64;
        let mut pipes = 0u64;
        let mut epochs = 0u64;
        let mut next_epoch = if self.cfg.epoch_ticks > 0 {
            self.cfg.epoch_ticks
        } else {
            u64::MAX
        };

        for req in order {
            while req.arrival >= next_epoch {
                self.cluster.rebalance_epoch();
                epochs += 1;
                next_epoch = next_epoch.saturating_add(self.cfg.epoch_ticks);
            }
            let origin = self.route(req.tenant);
            *node_requests.entry(origin).or_insert(0) += 1;
            match req.work {
                Work::SharedItem(idx) => {
                    shared += 1;
                    let item = shared_item(idx);
                    match self.cluster.probe_or_begin_from(origin, &item) {
                        ClusterProbed::Hit { hit, .. } => match &hit.object {
                            CachedObject::Matrix(m) => fold(m.fingerprint()),
                            CachedObject::Scalar(s) => fold(s.to_bits()),
                            _ => fold(0),
                        },
                        ClusterProbed::Compute(g) => {
                            let m = Arc::new(shared_payload(idx));
                            fold(m.fingerprint());
                            let size = m.size_bytes();
                            self.cluster
                                .complete_from(g, CachedObject::Matrix(m), ITEM_COST, size);
                        }
                    }
                }
                Work::Pipeline(kind) => {
                    pipes += 1;
                    let cache = self
                        .cluster
                        .node_cache(origin)
                        .expect("routed to a live member");
                    let mut ctx = pipelines::session_context(&cache);
                    let v =
                        pipelines::run_session_kind(&mut ctx, kind).expect("session pipeline runs");
                    fold(v.to_bits());
                    checks.push((kind.to_string(), v));
                }
            }
        }

        // Drain any queued moves so the report is settled.
        let mut guard = 0;
        while self.cluster.pending_moves() > 0 {
            self.cluster.rebalance_epoch();
            epochs += 1;
            guard += 1;
            assert!(guard < 1024, "rebalance queue never drained");
        }

        ClusterServeReport {
            completed: requests.len() as u64,
            shared,
            pipelines: pipes,
            digest,
            checks,
            node_requests: node_requests.into_iter().collect(),
            epochs,
            cluster: self.cluster.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{open_loop, StreamSpec};

    fn spec() -> StreamSpec {
        let mut s = StreamSpec::test();
        s.requests = 96;
        s.pipeline_every = 24;
        s
    }

    #[test]
    fn dispatch_is_deterministic() {
        let trace = open_loop(42, &spec());
        let a = ClusterDispatcher::new(ClusterServeConfig::test()).run(&trace);
        let b = ClusterDispatcher::new(ClusterServeConfig::test()).run(&trace);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.cluster, b.cluster);
        assert_eq!(a.node_requests, b.node_requests);
        assert_eq!(a.completed, trace.len() as u64);
    }

    #[test]
    fn digest_is_node_count_invariant() {
        let trace = open_loop(1337, &spec());
        let mut one = ClusterServeConfig::test();
        one.nodes = 1;
        let a = ClusterDispatcher::new(one).run(&trace);
        let b = ClusterDispatcher::new(ClusterServeConfig::test()).run(&trace);
        assert_eq!(a.digest, b.digest, "results must not depend on node count");
        assert!(b.cluster.remote_hits > 0, "4 nodes must serve remotely");
        assert_eq!(a.cluster.remote_hits, 0, "1 node has no remote peers");
    }

    #[test]
    fn tenants_route_stably_and_spread() {
        let d = ClusterDispatcher::new(ClusterServeConfig::test());
        let nodes: Vec<NodeId> = (0..16).map(|t| d.route(t)).collect();
        assert_eq!(nodes, (0..16).map(|t| d.route(t)).collect::<Vec<_>>());
        let distinct: std::collections::HashSet<_> = nodes.iter().collect();
        assert!(distinct.len() > 1, "16 tenants should span several nodes");
    }

    #[test]
    fn membership_change_between_traces_keeps_results() {
        let trace = open_loop(7, &spec());
        let d = ClusterDispatcher::new(ClusterServeConfig::test());
        let a = d.run(&trace);
        d.cluster().join(4);
        d.cluster().leave(0);
        let b = d.run(&trace);
        assert_eq!(a.digest, b.digest, "churn must not change results");
        assert_eq!(
            b.cluster.computes, a.cluster.computes,
            "warm reuse survives join/leave: no recomputes on the second pass"
        );
    }
}
