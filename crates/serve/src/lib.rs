//! memphis-serve: admission-controlled, deadline-aware request serving
//! over the shared lineage cache.
//!
//! The serving layer (DESIGN.md §7) sits in front of the MEMPHIS reuse
//! substrate and turns it into a multi-tenant service:
//!
//! * **Requests** ([`Request`]) are tagged with a tenant, a priority
//!   class, and a start-by deadline, and ask for either a shared lineage
//!   item or a full session pipeline.
//! * **Admission** ([`admission`]) is a token bucket plus per-tenant
//!   hard in-flight memory caps; the bounded priority/deadline
//!   [`queue`](RequestQueue) orders admitted work.
//! * **Pressure** ([`pressure`]) tracks unevictable demand against the
//!   cache's unified local budget, shedding past-deadline queued work
//!   at the shed level and suspending memory-intensive admissions at
//!   the suspend level.
//! * **Scheduling** ([`Scheduler`]) is a virtual-time event loop whose
//!   three-phase batch protocol routes every computation through the
//!   coalescing cache exactly once and keeps every schedule-determined
//!   counter identical across runs and worker-thread counts.
//! * **Tenant quotas** fold into the cache's eq. (1) eviction: entries
//!   of over-quota tenants are evicted first (see
//!   `LineageCache::set_tenant_quota`), so a cache-hogging tenant pays
//!   its own eviction bill before anyone else's.
//!
//! Determinism is the design axis: transient faults, arrivals, and
//! request shapes are all SplitMix64 hashes of stable identifiers
//! ([`rng`], mirroring the sparksim `FaultPlan`), scheduling runs on a
//! virtual tick clock, and worker threads execute only pure payloads.

pub mod admission;
pub mod cluster;
pub mod gen;
pub mod pressure;
pub mod queue;
pub mod request;
pub(crate) mod rng;
pub mod scheduler;
pub mod stats;

pub use admission::{TenantCaps, TokenBucket};
pub use cluster::{ClusterDispatcher, ClusterServeConfig, ClusterServeReport};
pub use gen::{open_loop, StreamSpec};
pub use pressure::{PressureLevel, PressureMonitor};
pub use queue::RequestQueue;
pub use request::{Outcome, Priority, Request, TenantId, Work};
pub use scheduler::{
    shared_item, shared_payload, Scheduler, ServeConfig, ServeReport, TenantReport,
};
pub use stats::ServeCounters;
