//! Seeded open-loop request generation.
//!
//! Arrivals are "Poisson-ish": integer inter-arrival gaps drawn
//! uniformly from `0..=2*mean_gap` by a SplitMix64 hash of the request
//! index, so the mean gap is exact, the trace is bit-reproducible per
//! seed, and no floating-point transcendentals enter the determinism
//! surface.

use crate::request::{Priority, Request, TenantId, Work};
use crate::rng::{hash, salt};
use memphis_workloads::pipelines;

/// Shape of a generated request stream.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Requests to generate.
    pub requests: usize,
    /// Tenants `0..tenants`.
    pub tenants: TenantId,
    /// Mean inter-arrival gap in ticks (gaps are uniform on
    /// `0..=2*mean_gap`).
    pub mean_gap: u64,
    /// Shared-item universe `0..items` for regular tenants.
    pub items: usize,
    /// Optional hog: a tenant issuing memory-intensive requests over a
    /// private item range `items..items + hog_items`.
    pub hog_tenant: Option<TenantId>,
    /// Size of the hog's private item range.
    pub hog_items: usize,
    /// Every `hog_every`-th request belongs to the hog (when set).
    pub hog_every: usize,
    /// Every `pipeline_every`-th request runs a full session pipeline
    /// instead of a shared item (0 disables pipelines).
    pub pipeline_every: usize,
    /// Base memory estimate in bytes; regular requests draw 1–3×,
    /// hog requests use 4×.
    pub mem_base: usize,
    /// Deadline slack: `deadline = arrival + slack * (1 + rank)`, so
    /// higher-priority requests get more headroom before they are
    /// shed-eligible.
    pub deadline_slack: u64,
}

impl StreamSpec {
    /// A small mixed stream: 3 tenants plus a hog, shared items with
    /// occasional pipelines.
    pub fn test() -> Self {
        Self {
            requests: 64,
            tenants: 4,
            mean_gap: 2,
            items: 12,
            hog_tenant: Some(3),
            hog_items: 8,
            hog_every: 4,
            pipeline_every: 0,
            mem_base: 2 << 10,
            deadline_slack: 16,
        }
    }
}

/// Generates the open-loop trace for `seed`. Identical `(seed, spec)`
/// yields an identical trace.
pub fn open_loop(seed: u64, spec: &StreamSpec) -> Vec<Request> {
    assert!(spec.tenants > 0, "need at least one tenant");
    assert!(spec.items > 0, "need at least one shared item");
    let mut arrival = 0u64;
    let mut out = Vec::with_capacity(spec.requests);
    for i in 0..spec.requests {
        let idx = i as u64;
        arrival += hash(seed, salt::ARRIVAL, [idx, 0, 0, 0]) % (2 * spec.mean_gap + 1);
        let h = hash(seed, salt::SHAPE, [idx, 0, 0, 0]);

        let is_hog = match spec.hog_tenant {
            Some(_) => spec.hog_every > 0 && i % spec.hog_every == 0,
            None => false,
        };
        let tenant = if is_hog {
            spec.hog_tenant.unwrap()
        } else {
            let mut t = (h % spec.tenants as u64) as TenantId;
            if Some(t) == spec.hog_tenant {
                t = (t + 1) % spec.tenants;
            }
            t
        };

        let priority = match (h >> 16) % 4 {
            0 => Priority::Interactive,
            1 => Priority::Normal,
            _ => Priority::Batch,
        };

        let work = if spec.pipeline_every > 0 && i % spec.pipeline_every == 0 {
            Work::Pipeline(pipelines::session_kind(seed, i))
        } else if is_hog {
            let span = spec.hog_items.max(1);
            Work::SharedItem(spec.items + ((h >> 24) as usize % span))
        } else {
            Work::SharedItem((h >> 24) as usize % spec.items)
        };

        let mem_estimate = if is_hog {
            spec.mem_base * 4
        } else {
            spec.mem_base * (1 + ((h >> 40) % 3) as usize)
        };

        let service_ticks = 1 + (h >> 48) % 3;
        let deadline = arrival + spec.deadline_slack * (1 + priority.rank() as u64);

        out.push(Request {
            id: idx,
            tenant,
            priority,
            arrival,
            deadline,
            mem_estimate,
            service_ticks,
            work,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_reproducible_per_seed() {
        let spec = StreamSpec::test();
        let a = open_loop(42, &spec);
        let b = open_loop(42, &spec);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.mem_estimate, y.mem_estimate);
        }
        let c = open_loop(1337, &spec);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.arrival != y.arrival
                || x.tenant != y.tenant
                || x.priority != y.priority),
            "different seeds should differ"
        );
    }

    #[test]
    fn hog_requests_are_intensive_and_private() {
        let spec = StreamSpec::test();
        let trace = open_loop(42, &spec);
        let hog = spec.hog_tenant.unwrap();
        for r in &trace {
            if r.tenant == hog {
                assert_eq!(r.mem_estimate, spec.mem_base * 4);
                if let Work::SharedItem(i) = r.work {
                    assert!(i >= spec.items, "hog uses its private range");
                }
            } else if let Work::SharedItem(i) = r.work {
                assert!(i < spec.items, "regular tenants share the base range");
            }
        }
        assert!(trace.iter().filter(|r| r.tenant == hog).count() >= spec.requests / 8);
    }

    #[test]
    fn arrivals_are_monotone_with_exact_mean_gap_bound() {
        let spec = StreamSpec::test();
        let trace = open_loop(7, &spec);
        let mut last = 0;
        for r in &trace {
            assert!(r.arrival >= last);
            assert!(r.arrival - last <= 2 * spec.mean_gap);
            last = r.arrival;
        }
    }
}
