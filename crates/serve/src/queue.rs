//! The bounded priority/deadline queue.

use crate::request::{Priority, Request};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap key: priority first (higher wins), then earlier deadline, then
/// lower id (FIFO tiebreak — also what makes scheduling deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Queued {
    priority: Priority,
    deadline: u64,
    id: u64,
}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.deadline.cmp(&self.deadline))
            .then(other.id.cmp(&self.id))
    }
}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Bounded priority/deadline queue of admitted request ids. The scheduler
/// keeps request state in its table; the queue holds only ordering keys.
#[derive(Debug)]
pub struct RequestQueue {
    heap: BinaryHeap<Queued>,
    capacity: usize,
    bytes: usize,
}

impl RequestQueue {
    /// An empty queue holding at most `capacity` requests.
    pub fn new(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::new(),
            capacity,
            bytes: 0,
        }
    }

    /// Queued requests.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True when the queue is at capacity for *new admissions* (retries
    /// of already-admitted requests are exempt from the bound).
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.capacity
    }

    /// Sum of `mem_estimate` over queued requests (pressure input).
    pub fn queued_bytes(&self) -> usize {
        self.bytes
    }

    /// Enqueues a request (caller checked the bound for new admissions).
    pub fn push(&mut self, r: &Request) {
        self.heap.push(Queued {
            priority: r.priority,
            deadline: r.deadline,
            id: r.id,
        });
        self.bytes += r.mem_estimate;
    }

    /// Pops the best request id, crediting `bytes` via the callback's
    /// returned estimate.
    pub fn pop(&mut self, mem_of: impl Fn(u64) -> usize) -> Option<u64> {
        let q = self.heap.pop()?;
        self.bytes = self.bytes.saturating_sub(mem_of(q.id));
        Some(q.id)
    }

    /// Removes every queued request past its deadline at `now`, returning
    /// their ids ordered lowest-priority-first (the shed order).
    pub fn shed_expired(&mut self, now: u64, mem_of: impl Fn(u64) -> usize) -> Vec<u64> {
        let drained: Vec<Queued> = std::mem::take(&mut self.heap).into_vec();
        let mut expired = Vec::new();
        for q in drained {
            if q.deadline < now {
                expired.push(q);
            } else {
                self.heap.push(q);
            }
        }
        // Lowest priority first; then latest deadline (most hopeless)
        // first; id tiebreak keeps the order deterministic.
        expired.sort_by(|a, b| {
            a.priority
                .cmp(&b.priority)
                .then(b.deadline.cmp(&a.deadline))
                .then(a.id.cmp(&b.id))
        });
        for q in &expired {
            self.bytes = self.bytes.saturating_sub(mem_of(q.id));
        }
        expired.into_iter().map(|q| q.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Work;

    fn req(id: u64, priority: Priority, deadline: u64) -> Request {
        Request {
            id,
            tenant: 0,
            priority,
            arrival: 0,
            deadline,
            mem_estimate: 100,
            service_ticks: 1,
            work: Work::SharedItem(0),
        }
    }

    #[test]
    fn pops_priority_then_deadline_then_id() {
        let mut q = RequestQueue::new(8);
        q.push(&req(1, Priority::Batch, 5));
        q.push(&req(2, Priority::Interactive, 9));
        q.push(&req(3, Priority::Interactive, 4));
        q.push(&req(4, Priority::Interactive, 4));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop(|_| 100)).collect();
        assert_eq!(order, vec![3, 4, 2, 1]);
        assert_eq!(q.queued_bytes(), 0);
    }

    #[test]
    fn shed_removes_expired_lowest_priority_first() {
        let mut q = RequestQueue::new(8);
        q.push(&req(1, Priority::Interactive, 3));
        q.push(&req(2, Priority::Batch, 2));
        q.push(&req(3, Priority::Normal, 1));
        q.push(&req(4, Priority::Interactive, 10));
        let shed = q.shed_expired(5, |_| 100);
        assert_eq!(shed, vec![2, 3, 1]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.queued_bytes(), 100);
    }

    #[test]
    fn capacity_bound() {
        let mut q = RequestQueue::new(2);
        q.push(&req(1, Priority::Batch, 1));
        assert!(!q.is_full());
        q.push(&req(2, Priority::Batch, 1));
        assert!(q.is_full());
    }
}
