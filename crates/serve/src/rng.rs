//! SplitMix64 decision hashing — the same idiom as
//! `memphis_sparksim::fault`: every probabilistic serving decision (task
//! faults, arrival jitter, request shapes) is a pure function of
//! `(seed, salt, coordinates)`, so a run is bit-identical across
//! repetitions and worker-thread counts.

/// SplitMix64 finalizer: turns `(seed, coordinates)` into an
/// i.i.d.-looking decision stream.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Combines the seed, a per-decision-kind salt, and up to four
/// coordinates into a raw 64-bit hash.
pub(crate) fn hash(seed: u64, salt: u64, coords: [u64; 4]) -> u64 {
    let mut h = mix(seed ^ salt.wrapping_mul(0xa076_1d64_78bd_642f));
    for c in coords {
        h = mix(h ^ c);
    }
    h
}

/// Like [`hash`], folded to a uniform value in `[0, 1)`.
pub(crate) fn decide(seed: u64, salt: u64, coords: [u64; 4]) -> f64 {
    // 53 bits of mantissa → uniform in [0, 1).
    (hash(seed, salt, coords) >> 11) as f64 / (1u64 << 53) as f64
}

/// Decision-kind salts (arbitrary, distinct).
pub(crate) mod salt {
    /// Per-attempt request fault decisions.
    pub const FAULT: u64 = 0x5e7e;
    /// Open-loop arrival-gap jitter.
    pub const ARRIVAL: u64 = 0xa771;
    /// Request shape (priority, item, size, service time).
    pub const SHAPE: u64 = 0x51a9;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_uniformish() {
        assert_eq!(
            decide(42, salt::FAULT, [1, 2, 3, 4]),
            decide(42, salt::FAULT, [1, 2, 3, 4])
        );
        assert_ne!(
            decide(42, salt::FAULT, [1, 2, 3, 4]),
            decide(42, salt::ARRIVAL, [1, 2, 3, 4])
        );
        let n = 4000;
        let mean = (0..n)
            .map(|i| decide(7, salt::SHAPE, [i, 0, 0, 0]))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from uniform");
    }
}
