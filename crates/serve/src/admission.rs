//! Admission control: token-bucket rate limiting plus per-tenant hard
//! in-flight memory caps.

use crate::request::TenantId;
use std::collections::HashMap;

/// Integer token bucket refilled per virtual tick. Exact-integer
/// arithmetic keeps admission decisions bit-deterministic.
#[derive(Debug)]
pub struct TokenBucket {
    capacity: u64,
    refill_per_tick: u64,
    tokens: u64,
    last_tick: u64,
}

impl TokenBucket {
    /// A full bucket of `capacity` tokens refilling `refill_per_tick`
    /// tokens per tick.
    pub fn new(capacity: u64, refill_per_tick: u64) -> Self {
        Self {
            capacity,
            refill_per_tick,
            tokens: capacity,
            last_tick: 0,
        }
    }

    /// Advances the refill clock to `now`.
    pub fn refill(&mut self, now: u64) {
        let elapsed = now.saturating_sub(self.last_tick);
        self.tokens = self
            .tokens
            .saturating_add(elapsed.saturating_mul(self.refill_per_tick))
            .min(self.capacity);
        self.last_tick = now;
    }

    /// Takes one token, or reports rate-limit rejection.
    pub fn try_take(&mut self) -> bool {
        if self.tokens == 0 {
            return false;
        }
        self.tokens -= 1;
        true
    }

    /// Tokens currently available.
    pub fn available(&self) -> u64 {
        self.tokens
    }
}

/// Per-tenant hard in-flight memory caps: the sum of `mem_estimate` over
/// a tenant's queued + executing requests may never exceed its cap. Also
/// tracks the high-water mark of each tenant's *executing* bytes so
/// experiments can assert zero overshoot.
#[derive(Debug, Default)]
pub struct TenantCaps {
    default_cap: usize,
    caps: HashMap<TenantId, usize>,
    /// Queued + executing bytes per tenant.
    committed: HashMap<TenantId, usize>,
    /// Executing bytes per tenant.
    inflight: HashMap<TenantId, usize>,
    high_water: HashMap<TenantId, usize>,
}

impl TenantCaps {
    /// Caps with a default for tenants without an override.
    pub fn new(default_cap: usize, overrides: HashMap<TenantId, usize>) -> Self {
        Self {
            default_cap,
            caps: overrides,
            ..Self::default()
        }
    }

    /// The hard cap of `tenant`.
    pub fn cap(&self, tenant: TenantId) -> usize {
        self.caps.get(&tenant).copied().unwrap_or(self.default_cap)
    }

    /// True when admitting `bytes` more for `tenant` stays under its cap.
    pub fn admits(&self, tenant: TenantId, bytes: usize) -> bool {
        self.committed.get(&tenant).copied().unwrap_or(0) + bytes <= self.cap(tenant)
    }

    /// Charges an admission (request entered the queue).
    pub fn commit(&mut self, tenant: TenantId, bytes: usize) {
        *self.committed.entry(tenant).or_insert(0) += bytes;
    }

    /// Moves `bytes` from queued to executing (dispatch).
    pub fn start(&mut self, tenant: TenantId, bytes: usize) {
        let inflight = self.inflight.entry(tenant).or_insert(0);
        *inflight += bytes;
        let hw = self.high_water.entry(tenant).or_insert(0);
        *hw = (*hw).max(*inflight);
    }

    /// Releases an executing request's bytes (completion or final
    /// failure). The committed share stays until [`uncommit`][Self::uncommit]
    /// — retried requests remain committed between attempts.
    pub fn finish(&mut self, tenant: TenantId, bytes: usize) {
        if let Some(v) = self.inflight.get_mut(&tenant) {
            *v = v.saturating_sub(bytes);
        }
    }

    /// Releases a terminal request's committed bytes (completed, shed, or
    /// failed — anything leaving the system).
    pub fn uncommit(&mut self, tenant: TenantId, bytes: usize) {
        if let Some(v) = self.committed.get_mut(&tenant) {
            *v = v.saturating_sub(bytes);
        }
    }

    /// High-water mark of `tenant`'s executing bytes.
    pub fn high_water(&self, tenant: TenantId) -> usize {
        self.high_water.get(&tenant).copied().unwrap_or(0)
    }

    /// `(tenant, high_water, cap)` rows, sorted by tenant for
    /// deterministic reporting.
    pub fn high_water_report(&self) -> Vec<(TenantId, usize, usize)> {
        let mut rows: Vec<_> = self
            .high_water
            .iter()
            .map(|(t, hw)| (*t, *hw, self.cap(*t)))
            .collect();
        rows.sort_by_key(|r| r.0);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_refills_and_caps() {
        let mut b = TokenBucket::new(2, 1);
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(!b.try_take(), "empty");
        b.refill(1);
        assert_eq!(b.available(), 1);
        b.refill(100);
        assert_eq!(b.available(), 2, "capped at capacity");
    }

    #[test]
    fn caps_enforce_committed_bytes() {
        let mut c = TenantCaps::new(1000, HashMap::new());
        assert!(c.admits(1, 800));
        c.commit(1, 800);
        assert!(!c.admits(1, 300), "second admission would overshoot");
        assert!(c.admits(2, 300), "other tenants unaffected");
        c.start(1, 800);
        assert_eq!(c.high_water(1), 800);
        c.finish(1, 800);
        c.uncommit(1, 800);
        assert!(c.admits(1, 300));
        assert_eq!(c.high_water(1), 800, "high water survives");
    }
}
