//! Serving-layer counters, comparable across runs and worker counts.

/// End-of-run serving counters. `Eq` on purpose: determinism tests
/// compare whole snapshots across repeated runs and worker-thread
/// counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub struct ServeCounters {
    /// Requests offered to admission.
    pub arrivals: u64,
    /// Requests that entered the queue (directly or via the suspended
    /// list).
    pub admitted: u64,
    /// Rejected by the token bucket.
    pub rejected_tokens: u64,
    /// Rejected by a tenant's hard in-flight memory cap.
    pub rejected_cap: u64,
    /// Rejected because the bounded queue was full.
    pub rejected_queue_full: u64,
    /// Memory-intensive arrivals parked while pressure was at suspend.
    pub suspended: u64,
    /// Parked requests resumed into the queue.
    pub resumed: u64,
    /// Queued past-deadline requests shed under pressure.
    pub shed: u64,
    /// Requests dispatched to execution slots (attempts, not requests).
    pub dispatched: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Completions whose successful attempt started past the deadline.
    pub completed_late: u64,
    /// Transient-fault retries (re-enqueues with backoff).
    pub retries: u64,
    /// Requests that exhausted their retry budget.
    pub failed: u64,
    /// Serve-level probe hits (cache already held the item).
    pub hits: u64,
    /// Owner computations begun through the cache.
    pub computes: u64,
    /// Same-batch followers riding an owner's computation (serve-level
    /// coalescing; the cache-level kind is in the reuse counters).
    pub coalesced: u64,
    /// Computations of an item computed before in this run (legal
    /// recompute after eviction).
    pub recomputes: u64,
    /// Computations begun while another computation of the same item was
    /// still in flight. The batch-owner protocol and the cache's
    /// in-flight markers make this impossible; must be 0.
    pub duplicates: u64,
    /// Quota-pass evictions observed in the cache during the run.
    pub quota_evictions: u64,
}

impl ServeCounters {
    /// The counters that are schedule-determined: identical across runs
    /// and worker counts even when cache victim *identity* varies (the
    /// eq. (1) score ties are broken by map iteration order, so
    /// hit/compute splits can differ while everything here cannot).
    pub fn deterministic_slice(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("arrivals", self.arrivals),
            ("admitted", self.admitted),
            ("rejected_tokens", self.rejected_tokens),
            ("rejected_cap", self.rejected_cap),
            ("rejected_queue_full", self.rejected_queue_full),
            ("suspended", self.suspended),
            ("resumed", self.resumed),
            ("shed", self.shed),
            ("dispatched", self.dispatched),
            ("completed", self.completed),
            ("completed_late", self.completed_late),
            ("retries", self.retries),
            ("failed", self.failed),
            ("coalesced", self.coalesced),
            ("duplicates", self.duplicates),
            ("probes", self.hits + self.computes),
        ]
    }

    /// Every admitted request must reach exactly one terminal state.
    pub fn terminally_complete(&self) -> bool {
        self.admitted == self.completed + self.shed + self.failed
    }
}

impl memphis_obs::IntoMetrics for ServeCounters {
    fn metrics_section(&self) -> &'static str {
        "serve"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("arrivals", self.arrivals),
            ("admitted", self.admitted),
            ("rejected_tokens", self.rejected_tokens),
            ("rejected_cap", self.rejected_cap),
            ("rejected_queue_full", self.rejected_queue_full),
            ("suspended", self.suspended),
            ("resumed", self.resumed),
            ("shed", self.shed),
            ("dispatched", self.dispatched),
            ("completed", self.completed),
            ("completed_late", self.completed_late),
            ("retries", self.retries),
            ("failed", self.failed),
            ("hits", self.hits),
            ("computes", self.computes),
            ("coalesced", self.coalesced),
            ("recomputes", self.recomputes),
            ("duplicates", self.duplicates),
            ("quota_evictions", self.quota_evictions),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_completeness() {
        let c = ServeCounters {
            admitted: 10,
            completed: 7,
            shed: 2,
            failed: 1,
            ..Default::default()
        };
        assert!(c.terminally_complete());
        assert!(!ServeCounters {
            admitted: 1,
            ..Default::default()
        }
        .terminally_complete());
    }
}
