//! The three-level memory-pressure monitor.
//!
//! Pressure measures *unevictable demand* on the unified memory budget:
//! bytes reserved by executing requests plus the estimates of everything
//! queued behind them. Cached entries are excluded deliberately — the
//! lineage cache evicts them itself under eq. (1), so a full cache is
//! the healthy steady state, not an emergency. The budget is read from
//! the cache's own local-tier accounting, keeping the monitor driven by
//! the same unified budget the backends share.

/// Pressure level, derived from committed bytes vs. the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PressureLevel {
    /// Demand is comfortably under budget.
    Normal,
    /// Demand crossed the shed threshold: queued requests past their
    /// deadline are shed, lowest priority first.
    Shed,
    /// Demand crossed the suspend threshold: admission of
    /// memory-intensive requests is suspended until pressure drops.
    Suspend,
}

/// Threshold-based monitor over a fixed byte budget.
#[derive(Debug, Clone)]
pub struct PressureMonitor {
    budget: usize,
    shed_at: usize,
    suspend_at: usize,
    /// Requests with `mem_estimate >= intensive_bytes` count as
    /// memory-intensive for suspension.
    pub intensive_bytes: usize,
}

impl PressureMonitor {
    /// A monitor over `budget` bytes with `shed_frac`/`suspend_frac`
    /// thresholds (fractions of the budget) and the given
    /// memory-intensive bound.
    pub fn new(budget: usize, shed_frac: f64, suspend_frac: f64, intensive_bytes: usize) -> Self {
        Self {
            budget,
            shed_at: (budget as f64 * shed_frac) as usize,
            suspend_at: (budget as f64 * suspend_frac) as usize,
            intensive_bytes,
        }
    }

    /// The budget the monitor watches.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The level for `committed` bytes of unevictable demand.
    pub fn level(&self, committed: usize) -> PressureLevel {
        if committed >= self.suspend_at {
            PressureLevel::Suspend
        } else if committed >= self.shed_at {
            PressureLevel::Shed
        } else {
            PressureLevel::Normal
        }
    }

    /// True when a request of `mem_estimate` bytes counts as
    /// memory-intensive (suspended at [`PressureLevel::Suspend`]).
    pub fn is_intensive(&self, mem_estimate: usize) -> bool {
        mem_estimate >= self.intensive_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_follow_thresholds() {
        let m = PressureMonitor::new(1000, 0.5, 0.8, 100);
        assert_eq!(m.level(0), PressureLevel::Normal);
        assert_eq!(m.level(499), PressureLevel::Normal);
        assert_eq!(m.level(500), PressureLevel::Shed);
        assert_eq!(m.level(799), PressureLevel::Shed);
        assert_eq!(m.level(800), PressureLevel::Suspend);
        assert!(m.is_intensive(100));
        assert!(!m.is_intensive(99));
        assert!(PressureLevel::Suspend > PressureLevel::Shed);
    }
}
