//! Lowering: typed AST → the engine's block/DAG [`Program`]. This pass is
//! also the typechecker — every expression is assigned a [`Ty`] as it is
//! lowered, and all dimension errors carry the source span.
//!
//! Lowering rules that matter for lineage parity with the Rust builder API
//! (DESIGN.md §12):
//! - node output names are unique within a DAG (SSA-style `x__v2`
//!   versioning on reassignment); the public variable name is aliased onto
//!   the *last* version at block flush, so later blocks resolve it.
//! - `matrix ∘ literal` lowers to `BinaryScalar{Const}` (the builder's
//!   `binary_const`), while `matrix ∘ scalar-var` stays a plain `Binary`
//!   over the variable (the builder's `binary`), and `matrix ∘ loop-var`
//!   becomes `BinaryScalar{Loop}` — matching what the builder pipelines
//!   emit so interned `LineageId`s coincide.
//! - constant folding only combines literal operands; a named scalar
//!   binding (`a = 0.5;`) is an opaque runtime scalar (`Literal` node).
//! - functions are inlined at call sites with renamed locals; `parfor`
//!   unrolls at compile time by substituting the loop variable as a
//!   literal.
//! - `checkpoint`/`evict` flush the current DAG and occupy their own
//!   basic block, preserving side-effect order across the linearizer.

use crate::ast::{Arg, BinOp, Expr, FuncDef, Script, SeqSpec, Stmt, Ty};
use crate::{Result, ScriptError, Span};
use memphis_engine::ops::AggDir;
use memphis_engine::plan::{Block, BlockHints, Dag, OpKind, Operand, Program, ScalarRef};
use memphis_matrix::ops::agg::AggOp;
use memphis_matrix::ops::binary::BinaryOp;
use memphis_matrix::ops::nn::{Conv2dParams, Pool2dParams};
use memphis_matrix::ops::unary::UnaryOp;
use std::collections::{HashMap, HashSet};

/// An external input declared by `X = read("name", rows, cols);`. The host
/// harness binds a matrix for each spec (in order) before running the
/// program, using `name` as the lineage leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadSpec {
    /// Script variable the matrix is bound to.
    pub var: String,
    /// Dataset name (the lineage leaf, e.g. `hcv/X0`).
    pub name: String,
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
}

/// A fully lowered script: the executable program plus its external-input
/// contract and declared result sinks.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The engine program.
    pub program: Program,
    /// External inputs, in declaration order.
    pub reads: Vec<ReadSpec>,
    /// Variables published by `print(x);`, in order.
    pub prints: Vec<String>,
}

impl Compiled {
    /// Total operator nodes across all blocks (recursive).
    pub fn node_count(&self) -> u64 {
        fn blocks(bs: &[Block]) -> u64 {
            bs.iter().map(block).sum()
        }
        fn block(b: &Block) -> u64 {
            match b {
                Block::Basic { dag, .. } => dag.nodes.len() as u64,
                Block::For { body, .. } | Block::While { body, .. } => blocks(body),
                Block::If {
                    then_blocks,
                    else_blocks,
                    ..
                } => blocks(then_blocks) + blocks(else_blocks),
            }
        }
        blocks(&self.program.blocks)
    }
}

/// Lowers a parsed script.
pub fn lower(script: &Script) -> Result<Compiled> {
    let mut funcs = HashMap::new();
    for f in &script.funcs {
        if funcs.insert(f.name.clone(), f.clone()).is_some() {
            return Err(ScriptError::at(
                f.span,
                format!("function `{}` is defined twice", f.name),
            ));
        }
    }
    let mut lo = Lowerer {
        funcs,
        env: HashMap::new(),
        reads: Vec::new(),
        prints: Vec::new(),
        var_dims: HashMap::new(),
        blocks: Vec::new(),
        dag: Dag::new(),
        dag_names: HashSet::new(),
        version: 0,
        cond_counter: 0,
        inline_counter: 0,
        inline_depth: 0,
        fn_prefix: None,
        depth: 0,
    };
    lo.stmts(&script.stmts)?;
    lo.flush();
    let mut program = Program::new();
    program.blocks = std::mem::take(&mut lo.blocks);
    program.var_dims = std::mem::take(&mut lo.var_dims);
    Ok(Compiled {
        program,
        reads: lo.reads,
        prints: lo.prints,
    })
}

/// What a variable name is bound to during lowering.
#[derive(Debug, Clone)]
struct Binding {
    /// Operand to reference it by (absent for inlined constant params).
    op: Option<Operand>,
    /// Static type.
    ty: Ty,
    /// Compile-time constant value (function params bound to literals).
    cval: Option<f64>,
    /// This is the variable of an enclosing runtime `for` loop.
    loop_var: bool,
}

/// A lowered expression value.
#[derive(Debug, Clone)]
enum LVal {
    /// Compile-time constant scalar.
    Const(f64),
    /// Runtime operand.
    Op {
        /// The operand.
        op: Operand,
        /// Its type.
        ty: Ty,
        /// Operand is a runtime loop variable.
        loop_var: bool,
    },
}

impl LVal {
    fn ty(&self) -> Ty {
        match self {
            LVal::Const(_) => Ty::Scalar,
            LVal::Op { ty, .. } => *ty,
        }
    }
}

struct Lowerer {
    funcs: HashMap<String, FuncDef>,
    env: HashMap<String, Binding>,
    reads: Vec<ReadSpec>,
    prints: Vec<String>,
    var_dims: HashMap<String, (usize, usize)>,
    blocks: Vec<Block>,
    dag: Dag,
    dag_names: HashSet<String>,
    version: u64,
    cond_counter: u64,
    inline_counter: u64,
    inline_depth: u32,
    fn_prefix: Option<String>,
    depth: u32,
}

impl Lowerer {
    // ------------------------------------------------------------------
    // Scope and DAG plumbing
    // ------------------------------------------------------------------

    /// Ends the current basic block: aliases every environment binding
    /// that still points at a DAG node back onto its public name, pushes
    /// the block, and demotes bindings to plain variable references.
    fn flush(&mut self) {
        if !self.dag.nodes.is_empty() {
            let names: Vec<String> = self.env.keys().cloned().collect();
            for name in names {
                let b = self.env.get(&name).unwrap();
                if let Some(Operand::Node(id)) = b.op {
                    if self.dag.nodes[id].outputs.first() != Some(&name)
                        && !self.dag.nodes[id].outputs.contains(&name)
                    {
                        self.dag.nodes[id].outputs.push(name.clone());
                    }
                }
            }
            let dag = std::mem::take(&mut self.dag);
            self.blocks.push(Block::Basic {
                dag,
                hints: BlockHints::default(),
            });
        }
        self.dag_names.clear();
        let names: Vec<String> = self.env.keys().cloned().collect();
        for name in names {
            let b = self.env.get_mut(&name).unwrap();
            if b.op.is_some() {
                b.op = Some(Operand::Var(name.clone()));
            }
            if let Ty::Matrix(r, c) = b.ty {
                self.var_dims.insert(name.clone(), (r, c));
            }
        }
    }

    /// Lowers `stmts` into a child scope and returns its blocks. The
    /// environment is shared (bindings persist at runtime).
    fn scoped(&mut self, stmts: &[Stmt]) -> Result<Vec<Block>> {
        self.flush();
        let saved = std::mem::take(&mut self.blocks);
        self.depth += 1;
        let res = self.stmts(stmts);
        self.depth -= 1;
        self.flush();
        let child = std::mem::replace(&mut self.blocks, saved);
        res?;
        Ok(child)
    }

    /// A unique output name for an assignment to `public` in the current
    /// DAG (SSA versioning on reassignment; function locals are prefixed).
    fn fresh_name(&mut self, public: &str) -> String {
        let base = match &self.fn_prefix {
            Some(p) => format!("{p}_{public}"),
            None => public.to_string(),
        };
        let mut name = base.clone();
        while self.dag_names.contains(&name) {
            self.version += 1;
            name = format!("{base}__v{}", self.version);
        }
        self.dag_names.insert(name.clone());
        name
    }

    fn add_node(&mut self, kind: OpKind, inputs: Vec<Operand>) -> usize {
        self.dag.add(kind, inputs, None)
    }

    /// Binds `public` to the result of an assignment.
    fn bind(&mut self, public: &str, val: LVal) {
        let (op, ty, loop_var) = match val {
            LVal::Const(v) => {
                let name = self.fresh_name(public);
                let id = self.add_node(OpKind::Literal(v), vec![]);
                self.dag.nodes[id].outputs = vec![name];
                (Operand::Node(id), Ty::Scalar, false)
            }
            // A rebinding (even of a loop variable) names a concrete
            // value, so the new binding is never itself a loop var.
            LVal::Op { op, ty, .. } => match op {
                Operand::Node(id) if self.dag.nodes[id].outputs.is_empty() => {
                    let name = self.fresh_name(public);
                    self.dag.nodes[id].outputs = vec![name];
                    (Operand::Node(id), ty, false)
                }
                other => {
                    let name = self.fresh_name(public);
                    let id = self.add_node(OpKind::Alias, vec![other]);
                    self.dag.nodes[id].outputs = vec![name];
                    (Operand::Node(id), ty, false)
                }
            },
        };
        self.env.insert(
            public.to_string(),
            Binding {
                op: Some(op),
                ty,
                cval: None,
                loop_var,
            },
        );
    }

    /// Materializes an operand for a value (constants become `Literal`
    /// nodes).
    fn operand(&mut self, val: &LVal) -> Operand {
        match val {
            LVal::Const(v) => Operand::Node(self.add_node(OpKind::Literal(*v), vec![])),
            LVal::Op { op, .. } => op.clone(),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<()> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<()> {
        match s {
            Stmt::Assign { name, expr, span } => self.assign(name, expr, *span),
            Stmt::For {
                var,
                seq,
                body,
                unroll,
                span,
            } => {
                let values = self.seq_values(seq, *span)?;
                if *unroll {
                    for &v in &values {
                        let substituted: Vec<Stmt> =
                            body.iter().map(|s| subst_stmt(s, var, v)).collect();
                        self.stmts(&substituted)?;
                    }
                    return Ok(());
                }
                self.flush();
                self.env.insert(
                    var.clone(),
                    Binding {
                        op: Some(Operand::Var(var.clone())),
                        ty: Ty::Scalar,
                        cval: None,
                        loop_var: true,
                    },
                );
                let child = self.scoped(body)?;
                self.blocks.push(Block::For {
                    var: var.clone(),
                    values,
                    body: child,
                });
                // After the loop the variable keeps its last value as a
                // plain runtime scalar.
                if let Some(b) = self.env.get_mut(var) {
                    b.loop_var = false;
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                span,
            } => {
                let c = self.expr(cond)?;
                if c.ty() != Ty::Scalar {
                    return Err(ScriptError::at(
                        *span,
                        format!("if condition must be a scalar, found {}", c.ty()),
                    ));
                }
                self.cond_counter += 1;
                let cname = format!("__cond{}", self.cond_counter);
                self.bind(&cname, c);
                let saved_env = self.env.clone();
                let then_blocks = self.scoped(then_body)?;
                let then_env = std::mem::replace(&mut self.env, saved_env);
                let else_blocks = self.scoped(else_body)?;
                // Merge: bindings from either branch are visible after the
                // If (whichever branch ran bound them at runtime); on a
                // type conflict the then-branch wins (documented caveat).
                for (k, v) in then_env {
                    self.env.entry(k).or_insert(v);
                }
                self.blocks.push(Block::If {
                    cond_var: cname,
                    then_blocks,
                    else_blocks,
                });
                Ok(())
            }
            Stmt::Print { name, span } => {
                if !self.env.contains_key(name) {
                    return Err(ScriptError::at(
                        *span,
                        format!("print of unknown variable `{name}`"),
                    ));
                }
                self.prints.push(name.clone());
                Ok(())
            }
            Stmt::Checkpoint { name, span } => {
                let b =
                    self.env.get(name).cloned().ok_or_else(|| {
                        ScriptError::at(*span, format!("unknown variable `{name}`"))
                    })?;
                if !matches!(b.ty, Ty::Matrix(..)) {
                    return Err(ScriptError::at(
                        *span,
                        format!("checkpoint needs a matrix, `{name}` is {}", b.ty),
                    ));
                }
                // Own block, preserving side-effect order.
                self.flush();
                let mut dag = Dag::new();
                dag.add(
                    OpKind::Checkpoint,
                    vec![Operand::Var(name.clone())],
                    Some(name),
                );
                self.blocks.push(Block::Basic {
                    dag,
                    hints: BlockHints::default(),
                });
                Ok(())
            }
            Stmt::Evict { fraction, span } => {
                if !(0.0..=1.0).contains(fraction) {
                    return Err(ScriptError::at(
                        *span,
                        format!("evict fraction must be in [0, 1], got {fraction}"),
                    ));
                }
                self.flush();
                let mut dag = Dag::new();
                dag.add(OpKind::Evict(*fraction), vec![], None);
                self.blocks.push(Block::Basic {
                    dag,
                    hints: BlockHints::default(),
                });
                Ok(())
            }
        }
    }

    fn assign(&mut self, name: &str, expr: &Expr, span: Span) -> Result<()> {
        // `read` is special-cased: it binds an external input rather than
        // lowering to a node.
        if let Expr::Call {
            name: callee, args, ..
        } = expr
        {
            if callee == "read" {
                return self.read_assign(name, args, span);
            }
        }
        let val = self.expr(expr)?;
        self.bind(name, val);
        Ok(())
    }

    fn read_assign(&mut self, var: &str, args: &[Arg], span: Span) -> Result<()> {
        if self.depth > 0 || self.fn_prefix.is_some() {
            return Err(ScriptError::at(
                span,
                "read(...) is only allowed in top-level straight-line code",
            ));
        }
        if args.len() != 3 {
            return Err(ScriptError::at(
                span,
                format!(
                    "read(name, rows, cols) takes 3 arguments, got {}",
                    args.len()
                ),
            ));
        }
        let name = match &args[0] {
            Arg::Str(s, _) => s.clone(),
            Arg::Expr(e) => {
                return Err(ScriptError::at(
                    e.span(),
                    "read's first argument must be a string dataset name",
                ))
            }
        };
        let rows = self.const_usize(&args[1], "read rows")?;
        let cols = self.const_usize(&args[2], "read cols")?;
        if self.reads.iter().any(|r| r.var == var) {
            return Err(ScriptError::at(
                span,
                format!("variable `{var}` is read twice; bind each read to a fresh variable"),
            ));
        }
        self.reads.push(ReadSpec {
            var: var.to_string(),
            name,
            rows,
            cols,
        });
        self.var_dims.insert(var.to_string(), (rows, cols));
        self.env.insert(
            var.to_string(),
            Binding {
                op: Some(Operand::Var(var.to_string())),
                ty: Ty::Matrix(rows, cols),
                cval: None,
                loop_var: false,
            },
        );
        Ok(())
    }

    fn seq_values(&mut self, seq: &SeqSpec, span: Span) -> Result<Vec<f64>> {
        match seq {
            SeqSpec::List(exprs) => exprs
                .iter()
                .map(|e| self.const_f64(e, "loop value"))
                .collect(),
            SeqSpec::Range(from, to) => {
                let a = self.const_f64(from, "seq start")?;
                let b = self.const_f64(to, "seq end")?;
                if a.fract() != 0.0 || b.fract() != 0.0 {
                    return Err(ScriptError::at(span, "seq bounds must be integers"));
                }
                let (a, b) = (a as i64, b as i64);
                if b < a {
                    return Err(ScriptError::at(span, "seq end is before its start"));
                }
                Ok((a..=b).map(|v| v as f64).collect())
            }
        }
    }

    // ------------------------------------------------------------------
    // Constant evaluation (structural parameters)
    // ------------------------------------------------------------------

    /// Evaluates an expression that must be known at compile time (rand
    /// dims/seeds, slice bounds, conv shapes, loop domains). Resolves
    /// literals, folded arithmetic, and constant-bound function params.
    fn const_f64(&self, e: &Expr, what: &str) -> Result<f64> {
        self.try_const(e).ok_or_else(|| {
            ScriptError::at(e.span(), format!("{what} must be a compile-time constant"))
        })
    }

    fn try_const(&self, e: &Expr) -> Option<f64> {
        match e {
            Expr::Num(v, _) => Some(*v),
            Expr::Var(name, _) => self.env.get(name).and_then(|b| b.cval),
            Expr::Neg(a, _) => self.try_const(a).map(|v| -v),
            Expr::Binary { op, lhs, rhs, .. } => {
                let a = self.try_const(lhs)?;
                let b = self.try_const(rhs)?;
                fold(*op, a, b)
            }
            Expr::Call { .. } => None,
        }
    }

    fn const_usize(&self, a: &Arg, what: &str) -> Result<usize> {
        let e = match a {
            Arg::Expr(e) => e,
            Arg::Str(_, span) => {
                return Err(ScriptError::at(*span, format!("{what} must be a number")))
            }
        };
        let v = self.const_f64(e, what)?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(ScriptError::at(
                e.span(),
                format!("{what} must be a non-negative integer, got {v}"),
            ));
        }
        Ok(v as usize)
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn expr(&mut self, e: &Expr) -> Result<LVal> {
        match e {
            Expr::Num(v, _) => Ok(LVal::Const(*v)),
            Expr::Var(name, span) => {
                let b =
                    self.env.get(name).cloned().ok_or_else(|| {
                        ScriptError::at(*span, format!("unknown variable `{name}`"))
                    })?;
                if let Some(v) = b.cval {
                    return Ok(LVal::Const(v));
                }
                Ok(LVal::Op {
                    op: b.op.clone().unwrap_or(Operand::Var(name.clone())),
                    ty: b.ty,
                    loop_var: b.loop_var,
                })
            }
            Expr::Neg(a, span) => {
                let v = self.expr(a)?;
                match v {
                    LVal::Const(c) => Ok(LVal::Const(-c)),
                    LVal::Op { ty, .. } => {
                        let op = self.operand(&v);
                        let id = self.add_node(OpKind::Unary(UnaryOp::Neg), vec![op]);
                        let _ = span;
                        Ok(LVal::Op {
                            op: Operand::Node(id),
                            ty,
                            loop_var: false,
                        })
                    }
                }
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let l = self.expr(lhs)?;
                let r = self.expr(rhs)?;
                self.binary(*op, l, r, *span)
            }
            Expr::Call { name, args, span } => self.call(name, args, *span),
        }
    }

    fn binary(&mut self, op: BinOp, l: LVal, r: LVal, span: Span) -> Result<LVal> {
        if let (LVal::Const(a), LVal::Const(b)) = (&l, &r) {
            if let Some(v) = fold(op, *a, *b) {
                return Ok(LVal::Const(v));
            }
        }
        if op == BinOp::MatMul {
            let (Ty::Matrix(ar, ac), Ty::Matrix(br, bc)) = (l.ty(), r.ty()) else {
                return Err(ScriptError::at(
                    span,
                    format!("%*% needs two matrices, found {} and {}", l.ty(), r.ty()),
                ));
            };
            if ac != br {
                return Err(ScriptError::at(
                    span,
                    format!("dimension mismatch: matrix[{ar}x{ac}] %*% matrix[{br}x{bc}]"),
                ));
            }
            let (lo, ro) = (self.operand(&l), self.operand(&r));
            let id = self.add_node(OpKind::MatMul, vec![lo, ro]);
            return Ok(LVal::Op {
                op: Operand::Node(id),
                ty: Ty::Matrix(ar, bc),
                loop_var: false,
            });
        }
        let bop = elementwise_op(op);
        // matrix/scalar-runtime ∘ literal → BinaryScalar{Const} (the
        // builder's binary_const).
        match (&l, &r) {
            (LVal::Op { op: xo, ty, .. }, LVal::Const(c)) => {
                let id = self.add_node(
                    OpKind::BinaryScalar {
                        op: bop,
                        scalar: ScalarRef::Const(*c),
                        swap: false,
                    },
                    vec![xo.clone()],
                );
                return Ok(LVal::Op {
                    op: Operand::Node(id),
                    ty: result_ty_scalar(*ty, op),
                    loop_var: false,
                });
            }
            (LVal::Const(c), LVal::Op { op: xo, ty, .. }) => {
                let id = self.add_node(
                    OpKind::BinaryScalar {
                        op: bop,
                        scalar: ScalarRef::Const(*c),
                        swap: true,
                    },
                    vec![xo.clone()],
                );
                return Ok(LVal::Op {
                    op: Operand::Node(id),
                    ty: result_ty_scalar(*ty, op),
                    loop_var: false,
                });
            }
            _ => {}
        }
        let (
            LVal::Op {
                op: lo,
                ty: lt,
                loop_var: llv,
            },
            LVal::Op {
                op: ro,
                ty: rt,
                loop_var: rlv,
            },
        ) = (&l, &r)
        else {
            unreachable!("const/const folded above; op {op:?} at {span}");
        };
        // matrix ∘ loop-var → BinaryScalar{Loop} (the builder passes the
        // loop variable name to `binary`; same call, reuse-aware lineage).
        if *rlv && matches!(lt, Ty::Matrix(..)) {
            let Operand::Var(v) = ro else { unreachable!() };
            let id = self.add_node(
                OpKind::BinaryScalar {
                    op: bop,
                    scalar: ScalarRef::Loop(v.clone()),
                    swap: false,
                },
                vec![lo.clone()],
            );
            return Ok(LVal::Op {
                op: Operand::Node(id),
                ty: result_ty_scalar(*lt, op),
                loop_var: false,
            });
        }
        if *llv && matches!(rt, Ty::Matrix(..)) {
            let Operand::Var(v) = lo else { unreachable!() };
            let id = self.add_node(
                OpKind::BinaryScalar {
                    op: bop,
                    scalar: ScalarRef::Loop(v.clone()),
                    swap: true,
                },
                vec![ro.clone()],
            );
            return Ok(LVal::Op {
                op: Operand::Node(id),
                ty: result_ty_scalar(*rt, op),
                loop_var: false,
            });
        }
        let ty = unify_elementwise(*lt, *rt, op, span)?;
        let id = self.add_node(OpKind::Binary(bop), vec![lo.clone(), ro.clone()]);
        Ok(LVal::Op {
            op: Operand::Node(id),
            ty,
            loop_var: false,
        })
    }

    // ------------------------------------------------------------------
    // Calls
    // ------------------------------------------------------------------

    fn call(&mut self, name: &str, args: &[Arg], span: Span) -> Result<LVal> {
        match name {
            "read" => Err(ScriptError::at(
                span,
                "read(...) must be the right-hand side of a top-level assignment",
            )),
            "rand" => self.rand_call(args, span),
            "t" => {
                let (op, r, c) = self.matrix_arg(args, 0, "t", span)?;
                self.node_val(OpKind::Transpose, vec![op], Ty::Matrix(c, r))
            }
            "tsmm" => {
                let (op, _r, c) = self.matrix_arg(args, 0, "tsmm", span)?;
                self.expect_arity(args, 1, "tsmm(X)", span)?;
                self.node_val(OpKind::Tsmm, vec![op], Ty::Matrix(c, c))
            }
            "xty" => {
                self.expect_arity(args, 2, "xty(X, y)", span)?;
                let (x, xr, xc) = self.matrix_arg(args, 0, "xty", span)?;
                let (y, yr, yc) = self.matrix_arg(args, 1, "xty", span)?;
                if xr != yr {
                    return Err(ScriptError::at(
                        span,
                        format!("xty row mismatch: matrix[{xr}x{xc}] vs matrix[{yr}x{yc}]"),
                    ));
                }
                self.node_val(OpKind::Xty, vec![x, y], Ty::Matrix(xc, yc))
            }
            "solve" => {
                self.expect_arity(args, 2, "solve(A, b)", span)?;
                let (a, ar, ac) = self.matrix_arg(args, 0, "solve", span)?;
                let (b, br, bc) = self.matrix_arg(args, 1, "solve", span)?;
                if ar != ac || ar != br {
                    return Err(ScriptError::at(
                        span,
                        format!("solve needs square A with matching b: matrix[{ar}x{ac}], matrix[{br}x{bc}]"),
                    ));
                }
                self.node_val(OpKind::Solve, vec![a, b], Ty::Matrix(ac, bc))
            }
            "sum" | "mean" | "min" | "max" | "var" | "sumsq" => self.agg_call(name, args, span),
            "exp" | "log" | "sqrt" | "abs" | "round" | "floor" | "ceil" | "relu" | "sigmoid"
            | "tanh" | "sign" => {
                self.expect_arity(args, 1, &format!("{name}(X)"), span)?;
                let v = self.expr_arg(args, 0, name)?;
                let ty = v.ty();
                let op = self.operand(&v);
                self.node_val(OpKind::Unary(unary_op(name)), vec![op], ty)
            }
            "conv2d" => self.conv_call(args, span),
            "max_pool2d" => self.pool_call(args, span),
            "affine" => {
                self.expect_arity(args, 3, "affine(X, W, b)", span)?;
                let (x, xr, xc) = self.matrix_arg(args, 0, "affine", span)?;
                let (w, wr, wc) = self.matrix_arg(args, 1, "affine", span)?;
                let (b, br, bc) = self.matrix_arg(args, 2, "affine", span)?;
                if xc != wr || br != 1 || bc != wc {
                    return Err(ScriptError::at(
                        span,
                        format!("affine shape mismatch: X[{xr}x{xc}] W[{wr}x{wc}] b[{br}x{bc}]"),
                    ));
                }
                self.node_val(OpKind::Affine, vec![x, w, b], Ty::Matrix(xr, wc))
            }
            "slice_rows" | "slice_cols" => self.slice_call(name, args, span),
            _ => self.inline_call(name, args, span),
        }
    }

    fn expect_arity(&self, args: &[Arg], n: usize, sig: &str, span: Span) -> Result<()> {
        if args.len() != n {
            return Err(ScriptError::at(
                span,
                format!("{sig} takes {n} argument(s), got {}", args.len()),
            ));
        }
        Ok(())
    }

    fn expr_arg(&mut self, args: &[Arg], i: usize, what: &str) -> Result<LVal> {
        match args.get(i) {
            Some(Arg::Expr(e)) => self.expr(e),
            Some(Arg::Str(_, span)) => Err(ScriptError::at(
                *span,
                format!("{what} does not take a string here"),
            )),
            None => unreachable!("arity checked by caller"),
        }
    }

    fn matrix_arg(
        &mut self,
        args: &[Arg],
        i: usize,
        what: &str,
        span: Span,
    ) -> Result<(Operand, usize, usize)> {
        if args.len() <= i {
            return Err(ScriptError::at(
                span,
                format!("{what} is missing argument {}", i + 1),
            ));
        }
        let v = self.expr_arg(args, i, what)?;
        match v.ty() {
            Ty::Matrix(r, c) => Ok((self.operand(&v), r, c)),
            Ty::Scalar => Err(ScriptError::at(
                span,
                format!("{what} argument {} must be a matrix, found scalar", i + 1),
            )),
        }
    }

    fn node_val(&mut self, kind: OpKind, inputs: Vec<Operand>, ty: Ty) -> Result<LVal> {
        let id = self.add_node(kind, inputs);
        Ok(LVal::Op {
            op: Operand::Node(id),
            ty,
            loop_var: false,
        })
    }

    fn rand_call(&mut self, args: &[Arg], span: Span) -> Result<LVal> {
        self.expect_arity(args, 5, "rand(rows, cols, min, max, seed)", span)?;
        let rows = self.const_usize(&args[0], "rand rows")?;
        let cols = self.const_usize(&args[1], "rand cols")?;
        let min = self.const_arg_f64(&args[2], "rand min")?;
        let max = self.const_arg_f64(&args[3], "rand max")?;
        let seed_f = self.const_arg_f64(&args[4], "rand seed")?;
        if seed_f < 0.0 || seed_f.fract() != 0.0 {
            return Err(ScriptError::at(
                span,
                format!("rand seed must be a non-negative integer, got {seed_f}"),
            ));
        }
        self.node_val(
            OpKind::Rand {
                rows,
                cols,
                min,
                max,
                seed: seed_f as u64,
            },
            vec![],
            Ty::Matrix(rows, cols),
        )
    }

    fn const_arg_f64(&self, a: &Arg, what: &str) -> Result<f64> {
        match a {
            Arg::Expr(e) => self.const_f64(e, what),
            Arg::Str(_, span) => Err(ScriptError::at(*span, format!("{what} must be a number"))),
        }
    }

    fn agg_call(&mut self, name: &str, args: &[Arg], span: Span) -> Result<LVal> {
        let aop = agg_op(name);
        match args.len() {
            1 => {
                let v = self.expr_arg(args, 0, name)?;
                if v.ty() == Ty::Scalar {
                    return Err(ScriptError::at(
                        span,
                        format!("{name}(X) aggregates a matrix, found scalar"),
                    ));
                }
                let op = self.operand(&v);
                self.node_val(OpKind::Agg(aop, AggDir::Full), vec![op], Ty::Scalar)
            }
            2 => {
                // Directional agg when the 2nd arg is "row"/"col";
                // otherwise elementwise min/max.
                if let Arg::Str(dir, dspan) = &args[1] {
                    let (op, r, c) = self.matrix_arg(args, 0, name, span)?;
                    let (d, ty) = match dir.as_str() {
                        "row" => (AggDir::Row, Ty::Matrix(r, 1)),
                        "col" => (AggDir::Col, Ty::Matrix(1, c)),
                        other => {
                            return Err(ScriptError::at(
                                *dspan,
                                format!(
                                "aggregation direction must be \"row\" or \"col\", got \"{other}\""
                            ),
                            ))
                        }
                    };
                    return self.node_val(OpKind::Agg(aop, d), vec![op], ty);
                }
                let bop = match name {
                    "min" => BinOp::Lt,
                    "max" => BinOp::Gt,
                    _ => {
                        return Err(ScriptError::at(
                            span,
                            format!("{name} takes one matrix (plus optional \"row\"/\"col\")"),
                        ))
                    }
                };
                let _ = bop;
                let l = self.expr_arg(args, 0, name)?;
                let r = self.expr_arg(args, 1, name)?;
                self.binary_minmax(name, l, r, span)
            }
            n => Err(ScriptError::at(
                span,
                format!("{name} takes 1 or 2 arguments, got {n}"),
            )),
        }
    }

    /// Elementwise `min(a, b)` / `max(a, b)`.
    fn binary_minmax(&mut self, name: &str, l: LVal, r: LVal, span: Span) -> Result<LVal> {
        let bop = if name == "min" {
            BinaryOp::Min
        } else {
            BinaryOp::Max
        };
        if let (LVal::Const(a), LVal::Const(b)) = (&l, &r) {
            let v = if name == "min" { a.min(*b) } else { a.max(*b) };
            return Ok(LVal::Const(v));
        }
        let ty = match (l.ty(), r.ty()) {
            (Ty::Scalar, t) | (t, Ty::Scalar) => t,
            (Ty::Matrix(ar, ac), Ty::Matrix(br, bc)) => {
                unify_elementwise(Ty::Matrix(ar, ac), Ty::Matrix(br, bc), BinOp::Add, span)?
            }
        };
        match (&l, &r) {
            (LVal::Op { op, .. }, LVal::Const(c)) => {
                let id = self.add_node(
                    OpKind::BinaryScalar {
                        op: bop,
                        scalar: ScalarRef::Const(*c),
                        swap: false,
                    },
                    vec![op.clone()],
                );
                Ok(LVal::Op {
                    op: Operand::Node(id),
                    ty,
                    loop_var: false,
                })
            }
            (LVal::Const(c), LVal::Op { op, .. }) => {
                let id = self.add_node(
                    OpKind::BinaryScalar {
                        op: bop,
                        scalar: ScalarRef::Const(*c),
                        swap: true,
                    },
                    vec![op.clone()],
                );
                Ok(LVal::Op {
                    op: Operand::Node(id),
                    ty,
                    loop_var: false,
                })
            }
            _ => {
                let (lo, ro) = (self.operand(&l), self.operand(&r));
                let id = self.add_node(OpKind::Binary(bop), vec![lo, ro]);
                Ok(LVal::Op {
                    op: Operand::Node(id),
                    ty,
                    loop_var: false,
                })
            }
        }
    }

    fn conv_call(&mut self, args: &[Arg], span: Span) -> Result<LVal> {
        self.expect_arity(
            args,
            9,
            "conv2d(X, W, in_ch, out_ch, h, w, kernel, stride, pad)",
            span,
        )?;
        let (x, xr, xc) = self.matrix_arg(args, 0, "conv2d", span)?;
        let (w, wr, wc) = self.matrix_arg(args, 1, "conv2d", span)?;
        let p = Conv2dParams {
            in_channels: self.const_usize(&args[2], "conv2d in_channels")?,
            out_channels: self.const_usize(&args[3], "conv2d out_channels")?,
            height: self.const_usize(&args[4], "conv2d height")?,
            width: self.const_usize(&args[5], "conv2d width")?,
            kernel: self.const_usize(&args[6], "conv2d kernel")?,
            stride: self.const_usize(&args[7], "conv2d stride")?.max(1),
            pad: self.const_usize(&args[8], "conv2d pad")?,
        };
        if xc != p.in_channels * p.height * p.width {
            return Err(ScriptError::at(
                span,
                format!(
                    "conv2d input mismatch: X[{xr}x{xc}] vs {}x{}x{} images",
                    p.in_channels, p.height, p.width
                ),
            ));
        }
        if wr != p.out_channels || wc != p.in_channels * p.kernel * p.kernel {
            return Err(ScriptError::at(
                span,
                format!("conv2d filter mismatch: W[{wr}x{wc}]"),
            ));
        }
        let cols = p.out_cols();
        self.node_val(OpKind::Conv2d(p), vec![x, w], Ty::Matrix(xr, cols))
    }

    fn pool_call(&mut self, args: &[Arg], span: Span) -> Result<LVal> {
        self.expect_arity(args, 6, "max_pool2d(X, ch, h, w, window, stride)", span)?;
        let (x, xr, xc) = self.matrix_arg(args, 0, "max_pool2d", span)?;
        let p = Pool2dParams {
            channels: self.const_usize(&args[1], "max_pool2d channels")?,
            height: self.const_usize(&args[2], "max_pool2d height")?,
            width: self.const_usize(&args[3], "max_pool2d width")?,
            window: self.const_usize(&args[4], "max_pool2d window")?.max(1),
            stride: self.const_usize(&args[5], "max_pool2d stride")?.max(1),
        };
        if xc != p.channels * p.height * p.width {
            return Err(ScriptError::at(
                span,
                format!(
                    "max_pool2d input mismatch: X[{xr}x{xc}] vs {}x{}x{}",
                    p.channels, p.height, p.width
                ),
            ));
        }
        let cols = p.out_cols();
        self.node_val(OpKind::MaxPool2d(p), vec![x], Ty::Matrix(xr, cols))
    }

    fn slice_call(&mut self, name: &str, args: &[Arg], span: Span) -> Result<LVal> {
        self.expect_arity(args, 3, &format!("{name}(X, start, end)"), span)?;
        let (x, r, c) = self.matrix_arg(args, 0, name, span)?;
        let start = self.const_usize(&args[1], "slice start")?;
        let end = self.const_usize(&args[2], "slice end")?;
        let bound = if name == "slice_rows" { r } else { c };
        if start >= end || end > bound {
            return Err(ScriptError::at(
                span,
                format!("{name} range [{start}, {end}) out of bounds for matrix[{r}x{c}]"),
            ));
        }
        if name == "slice_rows" {
            self.node_val(
                OpKind::SliceRows { start, end },
                vec![x],
                Ty::Matrix(end - start, c),
            )
        } else {
            self.node_val(
                OpKind::SliceCols { start, end },
                vec![x],
                Ty::Matrix(r, end - start),
            )
        }
    }

    // ------------------------------------------------------------------
    // User-function inlining
    // ------------------------------------------------------------------

    fn inline_call(&mut self, name: &str, args: &[Arg], span: Span) -> Result<LVal> {
        let f = self
            .funcs
            .get(name)
            .cloned()
            .ok_or_else(|| ScriptError::at(span, format!("unknown function `{name}`")))?;
        if args.len() != f.params.len() {
            return Err(ScriptError::at(
                span,
                format!(
                    "function `{name}` takes {} argument(s), got {}",
                    f.params.len(),
                    args.len()
                ),
            ));
        }
        if self.inline_depth >= 16 {
            return Err(ScriptError::at(
                span,
                format!("function inlining too deep at `{name}` (recursive?)"),
            ));
        }
        let mut argvals = Vec::with_capacity(args.len());
        for (i, _) in args.iter().enumerate() {
            // Constant arguments stay constants (the builder's helpers
            // take f64 params and emit binary_const).
            let v = match &args[i] {
                Arg::Expr(e) => match self.try_const(e) {
                    Some(c) => LVal::Const(c),
                    None => self.expr_arg(args, i, name)?,
                },
                Arg::Str(_, sspan) => {
                    return Err(ScriptError::at(
                        *sspan,
                        format!("function `{name}` does not take string arguments"),
                    ))
                }
            };
            argvals.push(v);
        }
        for s in &f.body {
            check_fn_stmt(s, &f.name)?;
        }
        self.inline_counter += 1;
        let prefix = format!("__f{}", self.inline_counter);
        let mut fenv = HashMap::new();
        for (p, v) in f.params.iter().zip(argvals) {
            let b = match v {
                LVal::Const(c) => Binding {
                    op: None,
                    ty: Ty::Scalar,
                    cval: Some(c),
                    loop_var: false,
                },
                LVal::Op { op, ty, loop_var } => Binding {
                    op: Some(op),
                    ty,
                    cval: None,
                    loop_var,
                },
            };
            fenv.insert(p.clone(), b);
        }
        let saved_env = std::mem::replace(&mut self.env, fenv);
        let saved_prefix = self.fn_prefix.replace(prefix);
        self.inline_depth += 1;
        let body_res = self.stmts(&f.body);
        let ret = body_res.and_then(|_| self.expr(&f.ret));
        self.inline_depth -= 1;
        self.fn_prefix = saved_prefix;
        self.env = saved_env;
        ret
    }
}

/// Function bodies are straight-line: assignments and `parfor` only, so
/// inlining never crosses a basic-block boundary.
fn check_fn_stmt(s: &Stmt, fname: &str) -> Result<()> {
    match s {
        Stmt::Assign { .. } => Ok(()),
        Stmt::For {
            unroll: true, body, ..
        } => {
            for b in body {
                check_fn_stmt(b, fname)?;
            }
            Ok(())
        }
        Stmt::For { span, .. } => Err(ScriptError::at(
            *span,
            format!("function `{fname}` may not contain runtime `for`; use `parfor`"),
        )),
        Stmt::If { span, .. }
        | Stmt::Print { span, .. }
        | Stmt::Checkpoint { span, .. }
        | Stmt::Evict { span, .. } => Err(ScriptError::at(
            *span,
            format!("function `{fname}` bodies allow only assignments and `parfor`"),
        )),
    }
}

/// Substitutes a `parfor` loop variable with a literal throughout a
/// statement (compile-time unrolling).
fn subst_stmt(s: &Stmt, var: &str, v: f64) -> Stmt {
    let e = |x: &Expr| subst_expr(x, var, v);
    match s {
        Stmt::Assign { name, expr, span } => Stmt::Assign {
            name: name.clone(),
            expr: e(expr),
            span: *span,
        },
        Stmt::For {
            var: lv,
            seq,
            body,
            unroll,
            span,
        } => {
            // Inner shadowing of the same name stops substitution.
            let seq = match seq {
                SeqSpec::List(xs) => SeqSpec::List(xs.iter().map(&e).collect()),
                SeqSpec::Range(a, b) => SeqSpec::Range(Box::new(e(a)), Box::new(e(b))),
            };
            let body = if lv == var {
                body.clone()
            } else {
                body.iter().map(|s| subst_stmt(s, var, v)).collect()
            };
            Stmt::For {
                var: lv.clone(),
                seq,
                body,
                unroll: *unroll,
                span: *span,
            }
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            span,
        } => Stmt::If {
            cond: e(cond),
            then_body: then_body.iter().map(|s| subst_stmt(s, var, v)).collect(),
            else_body: else_body.iter().map(|s| subst_stmt(s, var, v)).collect(),
            span: *span,
        },
        other => other.clone(),
    }
}

fn subst_expr(x: &Expr, var: &str, v: f64) -> Expr {
    match x {
        Expr::Var(name, span) if name == var => Expr::Num(v, *span),
        Expr::Num(..) | Expr::Var(..) => x.clone(),
        Expr::Neg(a, span) => Expr::Neg(Box::new(subst_expr(a, var, v)), *span),
        Expr::Binary { op, lhs, rhs, span } => Expr::Binary {
            op: *op,
            lhs: Box::new(subst_expr(lhs, var, v)),
            rhs: Box::new(subst_expr(rhs, var, v)),
            span: *span,
        },
        Expr::Call { name, args, span } => Expr::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| match a {
                    Arg::Expr(e) => Arg::Expr(subst_expr(e, var, v)),
                    s => s.clone(),
                })
                .collect(),
            span: *span,
        },
    }
}

/// Folds a binary op over two compile-time constants (plain f64
/// arithmetic — bit-identical to what the Rust builder computes).
fn fold(op: BinOp, a: f64, b: f64) -> Option<f64> {
    Some(match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::Pow => a.powf(b),
        BinOp::MatMul => return None,
        BinOp::Lt => (a < b) as u8 as f64,
        BinOp::Gt => (a > b) as u8 as f64,
        BinOp::Le => (a <= b) as u8 as f64,
        BinOp::Ge => (a >= b) as u8 as f64,
        BinOp::Eq => (a == b) as u8 as f64,
        BinOp::Ne => (a != b) as u8 as f64,
    })
}

fn elementwise_op(op: BinOp) -> BinaryOp {
    match op {
        BinOp::Add => BinaryOp::Add,
        BinOp::Sub => BinaryOp::Sub,
        BinOp::Mul => BinaryOp::Mul,
        BinOp::Div => BinaryOp::Div,
        BinOp::Pow => BinaryOp::Pow,
        BinOp::Lt => BinaryOp::Less,
        BinOp::Gt => BinaryOp::Greater,
        BinOp::Le => BinaryOp::LessEq,
        BinOp::Ge => BinaryOp::GreaterEq,
        BinOp::Eq => BinaryOp::Equal,
        BinOp::Ne => BinaryOp::NotEqual,
        BinOp::MatMul => unreachable!("matmul handled separately"),
    }
}

fn unary_op(name: &str) -> UnaryOp {
    match name {
        "exp" => UnaryOp::Exp,
        "log" => UnaryOp::Log,
        "sqrt" => UnaryOp::Sqrt,
        "abs" => UnaryOp::Abs,
        "round" => UnaryOp::Round,
        "floor" => UnaryOp::Floor,
        "ceil" => UnaryOp::Ceil,
        "relu" => UnaryOp::Relu,
        "sigmoid" => UnaryOp::Sigmoid,
        "tanh" => UnaryOp::Tanh,
        "sign" => UnaryOp::Sign,
        other => unreachable!("not a unary builtin: {other}"),
    }
}

fn agg_op(name: &str) -> AggOp {
    match name {
        "sum" => AggOp::Sum,
        "mean" => AggOp::Mean,
        "min" => AggOp::Min,
        "max" => AggOp::Max,
        "var" => AggOp::Var,
        "sumsq" => AggOp::SumSq,
        other => unreachable!("not an agg builtin: {other}"),
    }
}

/// Result type when one side of an elementwise op is a scalar.
fn result_ty_scalar(t: Ty, _op: BinOp) -> Ty {
    t
}

fn unify_elementwise(l: Ty, r: Ty, op: BinOp, span: Span) -> Result<Ty> {
    Ok(match (l, r) {
        (Ty::Scalar, Ty::Scalar) => Ty::Scalar,
        (Ty::Matrix(r1, c1), Ty::Scalar) => Ty::Matrix(r1, c1),
        (Ty::Scalar, Ty::Matrix(r1, c1)) => Ty::Matrix(r1, c1),
        (Ty::Matrix(1, 1), Ty::Matrix(r1, c1)) | (Ty::Matrix(r1, c1), Ty::Matrix(1, 1)) => {
            Ty::Matrix(r1, c1)
        }
        (Ty::Matrix(r1, c1), Ty::Matrix(r2, c2)) => {
            // Same broadcast family as `matrix::ops::binary`: exact shape,
            // or a row/column vector against a matching dimension.
            let col_bcast = r1 == r2 && (c1 == 1 || c2 == 1);
            let row_bcast = c1 == c2 && (r1 == 1 || r2 == 1);
            if (r1 != r2 || c1 != c2) && !col_bcast && !row_bcast {
                return Err(ScriptError::at(
                    span,
                    format!(
                        "dimension mismatch: matrix[{r1}x{c1}] {} matrix[{r2}x{c2}]",
                        op.as_str()
                    ),
                ));
            }
            Ty::Matrix(r1.max(r2), c1.max(c2))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn compile(src: &str) -> Result<Compiled> {
        lower(&parse(src)?)
    }

    #[test]
    fn lowers_linreg_shape() {
        let src = "\
X = read(\"d/X\", 40, 4);
y = read(\"d/y\", 40, 1);
for (reg in [0.1, 0.2, 0.3]) {
  G = tsmm(X);
  b = xty(X, y);
  A = G + reg;
  w = solve(A, b);
}
print(w);
";
        let c = compile(src).unwrap();
        assert_eq!(c.reads.len(), 2);
        assert_eq!(c.prints, vec!["w"]);
        assert_eq!(c.program.blocks.len(), 1);
        let Block::For { var, values, body } = &c.program.blocks[0] else {
            panic!("for block expected: {:?}", c.program.blocks)
        };
        assert_eq!(var, "reg");
        assert_eq!(values, &vec![0.1, 0.2, 0.3]);
        let Block::Basic { dag, .. } = &body[0] else {
            panic!()
        };
        // tsmm, xty, binscalar(loop), solve.
        assert_eq!(dag.nodes.len(), 4);
        assert!(matches!(
            dag.nodes[2].kind,
            OpKind::BinaryScalar {
                scalar: ScalarRef::Loop(_),
                ..
            }
        ));
        assert_eq!(c.node_count(), 4);
    }

    #[test]
    fn parfor_unrolls_and_folds() {
        let src = "\
X = read(\"d/X\", 4, 4);
parfor (i in seq(0, 1)) {
  a = i / 2;
  Y = X * a;
}
print(Y);
";
        let c = compile(src).unwrap();
        let Block::Basic { dag, .. } = &c.program.blocks[0] else {
            panic!()
        };
        // Two unrolled iterations: Literal(a) + Binary(X, a) each.
        assert_eq!(dag.nodes.len(), 4);
        assert!(matches!(dag.nodes[0].kind, OpKind::Literal(v) if v == 0.0));
        assert!(matches!(dag.nodes[2].kind, OpKind::Literal(v) if v == 0.5));
        assert!(matches!(dag.nodes[1].kind, OpKind::Binary(BinaryOp::Mul)));
    }

    #[test]
    fn reassignment_gets_versioned_names_with_final_alias() {
        let src = "\
X = read(\"d/X\", 4, 4);
Y = X * 2;
Y = Y + 1;
Z = Y * Y;
print(Z);
";
        let c = compile(src).unwrap();
        let Block::Basic { dag, .. } = &c.program.blocks[0] else {
            panic!()
        };
        assert_eq!(dag.nodes[0].outputs, vec!["Y".to_string()]);
        // The second Y gets a versioned primary name plus the public
        // alias appended at flush.
        assert!(dag.nodes[1].outputs[0].starts_with("Y__v"));
        assert!(dag.nodes[1].outputs.contains(&"Y".to_string()));
        // Z consumes the *node* of the latest version, not the name.
        assert_eq!(
            dag.nodes[2].inputs,
            vec![Operand::Node(1), Operand::Node(1)]
        );
    }

    #[test]
    fn function_inlining_renames_locals() {
        let src = "\
function scale(M, f) { S = M * f; return(S); }
X = read(\"d/X\", 4, 4);
A = scale(X, 2);
B = scale(X, 3);
print(A);
print(B);
";
        let c = compile(src).unwrap();
        let Block::Basic { dag, .. } = &c.program.blocks[0] else {
            panic!()
        };
        // Constant param → BinaryScalar{Const}; locals renamed per call.
        assert!(matches!(
            &dag.nodes[0].kind,
            OpKind::BinaryScalar {
                scalar: ScalarRef::Const(v),
                ..
            } if *v == 2.0
        ));
        assert!(dag.nodes[0].outputs[0].starts_with("__f1_"));
        assert!(!dag.nodes[0].outputs.contains(&"A".to_string()));
        // A/B are aliases added by the assignment.
        assert!(dag.nodes[1].outputs.contains(&"A".to_string()));
    }

    #[test]
    fn type_errors_carry_spans() {
        let e = compile("X = read(\"d/X\", 4, 3);\nY = read(\"d/Y\", 5, 3);\nZ = X %*% Y;\n")
            .unwrap_err();
        assert_eq!(e.span.line, 3);
        assert!(e.message.contains("dimension mismatch"), "{}", e.message);

        let e = compile("x = y + 1;").unwrap_err();
        assert!(e.message.contains("unknown variable `y`"));
        assert_eq!((e.span.line, e.span.col), (1, 5));

        let e = compile("X = read(\"d/X\", 4, 3);\nZ = X + read(\"d/Y\", 4, 3);\n").unwrap_err();
        assert!(e.message.contains("top-level assignment"), "{}", e.message);
    }

    #[test]
    fn if_lowering_produces_cond_block() {
        let src = "\
X = read(\"d/X\", 3, 3);
s = sum(X);
if (s > 1) { Y = X * 2; } else { Y = X * 3; }
print(Y);
";
        let c = compile(src).unwrap();
        assert!(c
            .program
            .blocks
            .iter()
            .any(|b| matches!(b, Block::If { cond_var, .. } if cond_var.starts_with("__cond"))));
    }

    #[test]
    fn checkpoint_and_evict_get_their_own_blocks() {
        let src = "\
X = read(\"d/X\", 3, 3);
Y = X * 2;
checkpoint(Y);
evict(0.5);
Z = Y + 1;
print(Z);
";
        let c = compile(src).unwrap();
        assert_eq!(c.program.blocks.len(), 4);
        let Block::Basic { dag, .. } = &c.program.blocks[1] else {
            panic!()
        };
        assert!(matches!(dag.nodes[0].kind, OpKind::Checkpoint));
        let Block::Basic { dag, .. } = &c.program.blocks[2] else {
            panic!()
        };
        assert!(matches!(dag.nodes[0].kind, OpKind::Evict(f) if f == 0.5));
    }

    #[test]
    fn duplicate_read_var_rejected() {
        let e = compile("X = read(\"a\", 2, 2);\nX = read(\"b\", 2, 2);\n").unwrap_err();
        assert!(e.message.contains("read twice"));
        assert_eq!(e.span.line, 2);
    }
}
