//! Recursive-descent parser producing the [`ast::Script`] tree. Operator
//! precedence (loosest to tightest): comparisons, `+ -`, `* /`, `%*%`,
//! unary `-`, `^`.

use crate::ast::{Arg, BinOp, Expr, FuncDef, Script, SeqSpec, Stmt};
use crate::lexer::{tokenize, Tok, Token};
use crate::{Result, ScriptError, Span};

/// Parses a whole script.
pub fn parse(src: &str) -> Result<Script> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut script = Script::default();
    while !p.at(&Tok::Eof) {
        if p.at_kw("function") {
            script.funcs.push(p.funcdef()?);
        } else {
            script.stmts.push(p.stmt()?);
        }
    }
    Ok(script)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn span(&self) -> Span {
        self.peek().span
    }

    fn at(&self, t: &Tok) -> bool {
        &self.peek().tok == t
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s == kw)
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        self.pos += 1;
        t
    }

    fn eat(&mut self, t: &Tok, what: &str) -> Result<Token> {
        if self.at(t) {
            Ok(self.bump())
        } else {
            Err(ScriptError::at(
                self.span(),
                format!("expected {what}, found {}", self.peek().tok.describe()),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span)> {
        let span = self.span();
        match self.bump().tok {
            Tok::Ident(s) => Ok((s, span)),
            other => Err(ScriptError::at(
                span,
                format!("expected {what}, found {}", other.describe()),
            )),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn funcdef(&mut self) -> Result<FuncDef> {
        let span = self.span();
        self.bump(); // function
        let (name, _) = self.ident("function name")?;
        self.eat(&Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.at(&Tok::RParen) {
            loop {
                params.push(self.ident("parameter name")?.0);
                if self.at(&Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat(&Tok::RParen, "`)`")?;
        self.eat(&Tok::LBrace, "`{`")?;
        let mut body = Vec::new();
        loop {
            if self.at_kw("return") {
                break;
            }
            if self.at(&Tok::RBrace) || self.at(&Tok::Eof) {
                return Err(ScriptError::at(
                    self.span(),
                    format!("function `{name}` must end with `return(expr);`"),
                ));
            }
            body.push(self.stmt()?);
        }
        self.bump(); // return
        self.eat(&Tok::LParen, "`(`")?;
        let ret = self.expr()?;
        self.eat(&Tok::RParen, "`)`")?;
        self.eat(&Tok::Semi, "`;`")?;
        self.eat(&Tok::RBrace, "`}`")?;
        Ok(FuncDef {
            name,
            params,
            body,
            ret,
            span,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.eat(&Tok::LBrace, "`{`")?;
        let mut body = Vec::new();
        while !self.at(&Tok::RBrace) {
            if self.at(&Tok::Eof) {
                return Err(ScriptError::at(self.span(), "unclosed `{` block"));
            }
            body.push(self.stmt()?);
        }
        self.bump();
        Ok(body)
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let span = self.span();
        if self.at_kw("for") || self.at_kw("parfor") {
            let unroll = self.at_kw("parfor");
            self.bump();
            self.eat(&Tok::LParen, "`(`")?;
            let (var, _) = self.ident("loop variable")?;
            match self.bump().tok {
                Tok::Ident(kw) if kw == "in" => {}
                other => {
                    return Err(ScriptError::at(
                        span,
                        format!("expected `in`, found {}", other.describe()),
                    ))
                }
            }
            let seq = self.seq_spec()?;
            self.eat(&Tok::RParen, "`)`")?;
            let body = self.block()?;
            return Ok(Stmt::For {
                var,
                seq,
                body,
                unroll,
                span,
            });
        }
        if self.at_kw("if") {
            self.bump();
            self.eat(&Tok::LParen, "`(`")?;
            let cond = self.expr()?;
            self.eat(&Tok::RParen, "`)`")?;
            let then_body = self.block()?;
            let else_body = if self.at_kw("else") {
                self.bump();
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_body,
                else_body,
                span,
            });
        }
        if self.at_kw("print") || self.at_kw("checkpoint") {
            let is_print = self.at_kw("print");
            self.bump();
            self.eat(&Tok::LParen, "`(`")?;
            let (name, _) = self.ident("variable name")?;
            self.eat(&Tok::RParen, "`)`")?;
            self.eat(&Tok::Semi, "`;`")?;
            return Ok(if is_print {
                Stmt::Print { name, span }
            } else {
                Stmt::Checkpoint { name, span }
            });
        }
        if self.at_kw("evict") {
            self.bump();
            self.eat(&Tok::LParen, "`(`")?;
            let fspan = self.span();
            let fraction = match self.bump().tok {
                Tok::Num(v) => v,
                other => {
                    return Err(ScriptError::at(
                        fspan,
                        format!("expected fraction literal, found {}", other.describe()),
                    ))
                }
            };
            self.eat(&Tok::RParen, "`)`")?;
            self.eat(&Tok::Semi, "`;`")?;
            return Ok(Stmt::Evict { fraction, span });
        }
        // Plain assignment.
        let (name, span) = self.ident("statement")?;
        self.eat(&Tok::Assign, "`=`")?;
        let expr = self.expr()?;
        self.eat(&Tok::Semi, "`;`")?;
        Ok(Stmt::Assign { name, expr, span })
    }

    fn seq_spec(&mut self) -> Result<SeqSpec> {
        if self.at(&Tok::LBracket) {
            self.bump();
            let mut values = Vec::new();
            loop {
                values.push(self.expr()?);
                if self.at(&Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.eat(&Tok::RBracket, "`]`")?;
            return Ok(SeqSpec::List(values));
        }
        if self.at_kw("seq") {
            self.bump();
            self.eat(&Tok::LParen, "`(`")?;
            let from = self.expr()?;
            self.eat(&Tok::Comma, "`,`")?;
            let to = self.expr()?;
            self.eat(&Tok::RParen, "`)`")?;
            return Ok(SeqSpec::Range(Box::new(from), Box::new(to)));
        }
        Err(ScriptError::at(
            self.span(),
            format!(
                "expected `[v1, v2, ...]` or `seq(from, to)`, found {}",
                self.peek().tok.describe()
            ),
        ))
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let mut lhs = self.addsub()?;
        loop {
            let op = match self.peek().tok {
                Tok::Lt => BinOp::Lt,
                Tok::Gt => BinOp::Gt,
                Tok::Le => BinOp::Le,
                Tok::Ge => BinOp::Ge,
                Tok::EqEq => BinOp::Eq,
                Tok::Ne => BinOp::Ne,
                _ => break,
            };
            let span = self.span();
            self.bump();
            let rhs = self.addsub()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn addsub(&mut self) -> Result<Expr> {
        let mut lhs = self.muldiv()?;
        loop {
            let op = match self.peek().tok {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            let span = self.span();
            self.bump();
            let rhs = self.muldiv()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn muldiv(&mut self) -> Result<Expr> {
        let mut lhs = self.matmul()?;
        loop {
            let op = match self.peek().tok {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => break,
            };
            let span = self.span();
            self.bump();
            let rhs = self.matmul()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn matmul(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        while self.at(&Tok::MatMul) {
            let span = self.span();
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op: BinOp::MatMul,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.at(&Tok::Minus) {
            let span = self.span();
            self.bump();
            let arg = self.unary()?;
            // Fold negation of a literal so `-3` prints back as `-3`.
            if let Expr::Num(v, _) = arg {
                return Ok(Expr::Num(-v, span));
            }
            return Ok(Expr::Neg(Box::new(arg), span));
        }
        self.power()
    }

    fn power(&mut self) -> Result<Expr> {
        let base = self.primary()?;
        if self.at(&Tok::Caret) {
            let span = self.span();
            self.bump();
            let exp = self.unary()?;
            return Ok(Expr::Binary {
                op: BinOp::Pow,
                lhs: Box::new(base),
                rhs: Box::new(exp),
                span,
            });
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<Expr> {
        let span = self.span();
        match self.peek().tok.clone() {
            Tok::Num(v) => {
                self.bump();
                Ok(Expr::Num(v, span))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.eat(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                if self.at(&Tok::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&Tok::RParen) {
                        loop {
                            if let Tok::Str(s) = self.peek().tok.clone() {
                                let sspan = self.span();
                                self.bump();
                                args.push(Arg::Str(s, sspan));
                            } else {
                                args.push(Arg::Expr(self.expr()?));
                            }
                            if self.at(&Tok::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat(&Tok::RParen, "`)`")?;
                    Ok(Expr::Call { name, args, span })
                } else {
                    Ok(Expr::Var(name, span))
                }
            }
            other => Err(ScriptError::at(
                span,
                format!("expected an expression, found {}", other.describe()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_precedence() {
        let s = parse("y = a + b * c %*% d;").unwrap();
        let Stmt::Assign { expr, .. } = &s.stmts[0] else {
            panic!()
        };
        // a + (b * (c %*% d))
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = expr
        else {
            panic!("top is +: {expr:?}")
        };
        let Expr::Binary {
            op: BinOp::Mul,
            rhs: inner,
            ..
        } = rhs.as_ref()
        else {
            panic!("then *")
        };
        assert!(matches!(
            inner.as_ref(),
            Expr::Binary {
                op: BinOp::MatMul,
                ..
            }
        ));
    }

    #[test]
    fn parses_for_if_function() {
        let src = "\
function sq(x) { y = x * x; return(y); }
for (reg in [0.1, 0.2]) { A = G + reg; }
parfor (i in seq(1, 3)) { s = sq(i); }
if (s > 2) { t = s; } else { t = s + 1; }
print(t);
";
        let s = parse(src).unwrap();
        assert_eq!(s.funcs.len(), 1);
        assert_eq!(s.stmts.len(), 4);
        assert!(matches!(&s.stmts[0], Stmt::For { unroll: false, .. }));
        assert!(matches!(&s.stmts[1], Stmt::For { unroll: true, .. }));
        assert!(matches!(&s.stmts[2], Stmt::If { .. }));
        assert!(matches!(&s.stmts[3], Stmt::Print { .. }));
    }

    #[test]
    fn missing_semicolon_error_has_span() {
        let e = parse("x = 1;\ny = 2").unwrap_err();
        assert_eq!((e.span.line, e.span.col), (2, 6));
        assert!(e.message.contains("`;`"));
    }

    #[test]
    fn function_without_return_is_rejected() {
        let e = parse("function f(x) { y = x; }").unwrap_err();
        assert!(e.message.contains("return"));
    }

    #[test]
    fn negative_literals_fold() {
        let s = parse("x = -3;").unwrap();
        let Stmt::Assign { expr, .. } = &s.stmts[0] else {
            panic!()
        };
        assert_eq!(*expr, Expr::Num(-3.0, Span { line: 1, col: 5 }));
    }
}
