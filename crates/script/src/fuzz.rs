//! Structured program fuzzer: generates random *well-typed* scripts from
//! a SplitMix64 stream (the same seeding discipline as sparksim's
//! `FaultPlan` and the latency harness), and shrinks diverging programs
//! by statement removal.
//!
//! Generated programs are self-contained — all matrix sources are seeded
//! `rand(...)` calls, so no external read resolver is needed. Operators
//! are chosen so results stay bounded (relu/sigmoid/tanh/abs, products of
//! [-1, 1] uniforms): every run is deterministic, which is what makes the
//! reuse-on/off, `Paper`/`DelayedHits`, and warm-restart differentials
//! meaningful bit-for-bit.

use crate::ast::Stmt;
use crate::{compile, parse, print_source};

/// SplitMix64 mix (identical constants to `workloads::latency` and
/// sparksim's fault plan).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic decision stream for one generated program.
struct Rng {
    state: u64,
}

impl Rng {
    fn new(seed: u64, program: u64) -> Self {
        Self {
            state: mix(seed ^ mix(program ^ 0x1a7e_5c21)),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.state)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// One-in-`n` chance.
    fn chance(&mut self, n: u64) -> bool {
        self.below(n) == 0
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum VKind {
    Matrix(usize, usize),
    Scalar,
}

struct Gen {
    rng: Rng,
    src: String,
    vars: Vec<(String, VKind)>,
    next_id: u32,
    rand_seed: u64,
}

impl Gen {
    fn fresh(&mut self, prefix: &str) -> String {
        self.next_id += 1;
        format!("{prefix}{}", self.next_id)
    }

    fn matrices(&self) -> Vec<(String, usize, usize)> {
        self.vars
            .iter()
            .filter_map(|(n, k)| match k {
                VKind::Matrix(r, c) => Some((n.clone(), *r, *c)),
                VKind::Scalar => None,
            })
            .collect()
    }

    fn scalars(&self) -> Vec<String> {
        self.vars
            .iter()
            .filter_map(|(n, k)| match k {
                VKind::Scalar => Some(n.clone()),
                VKind::Matrix(..) => None,
            })
            .collect()
    }

    fn pick_matrix(&mut self) -> (String, usize, usize) {
        let ms = self.matrices();
        let i = self.rng.below(ms.len() as u64) as usize;
        ms[i].clone()
    }

    fn emit_rand(&mut self, indent: &str) -> (String, usize, usize) {
        const DIMS: [usize; 4] = [2, 3, 4, 6];
        let r = DIMS[self.rng.below(4) as usize];
        let c = DIMS[self.rng.below(4) as usize];
        let name = self.fresh("m");
        self.rand_seed += 1;
        let seed = self.rand_seed;
        self.src.push_str(&format!(
            "{indent}{name} = rand({r}, {c}, -1, 1, {seed});\n"
        ));
        self.vars.push((name.clone(), VKind::Matrix(r, c)));
        (name, r, c)
    }

    /// A small constant with one decimal digit, in [-1.5, 1.5].
    fn small_const(&mut self) -> String {
        let v = self.rng.below(31) as i64 - 15;
        format!("{}", v as f64 / 10.0)
    }

    /// Emits one statement at `indent`, optionally using `loop_var` as a
    /// runtime scalar. Returns the name it assigned.
    fn emit_stmt(&mut self, indent: &str, loop_var: Option<&str>) -> String {
        let choice = self.rng.below(10);
        match choice {
            // Elementwise binary between matrices of the same shape (via
            // a bounded unary to keep values tame).
            0 | 1 => {
                let (a, r, c) = self.pick_matrix();
                let same: Vec<String> = self
                    .matrices()
                    .into_iter()
                    .filter(|(_, mr, mc)| *mr == r && *mc == c)
                    .map(|(n, _, _)| n)
                    .collect();
                let op = ["+", "-", "*"][self.rng.below(3) as usize];
                let name = self.fresh("m");
                if same.len() > 1 && self.rng.chance(2) {
                    let b = same[self.rng.below(same.len() as u64) as usize].clone();
                    self.src
                        .push_str(&format!("{indent}{name} = {a} {op} {b};\n"));
                } else {
                    let k = self.small_const();
                    self.src
                        .push_str(&format!("{indent}{name} = {a} {op} {k};\n"));
                }
                self.vars.push((name.clone(), VKind::Matrix(r, c)));
                name
            }
            // A %*% t(B) — always shape-compatible when cols match.
            2 => {
                let (a, ar, ac) = self.pick_matrix();
                let compat: Vec<(String, usize, usize)> = self
                    .matrices()
                    .into_iter()
                    .filter(|(_, _, mc)| *mc == ac)
                    .collect();
                let (b, br, _) = compat[self.rng.below(compat.len() as u64) as usize].clone();
                let name = self.fresh("m");
                self.src
                    .push_str(&format!("{indent}{name} = {a} %*% t({b});\n"));
                self.vars.push((name.clone(), VKind::Matrix(ar, br)));
                name
            }
            3 => {
                let (a, _, c) = self.pick_matrix();
                let name = self.fresh("m");
                self.src.push_str(&format!("{indent}{name} = tsmm({a});\n"));
                self.vars.push((name.clone(), VKind::Matrix(c, c)));
                name
            }
            4 => {
                let (a, ar, ac) = self.pick_matrix();
                let compat: Vec<(String, usize, usize)> = self
                    .matrices()
                    .into_iter()
                    .filter(|(_, mr, _)| *mr == ar)
                    .collect();
                let (b, _, bc) = compat[self.rng.below(compat.len() as u64) as usize].clone();
                let name = self.fresh("m");
                self.src
                    .push_str(&format!("{indent}{name} = xty({a}, {b});\n"));
                self.vars.push((name.clone(), VKind::Matrix(ac, bc)));
                name
            }
            5 => {
                let (a, r, c) = self.pick_matrix();
                let f = ["relu", "abs", "sigmoid", "tanh"][self.rng.below(4) as usize];
                let name = self.fresh("m");
                self.src.push_str(&format!("{indent}{name} = {f}({a});\n"));
                self.vars.push((name.clone(), VKind::Matrix(r, c)));
                name
            }
            6 => {
                let (a, r, c) = self.pick_matrix();
                let name = self.fresh("m");
                self.src.push_str(&format!("{indent}{name} = t({a});\n"));
                self.vars.push((name.clone(), VKind::Matrix(c, r)));
                name
            }
            7 => {
                let (a, _, _) = self.pick_matrix();
                let f = ["sum", "mean", "var", "sumsq"][self.rng.below(4) as usize];
                let name = self.fresh("s");
                self.src.push_str(&format!("{indent}{name} = {f}({a});\n"));
                self.vars.push((name.clone(), VKind::Scalar));
                name
            }
            8 => {
                let (a, r, c) = self.pick_matrix();
                if r >= 3 && self.rng.chance(2) {
                    let cut = 1 + self.rng.below(r as u64 - 1) as usize;
                    let name = self.fresh("m");
                    self.src
                        .push_str(&format!("{indent}{name} = slice_rows({a}, 0, {cut});\n"));
                    self.vars.push((name.clone(), VKind::Matrix(cut, c)));
                    name
                } else {
                    let name = self.fresh("m");
                    let k = self.small_const();
                    self.src.push_str(&format!("{indent}{name} = {a} * {k};\n"));
                    self.vars.push((name.clone(), VKind::Matrix(r, c)));
                    name
                }
            }
            // Scalar arithmetic, pulling in the loop variable when one is
            // in scope (exercises ScalarRef::Loop and runtime scalars).
            _ => {
                let (a, r, c) = self.pick_matrix();
                let name = self.fresh("m");
                let s = match loop_var {
                    Some(v) if self.rng.chance(2) => v.to_string(),
                    _ => {
                        let ss = self.scalars();
                        if !ss.is_empty() && self.rng.chance(2) {
                            ss[self.rng.below(ss.len() as u64) as usize].clone()
                        } else {
                            self.small_const()
                        }
                    }
                };
                let op = ["*", "+"][self.rng.below(2) as usize];
                self.src
                    .push_str(&format!("{indent}{name} = {a} {op} {s};\n"));
                self.vars.push((name.clone(), VKind::Matrix(r, c)));
                name
            }
        }
    }
}

/// Generates the `index`-th well-typed program of `seed`'s stream. The
/// result always compiles (debug-asserted) and prints at least one sink.
pub fn gen_program(seed: u64, index: u64) -> String {
    let mut g = Gen {
        rng: Rng::new(seed, index),
        src: String::new(),
        vars: Vec::new(),
        next_id: 0,
        rand_seed: seed % 1000 + index * 17,
    };
    g.src
        .push_str(&format!("# fuzz seed={seed} index={index}\n"));
    let bases = 2 + g.rng.below(2);
    for _ in 0..bases {
        g.emit_rand("");
    }
    let stmts = 3 + g.rng.below(7);
    for _ in 0..stmts {
        match g.rng.below(8) {
            // Runtime for-loop: body uses the loop variable.
            0 => {
                let v = g.fresh("r");
                let a = g.small_const();
                let b = g.small_const();
                g.src.push_str(&format!("for ({v} in [{a}, {b}]) {{\n"));
                let inner = 1 + g.rng.below(2);
                for _ in 0..inner {
                    g.emit_stmt("  ", Some(&v));
                }
                g.src.push_str("}\n");
            }
            // Unrolled parfor.
            1 => {
                let v = g.fresh("i");
                g.src.push_str(&format!("parfor ({v} in seq(1, 2)) {{\n"));
                g.emit_stmt("  ", Some(&v));
                g.src.push_str("}\n");
            }
            // Branch on an aggregate.
            2 => {
                let (a, r, c) = g.pick_matrix();
                let cond = g.fresh("s");
                g.src.push_str(&format!("{cond} = mean({a});\n"));
                g.vars.push((cond.clone(), VKind::Scalar));
                let name = g.fresh("m");
                let k1 = g.small_const();
                let k2 = g.small_const();
                g.src.push_str(&format!(
                    "if ({cond} > 0) {{\n  {name} = {a} * {k1};\n}} else {{\n  {name} = {a} + {k2};\n}}\n"
                ));
                g.vars.push((name, VKind::Matrix(r, c)));
            }
            _ => {
                g.emit_stmt("", None);
            }
        }
    }
    // Publish 1-3 sinks: always the most recent matrix, sometimes more.
    let ms = g.matrices();
    let last = ms.last().expect("bases guarantee a matrix").0.clone();
    let mut printed = vec![last.clone()];
    g.src.push_str(&format!("print({last});\n"));
    for _ in 0..g.rng.below(3) {
        let pick = ms[g.rng.below(ms.len() as u64) as usize].0.clone();
        if !printed.contains(&pick) {
            g.src.push_str(&format!("print({pick});\n"));
            printed.push(pick);
        }
    }
    debug_assert!(
        compile(&g.src).is_ok(),
        "generator emitted invalid:\n{}",
        g.src
    );
    g.src
}

/// Shrinks a diverging program by statement removal: repeatedly deletes
/// one statement (anywhere in the tree), keeping the deletion whenever
/// the program still compiles and `still_diverges` holds, until a
/// fixpoint. Returns the minimized canonical source.
pub fn minimize(src: &str, mut still_diverges: impl FnMut(&str) -> bool) -> String {
    let Ok(mut script) = parse(src) else {
        return src.to_string();
    };
    loop {
        let total = count_stmts(&script.stmts);
        let mut shrunk = false;
        for i in 0..total {
            let mut candidate = script.clone();
            remove_nth(&mut candidate.stmts, &mut { i });
            let printed = print_source(&candidate);
            if compile(&printed).is_ok() && still_diverges(&printed) {
                script = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return print_source(&script);
        }
    }
}

fn count_stmts(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| {
            1 + match s {
                Stmt::For { body, .. } => count_stmts(body),
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => count_stmts(then_body) + count_stmts(else_body),
                _ => 0,
            }
        })
        .sum()
}

/// Removes the `n`-th statement in pre-order; decrements `n` in place.
fn remove_nth(stmts: &mut Vec<Stmt>, n: &mut usize) -> bool {
    let mut i = 0;
    while i < stmts.len() {
        if *n == 0 {
            stmts.remove(i);
            return true;
        }
        *n -= 1;
        let removed = match &mut stmts[i] {
            Stmt::For { body, .. } => remove_nth(body, n),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => remove_nth(then_body, n) || remove_nth(else_body, n),
            _ => false,
        };
        if removed {
            return true;
        }
        i += 1;
    }
    false
}

/// Convenience: parses + lowers, used by harnesses to validate candidates.
pub fn compiles(src: &str) -> bool {
    compile(src).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_compile_and_are_deterministic() {
        for seed in [42u64, 1337] {
            for index in 0..50 {
                let a = gen_program(seed, index);
                let b = gen_program(seed, index);
                assert_eq!(a, b, "generation must be deterministic");
                let c = compile(&a).unwrap_or_else(|e| panic!("{e}\n{a}"));
                assert!(!c.prints.is_empty());
                assert!(c.node_count() > 0);
            }
        }
    }

    #[test]
    fn different_indices_differ() {
        let a = gen_program(42, 0);
        let b = gen_program(42, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn minimize_shrinks_to_the_essential_statement() {
        let src = "\
m1 = rand(3, 3, -1, 1, 1);
m2 = rand(3, 3, -1, 1, 2);
m3 = m1 + m2;
m4 = tsmm(m2);
print(m4);
";
        // Oracle: "diverges" whenever a tsmm statement survives.
        let out = minimize(src, |s| s.contains("tsmm"));
        assert!(out.contains("tsmm"));
        assert!(!out.contains("m1"), "unrelated statements removed:\n{out}");
    }

    #[test]
    fn roundtrip_holds_for_generated_programs() {
        for index in 0..20 {
            let src = gen_program(42, index);
            let ast1 = crate::parse(&src).unwrap();
            let printed = crate::print_source(&ast1);
            let ast2 = crate::parse(&printed).unwrap();
            let p1 = crate::lower::lower(&ast1).unwrap();
            let p2 = crate::lower::lower(&ast2).unwrap();
            assert_eq!(
                crate::canonical_debug(&p1.program),
                crate::canonical_debug(&p2.program)
            );
        }
    }
}
