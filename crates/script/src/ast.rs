//! Typed abstract syntax tree for the script language. Spans point at the
//! first character of each construct; the lowering pass annotates every
//! expression with a [`Ty`] as it walks the tree.

use crate::Span;

/// Static type of an expression: a scalar or a matrix of known dims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// A runtime scalar (f64).
    Scalar,
    /// A dense matrix with compile-time-known dims.
    Matrix(usize, usize),
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ty::Scalar => write!(f, "scalar"),
            Ty::Matrix(r, c) => write!(f, "matrix[{r}x{c}]"),
        }
    }
}

/// Binary operators at the expression level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*` (elementwise).
    Mul,
    /// `/` (elementwise).
    Div,
    /// `^` (elementwise power).
    Pow,
    /// `%*%` matrix multiply.
    MatMul,
    /// `<`.
    Lt,
    /// `>`.
    Gt,
    /// `<=`.
    Le,
    /// `>=`.
    Ge,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
}

impl BinOp {
    /// Source form of the operator.
    pub fn as_str(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "^",
            BinOp::MatMul => "%*%",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
        }
    }
}

/// A call argument: an expression or a string literal (used by `read` and
/// the directional aggregations, e.g. `sum(X, "col")`).
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// Expression argument.
    Expr(Expr),
    /// String literal argument.
    Str(String, Span),
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64, Span),
    /// Variable reference.
    Var(String, Span),
    /// Unary negation.
    Neg(Box<Expr>, Span),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Position of the operator.
        span: Span,
    },
    /// Builtin or user-function call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Arg>,
        /// Position of the callee.
        span: Span,
    },
}

impl Expr {
    /// The span of the expression's anchor token.
    pub fn span(&self) -> Span {
        match self {
            Expr::Num(_, s) | Expr::Var(_, s) | Expr::Neg(_, s) => *s,
            Expr::Binary { span, .. } | Expr::Call { span, .. } => *span,
        }
    }
}

/// Loop iteration domain.
#[derive(Debug, Clone, PartialEq)]
pub enum SeqSpec {
    /// Explicit value list `[e1, e2, ...]`.
    List(Vec<Expr>),
    /// `seq(from, to)` — inclusive integer-stepped range.
    Range(Box<Expr>, Box<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `name = expr;`
    Assign {
        /// Target variable.
        name: String,
        /// Right-hand side.
        expr: Expr,
        /// Position of the target.
        span: Span,
    },
    /// `for (v in ...) { ... }` (runtime loop) or
    /// `parfor (v in ...) { ... }` (compile-time unrolled).
    For {
        /// Loop variable.
        var: String,
        /// Iteration domain.
        seq: SeqSpec,
        /// Body.
        body: Vec<Stmt>,
        /// Unroll at compile time (`parfor`).
        unroll: bool,
        /// Position of the keyword.
        span: Span,
    },
    /// `if (cond) { ... } [else { ... }]`
    If {
        /// Scalar condition.
        cond: Expr,
        /// Taken when non-zero.
        then_body: Vec<Stmt>,
        /// Taken when zero.
        else_body: Vec<Stmt>,
        /// Position of the keyword.
        span: Span,
    },
    /// `print(name);` — marks a result sink.
    Print {
        /// Variable to publish.
        name: String,
        /// Position.
        span: Span,
    },
    /// `checkpoint(name);` — persists the variable (§5.2).
    Checkpoint {
        /// Variable to persist.
        name: String,
        /// Position.
        span: Span,
    },
    /// `evict(fraction);` — GPU cache cleanup.
    Evict {
        /// Fraction in [0, 1].
        fraction: f64,
        /// Position.
        span: Span,
    },
}

/// A user function: straight-line body plus a return expression. Inlined
/// at every call site by the lowering pass.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Formal parameter names.
    pub params: Vec<String>,
    /// Body statements (assignments and `parfor` only).
    pub body: Vec<Stmt>,
    /// Returned expression.
    pub ret: Expr,
    /// Position of the `function` keyword.
    pub span: Span,
}

/// A whole script: function definitions plus top-level statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Script {
    /// Functions (inlined at call sites).
    pub funcs: Vec<FuncDef>,
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}
