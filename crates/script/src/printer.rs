//! Canonical pretty-printer. Binary expressions are fully parenthesized
//! so the printed form reparses to the same tree regardless of
//! precedence, which is what makes `parse → print → parse` round-trip to
//! an identical lowered program (and identical interned lineage).

use crate::ast::{Arg, Expr, FuncDef, Script, SeqSpec, Stmt};
use std::fmt::Write;

/// Prints a script back to source text.
pub fn print(script: &Script) -> String {
    let mut out = String::new();
    for f in &script.funcs {
        func(&mut out, f);
    }
    for s in &script.stmts {
        stmt(&mut out, s, 0);
    }
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn func(out: &mut String, f: &FuncDef) {
    let _ = writeln!(out, "function {}({}) {{", f.name, f.params.join(", "));
    for s in &f.body {
        stmt(out, s, 1);
    }
    indent(out, 1);
    let _ = writeln!(out, "return({});", expr(&f.ret));
    out.push_str("}\n");
}

fn stmt(out: &mut String, s: &Stmt, level: usize) {
    indent(out, level);
    match s {
        Stmt::Assign { name, expr: e, .. } => {
            let _ = writeln!(out, "{name} = {};", expr(e));
        }
        Stmt::For {
            var,
            seq,
            body,
            unroll,
            ..
        } => {
            let kw = if *unroll { "parfor" } else { "for" };
            let _ = writeln!(out, "{kw} ({var} in {}) {{", seq_spec(seq));
            for b in body {
                stmt(out, b, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            let _ = writeln!(out, "if ({}) {{", expr(cond));
            for b in then_body {
                stmt(out, b, level + 1);
            }
            indent(out, level);
            if else_body.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for b in else_body {
                    stmt(out, b, level + 1);
                }
                indent(out, level);
                out.push_str("}\n");
            }
        }
        Stmt::Print { name, .. } => {
            let _ = writeln!(out, "print({name});");
        }
        Stmt::Checkpoint { name, .. } => {
            let _ = writeln!(out, "checkpoint({name});");
        }
        Stmt::Evict { fraction, .. } => {
            let _ = writeln!(out, "evict({});", num(*fraction));
        }
    }
}

fn seq_spec(seq: &SeqSpec) -> String {
    match seq {
        SeqSpec::List(values) => {
            let items: Vec<String> = values.iter().map(expr).collect();
            format!("[{}]", items.join(", "))
        }
        SeqSpec::Range(a, b) => format!("seq({}, {})", expr(a), expr(b)),
    }
}

fn expr(e: &Expr) -> String {
    match e {
        Expr::Num(v, _) => num(*v),
        Expr::Var(name, _) => name.clone(),
        Expr::Neg(a, _) => format!("(-{})", expr(a)),
        Expr::Binary { op, lhs, rhs, .. } => {
            format!("({} {} {})", expr(lhs), op.as_str(), expr(rhs))
        }
        Expr::Call { name, args, .. } => {
            let items: Vec<String> = args
                .iter()
                .map(|a| match a {
                    Arg::Expr(e) => expr(e),
                    Arg::Str(s, _) => format!("\"{s}\""),
                })
                .collect();
            format!("{name}({})", items.join(", "))
        }
    }
}

/// Prints an f64 so it reparses to the same bits. Rust's `Display`
/// produces the shortest round-tripping decimal; negative values are
/// parenthesized in expression position by the caller when needed.
fn num(v: f64) -> String {
    if v == f64::INFINITY {
        return "1e999".to_string();
    }
    if v == f64::NEG_INFINITY {
        return "-1e999".to_string();
    }
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn roundtrip_reparses_to_identical_lowering() {
        let src = "\
function scale(M, f) { S = M * f; return(S); }
X = read(\"d/X\", 6, 3);
y = read(\"d/y\", 6, 1);
for (reg in [0.1, 0.2]) {
  G = tsmm(X);
  A = G + reg;
  w = solve(A, xty(X, y));
}
parfor (i in seq(1, 2)) { Z = scale(X, i); }
s = sum(Z);
if (s > 0) { out = Z * 2; } else { out = Z; }
print(w);
print(out);
";
        let ast1 = parse(src).unwrap();
        let printed = print(&ast1);
        let ast2 = parse(&printed).unwrap();
        let p1 = crate::lower::lower(&ast1).unwrap();
        let p2 = crate::lower::lower(&ast2).unwrap();
        assert_eq!(
            crate::canonical_debug(&p1.program),
            crate::canonical_debug(&p2.program),
            "printed:\n{printed}"
        );
        assert_eq!(p1.reads, p2.reads);
        assert_eq!(p1.prints, p2.prints);
        // Printing is a fixpoint.
        assert_eq!(printed, print(&ast2));
    }

    #[test]
    fn negative_numbers_roundtrip() {
        let src = "x = -3.5;\ny = (0 - x) * -2;\n";
        let ast1 = parse(src).unwrap();
        let printed = print(&ast1);
        let ast2 = parse(&printed).unwrap();
        let p1 = crate::lower::lower(&ast1).unwrap();
        let p2 = crate::lower::lower(&ast2).unwrap();
        assert_eq!(
            crate::canonical_debug(&p1.program),
            crate::canonical_debug(&p2.program)
        );
    }
}
