//! memphis-script: a DML-like text frontend for the MEMPHIS engine
//! (ROADMAP item 5). A lexer → recursive-descent parser → typed AST →
//! lowering pass emits the engine's block/DAG [`Program`] representation,
//! so workloads are *data* rather than Rust builder code. A pretty-printer
//! guarantees `parse → print → parse` round-trips to the same program (and
//! therefore the same interned `LineageId`s at runtime), and a seeded
//! structured fuzzer ([`fuzz`]) generates random well-typed programs for
//! differential testing of the whole reuse/eviction/recovery stack.
//!
//! Grammar, lowering rules, and the fuzzer's shrink strategy are
//! documented in DESIGN.md §12.
//!
//! [`Program`]: memphis_engine::plan::Program

pub mod ast;
pub mod fuzz;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod printer;

use std::fmt;

pub use lower::{Compiled, ReadSpec};

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A parse, type, or lowering error with the source position it points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// Human-readable description.
    pub message: String,
    /// Where in the source the error was detected.
    pub span: Span,
}

impl ScriptError {
    /// Creates an error at `span`.
    pub fn at(span: Span, message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ScriptError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, ScriptError>;

/// Parses source text into an AST.
pub fn parse(src: &str) -> Result<ast::Script> {
    parser::parse(src)
}

/// Compiles source text all the way to an executable [`Compiled`] program
/// (parse + typecheck + lowering).
pub fn compile(src: &str) -> Result<Compiled> {
    let script = parse(src)?;
    lower::lower(&script)
}

/// Pretty-prints an AST back to canonical source text.
pub fn print_source(script: &ast::Script) -> String {
    printer::print(script)
}

/// A deterministic textual form of a lowered program, suitable for
/// equality assertions: block structure in order, then `var_dims` sorted
/// by name (the raw `Debug` form iterates a `HashMap`, whose order is
/// unstable across runs).
pub fn canonical_debug(p: &memphis_engine::plan::Program) -> String {
    let mut dims: Vec<_> = p.var_dims.iter().collect();
    dims.sort();
    format!("{:?} dims={:?}", p.blocks, dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_carries_line_and_col() {
        let e = ScriptError::at(Span { line: 3, col: 7 }, "boom");
        assert_eq!(e.to_string(), "line 3:7: boom");
    }
}
