//! Tokenizer for the DML-like script language. Every token carries the
//! 1-based line:col position of its first character so parse and type
//! errors point into the source.

use crate::{Result, ScriptError, Span};

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (always stored as f64).
    Num(f64),
    /// Double-quoted string literal.
    Str(String),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `;`.
    Semi,
    /// `=`.
    Assign,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `^`.
    Caret,
    /// `%*%` matrix multiply.
    MatMul,
    /// `<`.
    Lt,
    /// `>`.
    Gt,
    /// `<=`.
    Le,
    /// `>=`.
    Ge,
    /// `==`.
    EqEq,
    /// `!=`.
    Ne,
    /// End of input.
    Eof,
}

impl Tok {
    /// Short human-readable name used in error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Num(v) => format!("number `{v}`"),
            Tok::Str(s) => format!("string \"{s}\""),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Semi => "`;`".into(),
            Tok::Assign => "`=`".into(),
            Tok::Plus => "`+`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Star => "`*`".into(),
            Tok::Slash => "`/`".into(),
            Tok::Caret => "`^`".into(),
            Tok::MatMul => "`%*%`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::EqEq => "`==`".into(),
            Tok::Ne => "`!=`".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub tok: Tok,
    /// Position of the first character.
    pub span: Span,
}

/// Tokenizes the whole source. `#` starts a comment to end of line.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    let n = chars.len();
    macro_rules! push {
        ($tok:expr, $span:expr, $len:expr) => {{
            out.push(Token {
                tok: $tok,
                span: $span,
            });
            i += $len;
            col += $len as u32;
        }};
    }
    while i < n {
        let c = chars[i];
        let span = Span { line, col };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '#' => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => push!(Tok::LParen, span, 1),
            ')' => push!(Tok::RParen, span, 1),
            '{' => push!(Tok::LBrace, span, 1),
            '}' => push!(Tok::RBrace, span, 1),
            '[' => push!(Tok::LBracket, span, 1),
            ']' => push!(Tok::RBracket, span, 1),
            ',' => push!(Tok::Comma, span, 1),
            ';' => push!(Tok::Semi, span, 1),
            '+' => push!(Tok::Plus, span, 1),
            '-' => push!(Tok::Minus, span, 1),
            '*' => push!(Tok::Star, span, 1),
            '/' => push!(Tok::Slash, span, 1),
            '^' => push!(Tok::Caret, span, 1),
            '%' => {
                if i + 2 < n && chars[i + 1] == '*' && chars[i + 2] == '%' {
                    push!(Tok::MatMul, span, 3);
                } else {
                    return Err(ScriptError::at(span, "expected `%*%`"));
                }
            }
            '<' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    push!(Tok::Le, span, 2);
                } else {
                    push!(Tok::Lt, span, 1);
                }
            }
            '>' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    push!(Tok::Ge, span, 2);
                } else {
                    push!(Tok::Gt, span, 1);
                }
            }
            '=' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    push!(Tok::EqEq, span, 2);
                } else {
                    push!(Tok::Assign, span, 1);
                }
            }
            '!' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    push!(Tok::Ne, span, 2);
                } else {
                    return Err(ScriptError::at(span, "expected `!=`"));
                }
            }
            '"' => {
                let mut s = String::new();
                let mut j = i + 1;
                while j < n && chars[j] != '"' {
                    if chars[j] == '\n' {
                        return Err(ScriptError::at(span, "unterminated string literal"));
                    }
                    s.push(chars[j]);
                    j += 1;
                }
                if j >= n {
                    return Err(ScriptError::at(span, "unterminated string literal"));
                }
                let len = j + 1 - i;
                out.push(Token {
                    tok: Tok::Str(s),
                    span,
                });
                i += len;
                col += len as u32;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let mut j = i;
                let mut seen_dot = false;
                let mut seen_exp = false;
                while j < n {
                    let d = chars[j];
                    if d.is_ascii_digit() {
                        j += 1;
                    } else if d == '.' && !seen_dot && !seen_exp {
                        seen_dot = true;
                        j += 1;
                    } else if (d == 'e' || d == 'E') && !seen_exp && j > i {
                        seen_exp = true;
                        j += 1;
                        if j < n && (chars[j] == '+' || chars[j] == '-') {
                            j += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text: String = chars[i..j].iter().collect();
                let v: f64 = text
                    .parse()
                    .map_err(|_| ScriptError::at(span, format!("invalid number `{text}`")))?;
                let len = j - i;
                out.push(Token {
                    tok: Tok::Num(v),
                    span,
                });
                i += len;
                col += len as u32;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                let len = j - i;
                out.push(Token {
                    tok: Tok::Ident(text),
                    span,
                });
                i += len;
                col += len as u32;
            }
            other => {
                return Err(ScriptError::at(
                    span,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        span: Span { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_carry_positions() {
        let toks = tokenize("X = t(A) %*% B;\ny = 1.5e2;").unwrap();
        assert_eq!(toks[0].tok, Tok::Ident("X".into()));
        assert_eq!(toks[0].span, Span { line: 1, col: 1 });
        assert_eq!(toks[2].tok, Tok::Ident("t".into()));
        assert!(toks.iter().any(|t| t.tok == Tok::MatMul));
        let num = toks.iter().find(|t| matches!(t.tok, Tok::Num(_))).unwrap();
        assert_eq!(num.tok, Tok::Num(150.0));
        assert_eq!(num.span.line, 2);
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("# header\nx = 1; # trailing\n").unwrap();
        assert_eq!(toks[0].span.line, 2);
        assert_eq!(toks.len(), 5); // x = 1 ; eof
    }

    #[test]
    fn bad_character_is_an_error_with_span() {
        let e = tokenize("x = 1;\ny = @;").unwrap_err();
        assert_eq!(e.span, Span { line: 2, col: 5 });
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let e = tokenize("x = read(\"oops, 3, 3);").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn lone_percent_requires_matmul() {
        let e = tokenize("x = a % b;").unwrap_err();
        assert!(e.message.contains("%*%"));
    }
}
