//! ML builtins: the SystemDS-style primitives the paper's pipelines
//! compose (linRegDS, L2SVM, logistic regression, PCA, cleaning and
//! feature-transformation primitives, autoencoder steps, CNN layers).
//!
//! Every builtin issues instructions through the engine's reuse hook, so
//! fine-grained reuse applies inside and across builtins; several also
//! offer function-level wrappers for multi-level reuse.

use memphis_engine::context::Result;
use memphis_engine::ops::AggDir;
use memphis_engine::ExecutionContext;
use memphis_matrix::ops::agg::AggOp;
use memphis_matrix::ops::binary::BinaryOp;
use memphis_matrix::ops::nn::{Conv2dParams, Pool2dParams};
use memphis_matrix::ops::unary::UnaryOp;
use memphis_matrix::Matrix;

/// Direct-solve linear regression (Example 4.1):
/// `w = solve(t(X)X + reg*I, t(X)y)`. The reg-independent `t(X)X` and
/// `t(X)y` dominate and are reusable across calls.
pub fn lin_reg_ds(
    ctx: &mut ExecutionContext,
    x: &str,
    y: &str,
    reg: &str,
    out_w: &str,
) -> Result<()> {
    ctx.tsmm("__lr_G", x)?;
    ctx.xty("__lr_b", x, y)?;
    // G + reg (scalar shift approximates + reg*I on the normal equations;
    // SystemDS adds to the diagonal — we shift the diagonal via eye mul).
    ctx.binary("__lr_A", "__lr_G", reg, BinaryOp::Add)?;
    ctx.solve(out_w, "__lr_A", "__lr_b")?;
    Ok(())
}

/// linRegDS with multi-level (function) reuse.
pub fn lin_reg_ds_fn(
    ctx: &mut ExecutionContext,
    x: &str,
    y: &str,
    reg: &str,
    out_w: &str,
) -> Result<()> {
    let (x2, y2, reg2) = (x.to_string(), y.to_string(), reg.to_string());
    ctx.call_function("linRegDS", &[x, y, reg], &[out_w], move |c| {
        lin_reg_ds(c, &x2, &y2, &reg2, out_w)
    })
}

/// Iterative L2SVM-style training: `iters` gradient steps of
/// `w -= lr * (t(X)(Xw - y) + reg*w)`. Deterministic, so re-running a
/// configuration with more iterations reuses the shared prefix (the
/// successive-halving pattern of HBAND).
pub fn l2svm_train(
    ctx: &mut ExecutionContext,
    x: &str,
    y: &str,
    reg: &str,
    iters: usize,
    lr: f64,
    out_w: &str,
) -> Result<()> {
    let d = ctx.value(x)?.shape().map(|(_, c)| c).unwrap_or(1);
    ctx.rand(out_w, d, 1, 0.0, 0.0, 7)?; // zero init, deterministic
    for _ in 0..iters {
        ctx.matmul("__svm_p", x, out_w)?;
        ctx.binary("__svm_e", "__svm_p", y, BinaryOp::Sub)?;
        ctx.xty("__svm_g", x, "__svm_e")?;
        ctx.binary("__svm_rw", out_w, reg, BinaryOp::Mul)?;
        ctx.binary("__svm_g2", "__svm_g", "__svm_rw", BinaryOp::Add)?;
        ctx.binary_const("__svm_step", "__svm_g2", lr, BinaryOp::Mul, false)?;
        ctx.binary(out_w, out_w, "__svm_step", BinaryOp::Sub)?;
    }
    Ok(())
}

/// Logistic-regression-style training (sigmoid link), the paper's MLRG
/// stand-in.
pub fn mlogreg_train(
    ctx: &mut ExecutionContext,
    x: &str,
    y: &str,
    reg: &str,
    iters: usize,
    lr: f64,
    out_w: &str,
) -> Result<()> {
    let d = ctx.value(x)?.shape().map(|(_, c)| c).unwrap_or(1);
    ctx.rand(out_w, d, 1, 0.0, 0.0, 11)?;
    for _ in 0..iters {
        ctx.matmul("__ml_p", x, out_w)?;
        ctx.unary("__ml_s", "__ml_p", UnaryOp::Sigmoid)?;
        ctx.binary("__ml_e", "__ml_s", y, BinaryOp::Sub)?;
        ctx.xty("__ml_g", x, "__ml_e")?;
        ctx.binary("__ml_rw", out_w, reg, BinaryOp::Mul)?;
        ctx.binary("__ml_g2", "__ml_g", "__ml_rw", BinaryOp::Add)?;
        ctx.binary_const("__ml_step", "__ml_g2", lr, BinaryOp::Mul, false)?;
        ctx.binary(out_w, out_w, "__ml_step", BinaryOp::Sub)?;
    }
    Ok(())
}

/// Mean squared error between predictions `X w` and `y`, as a scalar.
pub fn mse(ctx: &mut ExecutionContext, x: &str, w: &str, y: &str, out: &str) -> Result<()> {
    ctx.matmul("__mse_p", x, w)?;
    ctx.binary("__mse_e", "__mse_p", y, BinaryOp::Sub)?;
    ctx.binary("__mse_sq", "__mse_e", "__mse_e", BinaryOp::Mul)?;
    ctx.agg(out, "__mse_sq", AggOp::Mean, AggDir::Full)?;
    Ok(())
}

// ----------------------------------------------------------------------
// Cleaning and feature-transformation primitives (CLEAN, HDROP)
// ----------------------------------------------------------------------

/// Missing-value imputation by column mean (NaN-aware, pure matrix ops).
pub fn impute_by_mean(ctx: &mut ExecutionContext, x: &str, out: &str) -> Result<()> {
    ctx.unary("__im_mask", x, UnaryOp::IsNan)?;
    ctx.unary("__im_xz", x, UnaryOp::Nan0)?;
    ctx.agg("__im_sums", "__im_xz", AggOp::Sum, AggDir::Col)?;
    ctx.agg("__im_nan_cnt", "__im_mask", AggOp::Sum, AggDir::Col)?;
    let n = ctx.value(x)?.shape().map(|(r, _)| r).unwrap_or(1);
    ctx.binary_const(
        "__im_present",
        "__im_nan_cnt",
        n as f64,
        BinaryOp::Sub,
        true,
    )?;
    ctx.binary("__im_means", "__im_sums", "__im_present", BinaryOp::Div)?;
    // X_imputed = Xz + mask * means (row-vector broadcast).
    ctx.binary("__im_fill", "__im_mask", "__im_means", BinaryOp::Mul)?;
    ctx.binary(out, "__im_xz", "__im_fill", BinaryOp::Add)?;
    Ok(())
}

/// Missing-value imputation by column mode (host-side builtin).
pub fn impute_by_mode(ctx: &mut ExecutionContext, x: &str, out: &str) -> Result<()> {
    ctx.map_custom(out, x, "imputeByMode", vec![], |m| {
        let mut out = m.deep_clone();
        let (rows, cols) = m.shape();
        for c in 0..cols {
            let mut counts: std::collections::HashMap<u64, usize> = Default::default();
            for r in 0..rows {
                let v = m.at(r, c);
                if !v.is_nan() {
                    *counts.entry(v.to_bits()).or_default() += 1;
                }
            }
            // Deterministic tie-break: highest count, then smallest value.
            let mode = counts
                .into_iter()
                .map(|(bits, n)| (n, std::cmp::Reverse(bits)))
                .max()
                .map(|(_, std::cmp::Reverse(bits))| f64::from_bits(bits))
                .unwrap_or(0.0);
            for r in 0..rows {
                if m.at(r, c).is_nan() {
                    out.set(r, c, mode).expect("in bounds");
                }
            }
        }
        Ok(out)
    })
}

/// IQR outlier clamping: values outside `[Q1 - 1.5 IQR, Q3 + 1.5 IQR]`
/// per column are clipped (host-side builtin, as in SystemDS's
/// `outlierByIQR` with repair).
pub fn outlier_by_iqr(ctx: &mut ExecutionContext, x: &str, out: &str) -> Result<()> {
    ctx.map_custom(out, x, "outlierByIQR", vec![], |m| {
        let (rows, cols) = m.shape();
        let mut out = m.deep_clone();
        for c in 0..cols {
            let mut col: Vec<f64> = (0..rows)
                .map(|r| m.at(r, c))
                .filter(|v| !v.is_nan())
                .collect();
            if col.is_empty() {
                continue;
            }
            col.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let q = |p: f64| col[((col.len() - 1) as f64 * p) as usize];
            let (q1, q3) = (q(0.25), q(0.75));
            let iqr = q3 - q1;
            let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
            for r in 0..rows {
                let v = m.at(r, c);
                if v < lo {
                    out.set(r, c, lo).expect("in bounds");
                } else if v > hi {
                    out.set(r, c, hi).expect("in bounds");
                }
            }
        }
        Ok(out)
    })
}

/// Standard scaling `(X - mean) / sd` per column.
pub fn scale_standard(ctx: &mut ExecutionContext, x: &str, out: &str) -> Result<()> {
    ctx.agg("__ss_mu", x, AggOp::Mean, AggDir::Col)?;
    ctx.agg("__ss_var", x, AggOp::Var, AggDir::Col)?;
    ctx.unary("__ss_sd", "__ss_var", UnaryOp::Sqrt)?;
    ctx.binary_const("__ss_sd1", "__ss_sd", 1e-9, BinaryOp::Add, false)?;
    ctx.binary("__ss_c", x, "__ss_mu", BinaryOp::Sub)?;
    ctx.binary(out, "__ss_c", "__ss_sd1", BinaryOp::Div)?;
    Ok(())
}

/// Min-max scaling to `[0, 1]` per column.
pub fn scale_minmax(ctx: &mut ExecutionContext, x: &str, out: &str) -> Result<()> {
    ctx.agg("__mm_min", x, AggOp::Min, AggDir::Col)?;
    ctx.agg("__mm_max", x, AggOp::Max, AggDir::Col)?;
    ctx.binary("__mm_rng", "__mm_max", "__mm_min", BinaryOp::Sub)?;
    ctx.binary_const("__mm_rng1", "__mm_rng", 1e-9, BinaryOp::Add, false)?;
    ctx.binary("__mm_c", x, "__mm_min", BinaryOp::Sub)?;
    ctx.binary(out, "__mm_c", "__mm_rng1", BinaryOp::Div)?;
    Ok(())
}

/// Class-balancing under-sampling: keeps all minority rows and an equal
/// number of majority rows (deterministic prefix).
pub fn under_sample(ctx: &mut ExecutionContext, x: &str, labels: &str, out: &str) -> Result<()> {
    ctx.zip_custom(out, x, labels, "underSampling", vec![], |m, y| {
        let minority: Vec<usize> = (0..m.rows()).filter(|&r| y.at(r, 0) != 0.0).collect();
        let majority: Vec<usize> = (0..m.rows()).filter(|&r| y.at(r, 0) == 0.0).collect();
        let take = minority.len().max(1).min(majority.len());
        let mut keep = minority;
        keep.extend_from_slice(&majority[..take]);
        keep.sort_unstable();
        memphis_matrix::ops::reorg::gather_rows(m, &keep).map_err(|e| e.to_string())
    })
}

/// Equi-width binning of every column into `bins` integer codes.
pub fn bin_features(ctx: &mut ExecutionContext, x: &str, bins: usize, out: &str) -> Result<()> {
    ctx.map_custom(out, x, "binning", vec![bins.to_string()], move |m| {
        let (rows, cols) = m.shape();
        let mut out = m.deep_clone();
        for c in 0..cols {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for r in 0..rows {
                let v = m.at(r, c);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let width = ((hi - lo) / bins as f64).max(1e-12);
            for r in 0..rows {
                let b = (((m.at(r, c) - lo) / width) as usize).min(bins - 1);
                out.set(r, c, b as f64).expect("in bounds");
            }
        }
        Ok(out)
    })
}

/// Recode: maps distinct values of every column to dense integer codes
/// (sorted order, deterministic).
pub fn recode(ctx: &mut ExecutionContext, x: &str, out: &str) -> Result<()> {
    ctx.map_custom(out, x, "recode", vec![], |m| {
        let (rows, cols) = m.shape();
        let mut out = m.deep_clone();
        for c in 0..cols {
            let mut distinct: Vec<u64> = (0..rows).map(|r| m.at(r, c).to_bits()).collect();
            distinct.sort_unstable();
            distinct.dedup();
            let index: std::collections::HashMap<u64, usize> =
                distinct.iter().enumerate().map(|(i, &b)| (b, i)).collect();
            for r in 0..rows {
                let code = index[&m.at(r, c).to_bits()];
                out.set(r, c, code as f64).expect("in bounds");
            }
        }
        Ok(out)
    })
}

/// One-hot encodes integer-coded columns with a FIXED per-column
/// cardinality (values clamped into range), so batch-wise application
/// yields a stable output width — required by the HDROP input data
/// pipeline, which transforms one mini-batch at a time.
pub fn one_hot_fixed(ctx: &mut ExecutionContext, x: &str, card: usize, out: &str) -> Result<()> {
    let card = card.max(1);
    ctx.map_custom(out, x, "oneHotFixed", vec![card.to_string()], move |m| {
        let (rows, cols) = m.shape();
        let width = cols * card;
        let mut out = vec![0.0; rows * width];
        for r in 0..rows {
            for c in 0..cols {
                let code = (m.at(r, c).max(0.0) as usize).min(card - 1);
                out[r * width + c * card + code] = 1.0;
            }
        }
        Matrix::from_vec(rows, width, out).map_err(|e| e.to_string())
    })
}

/// One-hot encodes integer-coded columns (dummy coding); output width is
/// the sum of per-column cardinalities.
pub fn one_hot(ctx: &mut ExecutionContext, x: &str, out: &str) -> Result<()> {
    ctx.map_custom(out, x, "oneHot", vec![], |m| {
        let (rows, cols) = m.shape();
        let mut cards = Vec::with_capacity(cols);
        for c in 0..cols {
            let max = (0..rows).map(|r| m.at(r, c) as usize).max().unwrap_or(0);
            cards.push(max + 1);
        }
        let width: usize = cards.iter().sum();
        let mut out = vec![0.0; rows * width];
        for r in 0..rows {
            let mut off = 0;
            for c in 0..cols {
                let code = m.at(r, c) as usize;
                out[r * width + off + code.min(cards[c] - 1)] = 1.0;
                off += cards[c];
            }
        }
        Matrix::from_vec(rows, width, out).map_err(|e| e.to_string())
    })
}

/// PCA via a fixed number of power iterations on the covariance of the
/// centered data; returns the `k`-dim projection of `X`.
pub fn pca(ctx: &mut ExecutionContext, x: &str, k: usize, out: &str) -> Result<()> {
    ctx.agg("__pca_mu", x, AggOp::Mean, AggDir::Col)?;
    ctx.binary("__pca_c", x, "__pca_mu", BinaryOp::Sub)?;
    ctx.tsmm("__pca_cov", "__pca_c")?;
    let d = ctx.value("__pca_cov")?.shape().map(|(r, _)| r).unwrap_or(k);
    ctx.rand("__pca_v", d, k, -1.0, 1.0, 1234)?;
    for _ in 0..5 {
        ctx.matmul("__pca_cv", "__pca_cov", "__pca_v")?;
        // Gram–Schmidt orthonormalization (host builtin).
        ctx.map_custom("__pca_v", "__pca_cv", "orth", vec![], |m| {
            let (rows, cols) = m.shape();
            let mut cols_v: Vec<Vec<f64>> = (0..cols)
                .map(|c| (0..rows).map(|r| m.at(r, c)).collect())
                .collect();
            for c in 0..cols {
                for p in 0..c {
                    let dot: f64 = cols_v[c].iter().zip(&cols_v[p]).map(|(a, b)| a * b).sum();
                    let prev = cols_v[p].clone();
                    for (v, pv) in cols_v[c].iter_mut().zip(prev) {
                        *v -= dot * pv;
                    }
                }
                let norm: f64 = cols_v[c]
                    .iter()
                    .map(|v| v * v)
                    .sum::<f64>()
                    .sqrt()
                    .max(1e-12);
                for v in cols_v[c].iter_mut() {
                    *v /= norm;
                }
            }
            let mut data = vec![0.0; rows * cols];
            for (c, col) in cols_v.iter().enumerate() {
                for (r, v) in col.iter().enumerate() {
                    data[r * cols + c] = *v;
                }
            }
            Matrix::from_vec(rows, cols, data).map_err(|e| e.to_string())
        })?;
    }
    ctx.matmul(out, "__pca_c", "__pca_v")?;
    Ok(())
}

// ----------------------------------------------------------------------
// Neural-network building blocks (HDROP, EN2DE, TLVIS, Fig. 12(b))
// ----------------------------------------------------------------------

/// One conv → ReLU stage of a CNN forward pass.
pub fn conv_relu(
    ctx: &mut ExecutionContext,
    x: &str,
    w: &str,
    p: Conv2dParams,
    out: &str,
) -> Result<()> {
    ctx.conv2d("__cr_c", x, w, p)?;
    ctx.unary(out, "__cr_c", UnaryOp::Relu)?;
    Ok(())
}

/// One max-pool stage.
pub fn pool(ctx: &mut ExecutionContext, x: &str, p: Pool2dParams, out: &str) -> Result<()> {
    ctx.max_pool2d(out, x, p)
}

/// Fully-connected → ReLU stage.
pub fn fc_relu(ctx: &mut ExecutionContext, x: &str, w: &str, b: &str, out: &str) -> Result<()> {
    ctx.affine("__fc_a", x, w, b)?;
    ctx.unary(out, "__fc_a", UnaryOp::Relu)?;
    Ok(())
}

/// Classifier head: affine → softmax.
pub fn fc_softmax(ctx: &mut ExecutionContext, x: &str, w: &str, b: &str, out: &str) -> Result<()> {
    ctx.affine("__fs_a", x, w, b)?;
    ctx.softmax(out, "__fs_a")?;
    Ok(())
}

/// One autoencoder training step (2-layer encoder/decoder with dropout):
/// forward + explicit backward + SGD update of the four weight matrices
/// `w1, b1, w2, b2` (in/out variable names). Returns the batch loss in
/// `out_loss`.
#[allow(clippy::too_many_arguments)]
pub fn autoencoder_step(
    ctx: &mut ExecutionContext,
    batch: &str,
    w1: &str,
    b1: &str,
    w2: &str,
    b2: &str,
    dropout_rate: f64,
    dropout_seed: u64,
    lr: f64,
    out_loss: &str,
) -> Result<()> {
    // Forward: h = dropout(relu(X W1 + b1)); recon = h W2 + b2.
    ctx.affine("__ae_a1", batch, w1, b1)?;
    ctx.unary("__ae_h0", "__ae_a1", UnaryOp::Relu)?;
    ctx.dropout("__ae_h", "__ae_h0", dropout_rate, dropout_seed)?;
    ctx.affine("__ae_recon", "__ae_h", w2, b2)?;
    // Loss and output gradient: d = recon - X.
    ctx.binary("__ae_d", "__ae_recon", batch, BinaryOp::Sub)?;
    ctx.binary("__ae_sq", "__ae_d", "__ae_d", BinaryOp::Mul)?;
    ctx.agg(out_loss, "__ae_sq", AggOp::Mean, AggDir::Full)?;
    // Backward: dW2 = t(h) d; db2 = colSums(d);
    ctx.xty("__ae_dw2", "__ae_h", "__ae_d")?;
    ctx.agg("__ae_db2", "__ae_d", AggOp::Sum, AggDir::Col)?;
    // dh = d t(W2) masked by relu'(a1).
    ctx.transpose("__ae_w2t", w2)?;
    ctx.matmul("__ae_dh", "__ae_d", "__ae_w2t")?;
    ctx.binary_const("__ae_mask", "__ae_h0", 0.0, BinaryOp::Greater, false)?;
    ctx.binary("__ae_dh2", "__ae_dh", "__ae_mask", BinaryOp::Mul)?;
    ctx.xty("__ae_dw1", batch, "__ae_dh2")?;
    ctx.agg("__ae_db1", "__ae_dh2", AggOp::Sum, AggDir::Col)?;
    // SGD updates.
    for (wvar, gvar) in [
        (w1, "__ae_dw1"),
        (w2, "__ae_dw2"),
        (b1, "__ae_db1"),
        (b2, "__ae_db2"),
    ] {
        let step = format!("__ae_step_{wvar}");
        ctx.binary_const(&step, gvar, lr, BinaryOp::Mul, false)?;
        ctx.binary(wvar, wvar, &step, BinaryOp::Sub)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;
    use memphis_engine::EngineConfig;

    fn ctx() -> ExecutionContext {
        ExecutionContext::local(EngineConfig::test())
    }

    #[test]
    fn lin_reg_recovers_planted_model() {
        let mut c = ctx();
        let (x, y) = data::regression(200, 6, 0.001, 1);
        c.read("X", x, "X").unwrap();
        c.read("y", y, "y").unwrap();
        c.literal("reg", 1e-6).unwrap();
        lin_reg_ds(&mut c, "X", "y", "reg", "w").unwrap();
        mse(&mut c, "X", "w", "y", "err").unwrap();
        assert!(c.get_scalar("err").unwrap() < 0.01);
    }

    #[test]
    fn lin_reg_fn_reuses_across_identical_calls() {
        let mut c = ctx();
        let (x, y) = data::regression(100, 4, 0.01, 2);
        c.read("X", x, "X").unwrap();
        c.read("y", y, "y").unwrap();
        c.literal("reg", 0.1).unwrap();
        lin_reg_ds_fn(&mut c, "X", "y", "reg", "w1").unwrap();
        lin_reg_ds_fn(&mut c, "X", "y", "reg", "w2").unwrap();
        assert_eq!(c.stats.functions_reused, 1);
        // Different reg: body runs but tsmm/xty reused.
        c.literal("reg", 0.2).unwrap();
        let reused_before = c.stats.reused;
        lin_reg_ds_fn(&mut c, "X", "y", "reg", "w3").unwrap();
        assert!(c.stats.reused >= reused_before + 2);
    }

    #[test]
    fn l2svm_training_reduces_error() {
        let mut c = ctx();
        let (x, y) = data::classification(150, 5, 3);
        c.read("X", x, "X").unwrap();
        c.read("y", y, "y").unwrap();
        c.literal("reg", 0.001).unwrap();
        l2svm_train(&mut c, "X", "y", "reg", 30, 0.002, "w").unwrap();
        mse(&mut c, "X", "w", "y", "err").unwrap();
        let err = c.get_scalar("err").unwrap();
        assert!(err < 1.0, "training must beat the zero model, err={err}");
    }

    #[test]
    fn successive_halving_prefix_reuse() {
        let mut c = ctx();
        let (x, y) = data::classification(80, 4, 4);
        c.read("X", x, "X").unwrap();
        c.read("y", y, "y").unwrap();
        c.literal("reg", 0.01).unwrap();
        l2svm_train(&mut c, "X", "y", "reg", 5, 0.01, "w5").unwrap();
        let reused_before = c.stats.reused;
        // Doubling the iteration count must reuse the first 5 iterations.
        l2svm_train(&mut c, "X", "y", "reg", 10, 0.01, "w10").unwrap();
        assert!(
            c.stats.reused >= reused_before + 5 * 7,
            "first-half iterations reused: {} -> {}",
            reused_before,
            c.stats.reused
        );
    }

    #[test]
    fn impute_by_mean_fills_nans() {
        let mut c = ctx();
        let m = Matrix::from_vec(3, 2, vec![1.0, 10.0, f64::NAN, 20.0, 3.0, f64::NAN]).unwrap();
        c.read("X", m, "X").unwrap();
        impute_by_mean(&mut c, "X", "Xi").unwrap();
        let xi = c.get_matrix("Xi").unwrap();
        assert!(xi.values().iter().all(|v| !v.is_nan()));
        assert_eq!(xi.at(1, 0), 2.0, "mean of 1 and 3");
        assert_eq!(xi.at(2, 1), 15.0, "mean of 10 and 20");
    }

    #[test]
    fn impute_by_mode_uses_most_frequent() {
        let mut c = ctx();
        let m = Matrix::from_vec(4, 1, vec![5.0, 5.0, 7.0, f64::NAN]).unwrap();
        c.read("X", m, "X").unwrap();
        impute_by_mode(&mut c, "X", "Xi").unwrap();
        let xi = c.get_matrix("Xi").unwrap();
        assert_eq!(xi.at(3, 0), 5.0);
    }

    #[test]
    fn outlier_iqr_clips_extremes() {
        let mut c = ctx();
        let mut vals = vec![1.0; 20];
        vals[0] = 1000.0;
        let m = Matrix::from_vec(20, 1, vals).unwrap();
        c.read("X", m, "X").unwrap();
        outlier_by_iqr(&mut c, "X", "Xo").unwrap();
        let xo = c.get_matrix("Xo").unwrap();
        assert!(xo.at(0, 0) < 1000.0, "outlier clipped");
    }

    #[test]
    fn scaling_bounds() {
        let mut c = ctx();
        let m = data::regression(50, 3, 0.1, 5).0;
        c.read("X", m, "X").unwrap();
        scale_minmax(&mut c, "X", "Xm").unwrap();
        let xm = c.get_matrix("Xm").unwrap();
        assert!(xm
            .values()
            .iter()
            .all(|&v| (-1e-9..=1.0 + 1e-9).contains(&v)));
        scale_standard(&mut c, "X", "Xs").unwrap();
        let xs = c.get_matrix("Xs").unwrap();
        let mu = memphis_matrix::ops::agg::aggregate(&xs, AggOp::Mean).unwrap();
        assert!(mu.abs() < 1e-9);
    }

    #[test]
    fn under_sampling_balances() {
        let mut c = ctx();
        let x = data::regression(100, 2, 0.1, 6).0;
        let mut labels = vec![0.0; 100];
        for l in labels.iter_mut().take(10) {
            *l = 1.0;
        }
        let y = Matrix::from_vec(100, 1, labels).unwrap();
        c.read("X", x, "X").unwrap();
        c.read("y", y, "y").unwrap();
        under_sample(&mut c, "X", "y", "Xb").unwrap();
        let xb = c.get_matrix("Xb").unwrap();
        assert_eq!(xb.rows(), 20, "10 minority + 10 majority");
    }

    #[test]
    fn binning_recode_onehot_chain() {
        let mut c = ctx();
        let (x, _) = data::kdd98_like(60, 2, 1, 4, 7);
        c.read("X", x, "X").unwrap();
        bin_features(&mut c, "X", 5, "Xb").unwrap();
        let xb = c.get_matrix("Xb").unwrap();
        assert!(xb.values().iter().all(|&v| (0.0..5.0).contains(&v)));
        recode(&mut c, "Xb", "Xr").unwrap();
        one_hot(&mut c, "Xr", "Xo").unwrap();
        let xo = c.get_matrix("Xo").unwrap();
        // Every row has exactly one 1 per original column.
        let rs = memphis_matrix::ops::agg::row_agg(&xo, AggOp::Sum).unwrap();
        assert!(rs.values().iter().all(|&v| v == 3.0));
    }

    #[test]
    fn pca_projects_to_k_dims() {
        let mut c = ctx();
        let x = data::regression(80, 6, 0.1, 8).0;
        c.read("X", x, "X").unwrap();
        pca(&mut c, "X", 2, "P").unwrap();
        let p = c.get_matrix("P").unwrap();
        assert_eq!(p.shape(), (80, 2));
        assert!(p.values().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn autoencoder_loss_decreases() {
        let mut c = ctx();
        let x = data::regression(64, 8, 0.1, 9).0;
        c.read("X", x, "X").unwrap();
        c.rand("W1", 8, 4, -0.3, 0.3, 10).unwrap();
        c.rand("b1", 1, 4, 0.0, 0.0, 11).unwrap();
        c.rand("W2", 4, 8, -0.3, 0.3, 12).unwrap();
        c.rand("b2", 1, 8, 0.0, 0.0, 13).unwrap();
        let mut first = None;
        let mut last = 0.0;
        for e in 0..40 {
            autoencoder_step(&mut c, "X", "W1", "b1", "W2", "b2", 0.0, e, 0.002, "loss").unwrap();
            last = c.get_scalar("loss").unwrap();
            first.get_or_insert(last);
        }
        assert!(last < first.unwrap(), "loss {first:?} -> {last}");
    }
}
