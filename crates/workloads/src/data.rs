//! Deterministic synthetic dataset generators matching the relevant
//! statistics of the paper's datasets (Table 3). Lineage-based reuse is
//! data-skew independent (§6.3), so generators control exactly the
//! properties that matter: shapes, duplicate rates, missing-value rates,
//! categorical cardinalities, and class balance.

use memphis_matrix::rand_gen::{rand_normal, rand_permutation, rand_uniform};
use memphis_matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Regression data: `X` (n x d) with a planted linear model plus noise,
/// responses `y`.
pub fn regression(n: usize, d: usize, noise: f64, seed: u64) -> (Matrix, Matrix) {
    let x = rand_uniform(n, d, -1.0, 1.0, seed);
    let w = rand_uniform(d, 1, -1.0, 1.0, seed ^ 0x9e37);
    let clean = memphis_matrix::ops::matmul::matmul(&x, &w).expect("dims");
    let eps = rand_normal(n, 1, 0.0, noise, seed ^ 0x79b9);
    let y = memphis_matrix::ops::binary::binary(
        &clean,
        &eps,
        memphis_matrix::ops::binary::BinaryOp::Add,
    )
    .expect("dims");
    (x, y)
}

/// Binary classification with ±1 labels (L2SVM-style).
pub fn classification(n: usize, d: usize, seed: u64) -> (Matrix, Matrix) {
    let (x, y) = regression(n, d, 0.2, seed);
    let labels = memphis_matrix::ops::unary::unary(&y, memphis_matrix::ops::unary::UnaryOp::Sign);
    (x, labels)
}

/// APS-like data (SCANIA trucks): n x d numeric features with a fraction
/// of missing values (NaN) and an imbalanced 0/1 class column appended as
/// the last column. The real APS has 60K rows, 170 features, 0.6% missing.
pub fn aps_like(n: usize, d: usize, missing_rate: f64, seed: u64) -> Matrix {
    let mut x = rand_normal(n, d + 1, 0.0, 1.0, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xaaaa);
    {
        let vals = x.values_mut();
        for r in 0..n {
            for c in 0..d {
                if rng.gen::<f64>() < missing_rate {
                    vals[r * (d + 1) + c] = f64::NAN;
                }
            }
            // Imbalanced class label (~2% positives, like APS failures).
            vals[r * (d + 1) + d] = if rng.gen::<f64>() < 0.02 { 1.0 } else { 0.0 };
        }
    }
    x
}

/// KDD98-like data: numeric features to be binned plus integer-coded
/// categorical features with the given cardinality, and a response.
pub fn kdd98_like(
    n: usize,
    numeric: usize,
    categorical: usize,
    cardinality: usize,
    seed: u64,
) -> (Matrix, Matrix) {
    let num = rand_normal(n, numeric, 50.0, 20.0, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbbbb);
    let mut cat = vec![0.0; n * categorical];
    for v in cat.iter_mut() {
        *v = rng.gen_range(0..cardinality) as f64;
    }
    let cat = Matrix::from_vec(n, categorical, cat).expect("dims");
    let x = memphis_matrix::ops::reorg::cbind(&num, &cat).expect("rows match");
    let y = rand_normal(n, 1, 10.0, 5.0, seed ^ 0xcccc);
    (x, y)
}

/// MovieLens-like ratings matrix: n x m dense matrix with ratings in
/// [0, 5] and the given fill density (zeros elsewhere). The real data has
/// 20M ratings over 138K users x 27K movies; we scale down.
pub fn movielens_like(users: usize, movies: usize, density: f64, seed: u64) -> Matrix {
    let mut m = Matrix::zeros(users, movies);
    let mut rng = StdRng::seed_from_u64(seed);
    {
        let vals = m.values_mut();
        for v in vals.iter_mut() {
            if rng.gen::<f64>() < density {
                *v = rng.gen_range(1..=5) as f64;
            }
        }
    }
    m
}

/// A token stream with Zipf-like duplicates over `vocab` words — the
/// EN2DE input (the paper's 200K-word news subset has heavy repetition).
pub fn zipf_tokens(len: usize, vocab: usize, skew: f64, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Normalized Zipf CDF.
    let weights: Vec<f64> = (1..=vocab).map(|r| 1.0 / (r as f64).powf(skew)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(vocab);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    // Random rank → word id mapping so hot words are spread over ids.
    let perm = rand_permutation(vocab, seed ^ 0xdddd);
    (0..len)
        .map(|_| {
            let u: f64 = rng.gen();
            let rank = cdf.partition_point(|&c| c < u).min(vocab - 1);
            perm[rank]
        })
        .collect()
}

/// Word embeddings: vocab x dim (300 in the paper).
pub fn embeddings(vocab: usize, dim: usize, seed: u64) -> Matrix {
    rand_uniform(vocab, dim, -0.5, 0.5, seed)
}

/// CIFAR-like linearized images: n x (c*h*w) in [0, 1], with a fraction of
/// exact duplicates (object-detection streams see repeated inputs).
pub fn images(n: usize, channels: usize, side: usize, dup_rate: f64, seed: u64) -> Matrix {
    let base = rand_uniform(n, channels * side * side, 0.0, 1.0, seed);
    if dup_rate <= 0.0 {
        return base;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xeeee);
    let mut rows: Vec<usize> = Vec::with_capacity(n);
    for i in 0..n {
        if i > 0 && rng.gen::<f64>() < dup_rate {
            rows.push(rows[rng.gen_range(0..i)]);
        } else {
            rows.push(i);
        }
    }
    memphis_matrix::ops::reorg::gather_rows(&base, &rows).expect("in bounds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use memphis_matrix::ops::agg::{aggregate, AggOp};

    #[test]
    fn regression_is_learnable() {
        let (x, y) = regression(100, 5, 0.01, 1);
        assert_eq!(x.shape(), (100, 5));
        assert_eq!(y.shape(), (100, 1));
        // Signal dominates noise: y correlates with Xw.
        assert!(aggregate(&y, AggOp::Var).unwrap() > 0.01);
    }

    #[test]
    fn classification_labels_are_signs() {
        let (_, y) = classification(50, 4, 2);
        assert!(y
            .values()
            .iter()
            .all(|&v| v == 1.0 || v == -1.0 || v == 0.0));
    }

    #[test]
    fn aps_missing_rate_close() {
        let m = aps_like(2000, 20, 0.05, 3);
        let nans = m.values().iter().filter(|v| v.is_nan()).count();
        let rate = nans as f64 / (2000.0 * 20.0);
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
        // Label column has only 0/1.
        for r in 0..2000 {
            let l = m.at(r, 20);
            assert!(l == 0.0 || l == 1.0);
        }
    }

    #[test]
    fn kdd98_categoricals_in_range() {
        let (x, y) = kdd98_like(500, 3, 2, 7, 4);
        assert_eq!(x.shape(), (500, 5));
        assert_eq!(y.shape(), (500, 1));
        for r in 0..500 {
            for c in 3..5 {
                let v = x.at(r, c);
                assert!((0.0..7.0).contains(&v) && v.fract() == 0.0);
            }
        }
    }

    #[test]
    fn movielens_density_and_range() {
        let m = movielens_like(200, 100, 0.1, 5);
        let nnz = aggregate(&m, AggOp::Nnz).unwrap();
        let density = nnz / (200.0 * 100.0);
        assert!((density - 0.1).abs() < 0.02);
        assert!(aggregate(&m, AggOp::Max).unwrap() <= 5.0);
    }

    #[test]
    fn zipf_tokens_have_heavy_duplicates() {
        let toks = zipf_tokens(5000, 500, 1.1, 6);
        let unique: std::collections::HashSet<_> = toks.iter().collect();
        assert!(unique.len() < 500, "duplicates expected");
        assert!(toks.iter().all(|&t| t < 500));
        // Deterministic.
        assert_eq!(toks, zipf_tokens(5000, 500, 1.1, 6));
    }

    #[test]
    fn image_duplicates_exist() {
        let m = images(100, 1, 4, 0.5, 7);
        let mut fps: Vec<u64> = (0..100)
            .map(|r| {
                memphis_matrix::ops::reorg::slice_rows(&m, r, r + 1)
                    .unwrap()
                    .fingerprint()
            })
            .collect();
        fps.sort_unstable();
        fps.dedup();
        assert!(fps.len() < 100, "duplicate rows expected");
    }
}
