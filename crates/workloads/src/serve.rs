//! Multi-session serving harness: N session threads sharing one lineage
//! cache, exercising the sharded probe map and in-flight coalescing under
//! eviction pressure.
//!
//! The harness runs four phases:
//!
//! 1. **Rendezvous** — every session probes the same lineage item at
//!    once. Exactly one becomes the owner; it waits (spinning on
//!    [`LineageCache::inflight_waiters`]) until all other sessions are
//!    parked on the in-flight marker, then completes. This makes the
//!    coalesced-hit count deterministic: `sessions - 1`.
//! 2. **Shared working set** — sessions sweep a common set of lineage
//!    items in rotated orders. Whoever wins ownership computes and
//!    completes (the first few pinned via
//!    [`LineageCache::complete_pinned`]); everyone else hits or
//!    coalesces. An overlap set tracks concurrent computations of the
//!    same id — with coalescing it must stay empty.
//! 3. **Pipeline mix + churn** — each session builds its own
//!    [`ExecutionContext`] over the shared cache and runs one of the
//!    paper's pipelines (hcv / pnmf / hband / tlvis), then churns
//!    session-private puts to drive the local tier through its budget.
//!    Sessions assigned the same pipeline share lineage end-to-end, so
//!    their checksums must agree.
//! 4. **Verify** — after joining, pinned shared entries must still be
//!    resident (eviction deferred), and the global counters must satisfy
//!    `hits + misses == probes`.

use crate::pipelines;
use memphis_core::cache::config::CacheConfig;
use memphis_core::cache::entry::CachedObject;
use memphis_core::cache::{LineageCache, Probed};
use memphis_core::lineage::{LItem, LineageItem};
use memphis_core::stats::ReuseStatsSnapshot;
use memphis_matrix::Matrix;
use memphis_obs::cat;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Parameters of one serving run.
#[derive(Debug, Clone)]
pub struct ServeParams {
    /// Concurrent session threads.
    pub sessions: usize,
    /// Base seed; also selects each session's pipeline.
    pub seed: u64,
    /// Size of the shared working set swept in phase 2.
    pub shared_items: usize,
    /// Leading shared items pinned on completion (must survive churn).
    pub pinned_items: usize,
    /// Session-private churn puts in phase 3 (eviction pressure).
    pub churn_rounds: usize,
    /// Local-tier budget in bytes (small => churn evicts).
    pub local_budget: usize,
    /// Probe-map shards.
    pub shards: usize,
}

impl ServeParams {
    /// Small deterministic configuration for tests.
    pub fn test(sessions: usize, seed: u64) -> Self {
        Self {
            sessions,
            seed,
            shared_items: 12,
            pinned_items: 3,
            churn_rounds: 64,
            local_budget: 96 << 10,
            shards: 8,
        }
    }

    /// Benchmark scale: more churn, tighter budget relative to traffic.
    pub fn benchmark(sessions: usize, seed: u64) -> Self {
        Self {
            sessions,
            seed,
            shared_items: 32,
            pinned_items: 6,
            churn_rounds: 256,
            local_budget: 256 << 10,
            shards: 16,
        }
    }
}

/// Outcome of one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Session threads that ran.
    pub sessions: usize,
    /// Wall-clock for all phases.
    pub elapsed: Duration,
    /// Coalesced hits observed in the rendezvous phase (deterministic:
    /// `sessions - 1`).
    pub rendezvous_coalesced: u64,
    /// Distinct shared-working-set ids computed at least once.
    pub unique_shared_computes: u64,
    /// Shared-set completions beyond the first per id (recompute after
    /// eviction; legal, but bounded).
    pub shared_recomputes: u64,
    /// Times a session began computing a shared id while another
    /// session's computation of the same id was still in flight. The
    /// coalescing protocol makes this impossible; must be 0.
    pub duplicate_shared_computes: u64,
    /// Pinned shared entries still resident after churn.
    pub pinned_survivors: usize,
    /// Per-session `(pipeline, checksum)` pairs, in session order.
    pub checks: Vec<(String, f64)>,
    /// Global cache counters at the end of the run.
    pub reuse: ReuseStatsSnapshot,
}

impl ServeReport {
    /// True when every deterministic serving invariant holds.
    pub fn invariants_hold(&self, p: &ServeParams) -> bool {
        self.rendezvous_coalesced == (p.sessions as u64).saturating_sub(1)
            && self.duplicate_shared_computes == 0
            && self.unique_shared_computes == p.shared_items as u64
            && self.pinned_survivors == p.pinned_items
            && self.reuse.hits + self.reuse.misses == self.reuse.probes
    }
}

/// Shared-compute bookkeeping: per-id completion counts plus the set of
/// ids currently being computed (to detect concurrent duplicates).
#[derive(Default)]
struct SharedLedger {
    counts: HashMap<usize, u64>,
    in_progress: HashSet<usize>,
    duplicates: u64,
}

/// Deterministic payload of shared item `idx` (seeded matrix).
fn shared_payload(idx: usize) -> Matrix {
    crate::data::embeddings(16, 16, 0x5EED + idx as u64)
}

fn shared_item(idx: usize) -> LItem {
    LineageItem::leaf(&format!("serve/shared{idx}"))
}

/// Runs one serving experiment and reports its counters.
pub fn run_serve(p: &ServeParams) -> ServeReport {
    let _serve_span = memphis_obs::span(cat::SERVE, "serve");
    let t0 = Instant::now();

    let mut cfg = CacheConfig::test();
    cfg.local_budget = p.local_budget;
    cfg.shards = p.shards;
    // Eviction means gone: survival of a pinned entry is then exactly
    // "eviction was deferred", not "it came back from disk".
    cfg.spill_to_disk = false;
    let cache = Arc::new(LineageCache::new(cfg));

    let start = Barrier::new(p.sessions);
    let rendezvous_item = LineageItem::leaf("serve/rendezvous");
    let rendezvous_coalesced = AtomicU64::new(0);
    let ledger = Mutex::new(SharedLedger::default());
    let mut checks: Vec<(String, f64)> = Vec::new();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p.sessions);
        for s in 0..p.sessions {
            let cache = Arc::clone(&cache);
            let start = &start;
            let rendezvous_item = &rendezvous_item;
            let rendezvous_coalesced = &rendezvous_coalesced;
            let ledger = &ledger;
            handles.push(scope.spawn(move || {
                let _session_span = memphis_obs::span(cat::SERVE, "session");
                start.wait();
                run_rendezvous(&cache, rendezvous_item, p, rendezvous_coalesced);
                run_shared_sweep(&cache, p, s, ledger);
                run_session_pipeline(&cache, p, s)
            }));
        }
        for h in handles {
            checks.push(h.join().expect("session thread panicked"));
        }
    });

    // Phase 4: verification on the joined state.
    let pinned_survivors = (0..p.pinned_items)
        .filter(|i| cache.probe(&shared_item(*i)).is_some())
        .count();
    for i in 0..p.pinned_items {
        cache.unpin(&shared_item(i));
    }

    let ledger = ledger.into_inner();
    let unique = ledger.counts.len() as u64;
    let recomputes: u64 = ledger.counts.values().map(|c| c.saturating_sub(1)).sum();
    memphis_obs::instant_val(
        cat::SERVE,
        "coalesced",
        "n",
        rendezvous_coalesced.load(Ordering::Relaxed),
    );

    ServeReport {
        sessions: p.sessions,
        elapsed: t0.elapsed(),
        rendezvous_coalesced: rendezvous_coalesced.load(Ordering::Relaxed),
        unique_shared_computes: unique,
        shared_recomputes: recomputes,
        duplicate_shared_computes: ledger.duplicates,
        pinned_survivors,
        checks,
        reuse: cache.stats(),
    }
}

/// Outcome of a warm-restart run ([`run_warm_restart`]).
#[derive(Debug, Clone)]
pub struct WarmRestartReport {
    /// Shared entries spilled to the durable tier before the restart.
    pub spilled_before_restart: u64,
    /// Durable entries rebuilt into the probe map at restart.
    pub entries_recovered: u64,
    /// Recovered entries promoted straight back to driver memory.
    pub entries_rehydrated: u64,
    /// Post-restart probes served by materializing a durable entry.
    pub disk_warm_hits: u64,
    /// Shared ids computed at least once after the restart (the ids the
    /// crash lost; warm ids must not appear here).
    pub phase_b_computes: u64,
    /// Concurrent duplicate computations of one shared id after the
    /// restart; coalescing makes this impossible — must be 0.
    pub duplicate_shared_computes: u64,
    /// Maximum completions of any single shared id after the restart
    /// (exactly-once: must be <= 1).
    pub max_completions_per_id: u64,
    /// Global cache counters of the restarted cache.
    pub reuse: ReuseStatsSnapshot,
}

/// Serving warm restart: phase A completes the shared working set over a
/// persistent disk tier whose local budget is too small to hold it —
/// every entry is re-probed (proven) immediately, so eq. (1) eviction
/// spills instead of dropping — then the cache is dropped mid-workload
/// (the restart). Phase B reopens the same directory and runs the
/// concurrent shared sweep: recovered entries serve warm hits from disk
/// (or from memory, if rehydrated), lost entries are computed exactly
/// once under in-flight coalescing.
pub fn run_warm_restart(p: &ServeParams, dir: &std::path::Path) -> WarmRestartReport {
    let _span = memphis_obs::span(cat::SERVE, "warm_restart");
    let payload_bytes = shared_payload(0).size_bytes();

    // Phase A: warm the durable tier. The budget holds only a third of
    // the shared set, so completing the full set evicts — and, because
    // every entry is proven by its immediate re-probe, spills — the rest.
    let spilled_before_restart;
    {
        let mut cfg = CacheConfig::test();
        cfg.persist_dir = Some(dir.to_path_buf());
        cfg.local_budget = (p.shared_items * payload_bytes) / 3;
        cfg.shards = p.shards;
        let cache = LineageCache::new(cfg);
        for idx in 0..p.shared_items {
            if let Probed::Compute(guard) = cache.probe_or_begin(&shared_item(idx)) {
                let m = shared_payload(idx);
                let size = m.size_bytes();
                cache.complete(guard, CachedObject::Matrix(Arc::new(m)), 100.0, size, 1);
            }
            // Prove reuse before eviction pressure reaches this entry.
            cache.probe(&shared_item(idx)).expect("just completed");
        }
        spilled_before_restart = cache.stats().local_spills;
        // Dropping the cache is the restart: resident entries are lost,
        // the durable tier keeps everything spilled so far.
    }

    // Phase B: reopen over the surviving files. A small rehydration
    // budget promotes the hottest couple of entries eagerly; the rest
    // stay on disk and must serve warm hits lazily.
    let mut cfg = CacheConfig::test();
    cfg.persist_dir = Some(dir.to_path_buf());
    cfg.local_budget = p.local_budget;
    cfg.shards = p.shards;
    cfg.rehydrate_budget = Some(2 * payload_bytes);
    let cache = Arc::new(LineageCache::new(cfg));
    let entries_recovered = cache.stats().entries_recovered;
    let entries_rehydrated = cache.stats().entries_rehydrated;

    let start = Barrier::new(p.sessions);
    let ledger = Mutex::new(SharedLedger::default());
    std::thread::scope(|scope| {
        for s in 0..p.sessions {
            let cache = Arc::clone(&cache);
            let start = &start;
            let ledger = &ledger;
            scope.spawn(move || {
                start.wait();
                run_shared_sweep(&cache, p, s, ledger);
            });
        }
    });
    for i in 0..p.pinned_items {
        cache.unpin(&shared_item(i));
    }

    let ledger = ledger.into_inner();
    let reuse = cache.stats();
    WarmRestartReport {
        spilled_before_restart,
        entries_recovered,
        entries_rehydrated,
        disk_warm_hits: reuse.hits_disk,
        phase_b_computes: ledger.counts.len() as u64,
        duplicate_shared_computes: ledger.duplicates,
        max_completions_per_id: ledger.counts.values().copied().max().unwrap_or(0),
        reuse,
    }
}

/// Phase 1: all sessions collide on one item; the owner completes only
/// once every other session is parked on the in-flight marker.
fn run_rendezvous(cache: &LineageCache, item: &LItem, p: &ServeParams, coalesced: &AtomicU64) {
    let _span = memphis_obs::span(cat::SERVE, "rendezvous");
    match cache.probe_or_begin(item) {
        Probed::Compute(guard) => {
            // Every non-owner session is guaranteed to reach the marker
            // (no session can pass rendezvous before it resolves), so
            // this spin terminates.
            while cache.inflight_waiters(item) < (p.sessions as u64).saturating_sub(1) {
                std::thread::yield_now();
            }
            let m = shared_payload(0);
            let size = m.size_bytes();
            cache.complete(guard, CachedObject::Matrix(Arc::new(m)), 50.0, size, 1);
        }
        Probed::Coalesced(_) => {
            coalesced.fetch_add(1, Ordering::Relaxed);
        }
        Probed::Hit(_) => {
            // Unreachable by construction (the owner waits for everyone),
            // but a plain hit is not an invariant violation — just not a
            // coalesced one, which the report's invariant check catches.
        }
    }
}

/// Phase 2: sweep the shared working set in a session-rotated order,
/// computing-on-ownership and recording concurrent duplicates.
fn run_shared_sweep(cache: &LineageCache, p: &ServeParams, s: usize, ledger: &Mutex<SharedLedger>) {
    let _span = memphis_obs::span(cat::SERVE, "shared_sweep");
    for j in 0..p.shared_items {
        let idx = (s + j) % p.shared_items;
        let item = shared_item(idx);
        match cache.probe_or_begin(&item) {
            Probed::Hit(_) | Probed::Coalesced(_) => {}
            Probed::Compute(guard) => {
                {
                    let mut led = ledger.lock();
                    if !led.in_progress.insert(idx) {
                        led.duplicates += 1;
                    }
                }
                let m = shared_payload(idx);
                let size = m.size_bytes();
                let obj = CachedObject::Matrix(Arc::new(m));
                // High cost keeps unpinned shared entries score-favoured
                // over cheap churn, without exempting them from eviction.
                if idx < p.pinned_items {
                    cache.complete_pinned(guard, obj, 100.0, size);
                } else {
                    cache.complete(guard, obj, 100.0, size, 1);
                }
                let mut led = ledger.lock();
                led.in_progress.remove(&idx);
                *led.counts.entry(idx).or_insert(0) += 1;
            }
        }
    }
}

/// Phase 3: run the session's pipeline over the shared cache, then churn
/// private puts through the local budget.
fn run_session_pipeline(cache: &Arc<LineageCache>, p: &ServeParams, s: usize) -> (String, f64) {
    let _span = memphis_obs::span(cat::SERVE, "pipeline");
    let kind = pipelines::session_kind(p.seed, s);
    let mut ctx = pipelines::session_context(cache);
    let check = pipelines::run_session_kind(&mut ctx, kind).expect("serving pipeline failed");

    let _churn_span = memphis_obs::span(cat::SERVE, "churn");
    for r in 0..p.churn_rounds {
        let item = LineageItem::leaf(&format!("serve/churn_s{s}_r{r}"));
        let m = Matrix::zeros(16, 16);
        let size = m.size_bytes();
        cache.put(&item, CachedObject::Matrix(Arc::new(m)), 1.0, size, 1);
    }
    (kind.to_string(), check)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_coalesces_and_defers_pinned_eviction() {
        let p = ServeParams::test(4, 42);
        let r = run_serve(&p);
        assert!(r.invariants_hold(&p), "invariants failed: {r:?}");
        assert_eq!(r.rendezvous_coalesced, 3);
        assert_eq!(r.duplicate_shared_computes, 0);
        assert_eq!(r.pinned_survivors, p.pinned_items);
        assert!(r.reuse.coalesced_hits >= 3);
    }

    #[test]
    fn same_pipeline_sessions_agree_on_checksums() {
        // 8 sessions, 4 pipelines: each pipeline runs twice; both runs
        // share lineage through the common cache and must agree.
        let p = ServeParams::test(8, 7);
        let r = run_serve(&p);
        let mut by_kind: HashMap<&str, Vec<f64>> = HashMap::new();
        for (k, c) in &r.checks {
            by_kind.entry(k.as_str()).or_default().push(*c);
        }
        assert_eq!(by_kind.len(), 4);
        for (k, cs) in by_kind {
            assert_eq!(cs.len(), 2);
            assert!(
                (cs[0] - cs[1]).abs() < 1e-9,
                "{k} checksums diverged: {cs:?}"
            );
        }
    }

    #[test]
    fn warm_restart_serves_disk_hits_exactly_once() {
        let p = ServeParams::test(4, 42);
        let dir = std::env::temp_dir().join(format!("memphis_warm_restart_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = run_warm_restart(&p, &dir);
        let _ = std::fs::remove_dir_all(&dir);

        assert!(r.spilled_before_restart > 0, "{r:?}");
        assert_eq!(r.entries_recovered, r.spilled_before_restart, "{r:?}");
        assert!(r.entries_rehydrated > 0, "{r:?}");
        assert!(r.disk_warm_hits > 0, "{r:?}");
        assert_eq!(r.duplicate_shared_computes, 0, "{r:?}");
        assert!(r.max_completions_per_id <= 1, "{r:?}");
        // Everything the restart lost is computed; everything durable is
        // served warm.
        assert_eq!(
            r.phase_b_computes + r.entries_recovered,
            p.shared_items as u64,
            "{r:?}"
        );
        assert_eq!(r.reuse.hits + r.reuse.misses, r.reuse.probes, "{r:?}");
    }

    #[test]
    fn single_session_degenerates_cleanly() {
        let p = ServeParams::test(1, 1);
        let r = run_serve(&p);
        assert_eq!(r.rendezvous_coalesced, 0);
        assert!(r.invariants_hold(&p));
    }
}
