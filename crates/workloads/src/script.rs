//! Script workload harness: binds `read(...)` declarations of compiled
//! scripts to the deterministic dataset generators, executes the lowered
//! program, and digests the printed sinks. On top of that sits the
//! structured differential runner of the memphis-script fuzzer: every
//! program is executed reuse-on vs reuse-off, `Paper` vs `DelayedHits`,
//! and warm-restart-after-spill, asserting bit-identical sink digests;
//! divergences are minimized and persisted as runnable `.dml` repros.

use crate::data;
use crate::harness::Backends;
use memphis_core::cache::config::{CacheConfig, CachePolicy};
use memphis_engine::compiler::Ordering;
use memphis_engine::context::{EngineError, Result as EngineResult};
use memphis_engine::interp::run_program;
use memphis_engine::{EngineConfig, ExecutionContext, ReuseMode, Value};
use memphis_matrix::ops::binary::{binary_scalar, BinaryOp};
use memphis_matrix::rand_gen::rand_uniform;
use memphis_matrix::Matrix;
use memphis_script::{Compiled, ReadSpec};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// The committed corpus: the four builder-pipeline ports plus the three
/// script-only pipelines, embedded at compile time so every binary sees
/// the same bytes.
pub const CORPUS: &[(&str, &str)] = &[
    ("hcv", include_str!("../corpus/hcv.dml")),
    ("pnmf", include_str!("../corpus/pnmf.dml")),
    ("hband", include_str!("../corpus/hband.dml")),
    ("tlvis", include_str!("../corpus/tlvis.dml")),
    ("cvgrid", include_str!("../corpus/cvgrid.dml")),
    ("ensemble", include_str!("../corpus/ensemble.dml")),
    ("minibatch", include_str!("../corpus/minibatch.dml")),
];

/// Source text of a corpus script by name.
pub fn corpus_source(name: &str) -> Option<&'static str> {
    CORPUS.iter().find(|(n, _)| *n == name).map(|(_, s)| *s)
}

/// Resolves a script `read("name", r, c)` declaration to the matching
/// deterministic dataset (same generators and seeds as the builder
/// pipelines). Returns `None` for unknown names or shape mismatches.
pub fn resolve_read(spec: &ReadSpec) -> Option<Matrix> {
    let (kind, arg) = spec.name.split_once('/')?;
    let m = match (kind, arg) {
        // HCV folds: regression(rows_per_fold, cols, 0.1, 1 + fold), as
        // in pipelines/hcv.rs. X and y come from the same draw, so the
        // y resolver regenerates with the corpus feature width.
        ("hcv", a) if a.starts_with('X') => {
            let f: u64 = a[1..].parse().ok()?;
            data::regression(spec.rows, spec.cols, 0.1, 1 + f).0
        }
        ("hcv", a) if a.starts_with('y') => {
            let f: u64 = a[1..].parse().ok()?;
            data::regression(spec.rows, 4, 0.1, 1 + f).1
        }
        // PNMF ratings with the +0.1 zero shift of pipelines/pnmf.rs.
        ("pnmf", "X") => binary_scalar(
            &data::movielens_like(spec.rows, spec.cols, 0.3, 2),
            0.1,
            BinaryOp::Add,
            false,
        ),
        ("hband", "X") => data::classification(spec.rows, spec.cols, 3).0,
        ("hband", "y") => data::classification(spec.rows, 4, 3).1,
        ("tlvis", "images") => data::images(spec.rows, 3, 8, 0.0, 7),
        ("cv", "X") => data::regression(spec.rows, spec.cols, 0.1, 21).0,
        ("cv", "y") => data::regression(spec.rows, 5, 0.1, 21).1,
        ("ens", "X") => data::regression(spec.rows, spec.cols, 0.1, 22).0,
        ("ens", "y") => data::regression(spec.rows, 4, 0.1, 22).1,
        ("mb", "X") => data::regression(spec.rows, spec.cols, 0.1, 23).0,
        ("mb", "y") => data::regression(spec.rows, 4, 0.1, 23).1,
        // Generic fallback for generated programs and ad-hoc scripts.
        ("uniform", s) => rand_uniform(spec.rows, spec.cols, -1.0, 1.0, s.parse().ok()?),
        _ => return None,
    };
    (m.shape() == (spec.rows, spec.cols)).then_some(m)
}

/// Result of one script execution.
#[derive(Debug, Clone)]
pub struct ScriptOutcome {
    /// FNV fold over the printed sinks' value bits, in print order.
    pub digest: u64,
    /// Per-sink bits (scalar f64 bits or matrix fingerprint).
    pub sinks: Vec<(String, u64)>,
    /// Interned lineage id of each printed sink (None when tracing off).
    pub lineage: Vec<(String, Option<u64>)>,
    /// Nodes in the lowered program.
    pub nodes: usize,
}

/// Binds every `read` declaration of a compiled script into the context.
pub fn bind_reads(ctx: &mut ExecutionContext, c: &Compiled) -> EngineResult<()> {
    for spec in &c.reads {
        let m = resolve_read(spec).ok_or_else(|| {
            EngineError::Unsupported(format!("no dataset resolver for read(\"{}\")", spec.name))
        })?;
        ctx.read(&spec.var, m, &spec.name)?;
    }
    Ok(())
}

/// Digests a list of result variables: scalars (and 1x1 matrices, which
/// reuse may interchange with scalars) fold their f64 bits, matrices
/// their fingerprint. Shared by script runs and their builder twins so
/// bit-identity is compared on exactly the same bytes.
pub fn sink_digest(
    ctx: &mut ExecutionContext,
    sinks: &[String],
) -> EngineResult<(u64, Vec<(String, u64)>)> {
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut per = Vec::new();
    for s in sinks {
        let shape = ctx.value(s)?.shape();
        let bits = if shape == Some((1, 1)) || matches!(ctx.value(s)?, Value::Scalar(_)) {
            ctx.get_scalar(s)?.to_bits()
        } else {
            ctx.get_matrix(s)?.fingerprint()
        };
        digest ^= bits;
        digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
        per.push((s.clone(), bits));
    }
    Ok((digest, per))
}

/// Executes a compiled script end-to-end in `ctx` and digests its sinks.
pub fn run_compiled(ctx: &mut ExecutionContext, c: &Compiled) -> EngineResult<ScriptOutcome> {
    bind_reads(ctx, c)?;
    run_program(ctx, &c.program, Ordering::DepthFirst)?;
    let (digest, sinks) = sink_digest(ctx, &c.prints)?;
    let lineage = c
        .prints
        .iter()
        .map(|p| (p.clone(), ctx.lineage_of(p).map(|l| l.lid.content_hash())))
        .collect();
    Ok(ScriptOutcome {
        digest,
        sinks,
        lineage,
        nodes: c.node_count() as usize,
    })
}

/// Compiles and runs script source text in `ctx`.
pub fn run_source(ctx: &mut ExecutionContext, src: &str) -> Result<ScriptOutcome, String> {
    let c = memphis_script::compile(src).map_err(|e| e.to_string())?;
    run_compiled(ctx, &c).map_err(|e| format!("{e:?}"))
}

/// Runs a corpus script by name under the serving configuration of the
/// supplied context, returning a deterministic f64 checksum (the sink
/// digest) — the scripted analogue of `pipelines::run_session_kind`.
pub fn run_corpus(ctx: &mut ExecutionContext, name: &str) -> EngineResult<f64> {
    let src = corpus_source(name)
        .ok_or_else(|| EngineError::Unsupported(format!("unknown corpus script {name}")))?;
    let c = memphis_script::compile(src)
        .map_err(|e| EngineError::Unsupported(format!("corpus script {name}: {e}")))?;
    let o = run_compiled(ctx, &c)?;
    Ok(o.digest as f64)
}

// ----------------------------------------------------------------------
// Differential runner
// ----------------------------------------------------------------------

static DIFF_RUN: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIFF_RUN.fetch_add(1, AtomicOrdering::Relaxed);
    std::env::temp_dir().join(format!(
        "memphis_script_{}_{}_{}",
        tag,
        std::process::id(),
        n
    ))
}

fn local_ctx(reuse: ReuseMode, cache: CacheConfig) -> ExecutionContext {
    Backends::local().make_ctx(EngineConfig::test().with_reuse(reuse), cache)
}

/// Runs one compiled program under every differential configuration and
/// returns the labeled sink digests:
/// reuse-on (Memphis + `Paper`), reuse-off, delayed-hits (Memphis +
/// `DelayedHits`), and warm-restart (persist, drop the cache, rehydrate
/// over the same directory, re-run).
pub fn differential_digests(c: &Compiled, tag: &str) -> EngineResult<Vec<(&'static str, u64)>> {
    let mut out = Vec::new();

    let mut ctx = local_ctx(ReuseMode::Memphis, CacheConfig::test());
    out.push(("reuse-on", run_compiled(&mut ctx, c)?.digest));

    let mut ctx = local_ctx(ReuseMode::None, CacheConfig::test());
    out.push(("reuse-off", run_compiled(&mut ctx, c)?.digest));

    let mut cfg = CacheConfig::test();
    cfg.policy = CachePolicy::DelayedHits;
    let mut ctx = local_ctx(ReuseMode::Memphis, cfg);
    out.push(("delayed-hits", run_compiled(&mut ctx, c)?.digest));

    let dir = fresh_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut cfg = CacheConfig::test();
        cfg.persist_dir = Some(dir.clone());
        let mut ctx = local_ctx(ReuseMode::Memphis, cfg);
        run_compiled(&mut ctx, c)?;
    }
    let mut cfg = CacheConfig::test();
    cfg.persist_dir = Some(dir.clone());
    cfg.rehydrate_budget = Some(1 << 20);
    let mut ctx = local_ctx(ReuseMode::Memphis, cfg);
    let warm = run_compiled(&mut ctx, c)?.digest;
    drop(ctx);
    let _ = std::fs::remove_dir_all(&dir);
    out.push(("warm-restart", warm));

    Ok(out)
}

/// True when every configuration produced the same digest.
pub fn digests_agree(digests: &[(&'static str, u64)]) -> bool {
    digests.windows(2).all(|w| w[0].1 == w[1].1)
}

fn source_diverges(src: &str, tag: &str) -> bool {
    match memphis_script::compile(src) {
        Ok(c) => match differential_digests(&c, tag) {
            Ok(d) => !digests_agree(&d),
            Err(_) => true, // a config-dependent runtime error is a divergence
        },
        Err(_) => false,
    }
}

/// Outcome of a fuzz campaign.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Programs generated and executed.
    pub programs: u64,
    /// Programs whose configurations disagreed.
    pub divergences: u64,
    /// Total lowered nodes across all programs.
    pub lowered_nodes: u64,
    /// Minimized repro files written (one per divergence).
    pub repros: Vec<PathBuf>,
}

/// Generates `count` seeded programs and runs the full differential on
/// each. Divergences are shrunk with the statement minimizer and written
/// to `repro_dir` (when given) as runnable `.dml` files.
pub fn fuzz_campaign(seed: u64, count: u64, repro_dir: Option<&Path>) -> FuzzReport {
    let mut rep = FuzzReport::default();
    for i in 0..count {
        let src = memphis_script::fuzz::gen_program(seed, i);
        let c = memphis_script::compile(&src)
            .unwrap_or_else(|e| panic!("generated program must compile: {e}\n{src}"));
        rep.programs += 1;
        rep.lowered_nodes += c.node_count() as u64;
        let tag = format!("fz{seed}_{i}");
        let digests = differential_digests(&c, &tag)
            .unwrap_or_else(|e| panic!("generated program must run: {e:?}\n{src}"));
        if digests_agree(&digests) {
            continue;
        }
        rep.divergences += 1;
        let minimized = memphis_script::fuzz::minimize(&src, |cand| source_diverges(cand, &tag));
        if let Some(dir) = repro_dir {
            let _ = std::fs::create_dir_all(dir);
            let path = dir.join(format!("repro_{seed}_{i}.dml"));
            let body = format!("# divergence: {digests:?}\n# seed={seed} index={i}\n{minimized}");
            if std::fs::write(&path, body).is_ok() {
                rep.repros.push(path);
            }
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use memphis_engine::ops::AggDir;
    use memphis_matrix::ops::agg::AggOp;
    use memphis_matrix::ops::unary::UnaryOp;

    fn mph_ctx() -> ExecutionContext {
        local_ctx(ReuseMode::Memphis, CacheConfig::test())
    }

    fn run_corpus_outcome(name: &str) -> ScriptOutcome {
        let src = corpus_source(name).unwrap();
        let c = memphis_script::compile(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut ctx = mph_ctx();
        run_compiled(&mut ctx, &c).unwrap_or_else(|e| panic!("{name}: {e:?}"))
    }

    #[test]
    fn every_corpus_script_compiles_and_runs() {
        for (name, _) in CORPUS {
            let o = run_corpus_outcome(name);
            assert!(o.nodes > 0);
            assert!(!o.sinks.is_empty());
            for (s, l) in &o.lineage {
                assert!(l.is_some(), "{name}: sink {s} must carry lineage");
            }
        }
    }

    #[test]
    fn corpus_differential_holds() {
        for (name, src) in CORPUS {
            let c = memphis_script::compile(src).unwrap();
            let d = differential_digests(&c, name).unwrap();
            assert!(digests_agree(&d), "{name}: {d:?}");
        }
    }

    // ------------------------------------------------------------------
    // Builder twins: the same dataflow issued directly through the
    // builder API. Lineage ids hash (opcode, data, input lineage) — never
    // variable names — so a script and its twin must intern identical ids
    // and produce bit-identical sink digests.
    // ------------------------------------------------------------------

    fn twin_digest(
        build: impl FnOnce(&mut ExecutionContext) -> EngineResult<Vec<String>>,
    ) -> (u64, Vec<Option<u64>>) {
        let mut ctx = mph_ctx();
        let sinks = build(&mut ctx).unwrap();
        let (digest, _) = sink_digest(&mut ctx, &sinks).unwrap();
        let lineage = sinks
            .iter()
            .map(|s| ctx.lineage_of(s).map(|l| l.lid.content_hash()))
            .collect();
        (digest, lineage)
    }

    fn assert_twin(name: &str, (digest, lineage): (u64, Vec<Option<u64>>)) {
        let o = run_corpus_outcome(name);
        assert_eq!(o.digest, digest, "{name}: digest differs from twin");
        let script_lineage: Vec<Option<u64>> = o.lineage.iter().map(|(_, l)| *l).collect();
        assert_eq!(script_lineage, lineage, "{name}: interned lineage differs");
    }

    #[test]
    fn hcv_script_matches_builder_twin() {
        let twin = twin_digest(|ctx| {
            use memphis_matrix::ops::binary::BinaryOp::*;
            for f in 0..3u64 {
                let (x, y) = data::regression(40, 4, 0.1, 1 + f);
                ctx.read(&format!("X{f}"), x, &format!("hcv/X{f}"))?;
                ctx.read(&format!("y{f}"), y, &format!("hcv/y{f}"))?;
            }
            ctx.literal("acc", 0.0)?;
            for reg in [0.1, 0.2, 0.4] {
                ctx.literal("reg", reg)?;
                for hold in 0..3usize {
                    let (a, b) = match hold {
                        0 => (1, 2),
                        1 => (0, 2),
                        _ => (0, 1),
                    };
                    ctx.tsmm("ga", &format!("X{a}"))?;
                    ctx.tsmm("gb", &format!("X{b}"))?;
                    ctx.binary("G", "ga", "gb", Add)?;
                    ctx.xty("ba", &format!("X{a}"), &format!("y{a}"))?;
                    ctx.xty("bb", &format!("X{b}"), &format!("y{b}"))?;
                    ctx.binary("b", "ba", "bb", Add)?;
                    ctx.binary("A", "G", "reg", Add)?;
                    ctx.solve("w", "A", "b")?;
                    ctx.matmul("p", &format!("X{hold}"), "w")?;
                    ctx.binary("e", "p", &format!("y{hold}"), Sub)?;
                    ctx.binary("sq", "e", "e", Mul)?;
                    ctx.agg(&format!("m{hold}"), "sq", AggOp::Mean, AggDir::Full)?;
                }
                ctx.binary("acc1", "acc", "m0", Add)?;
                ctx.binary("acc2", "acc1", "m1", Add)?;
                ctx.binary("acc", "acc2", "m2", Add)?;
            }
            Ok(vec!["acc".into(), "w".into()])
        });
        assert_twin("hcv", twin);
    }

    #[test]
    fn pnmf_script_matches_builder_twin() {
        let twin = twin_digest(|ctx| {
            use memphis_matrix::ops::binary::BinaryOp::*;
            let x = binary_scalar(&data::movielens_like(64, 16, 0.3, 2), 0.1, Add, false);
            ctx.read("X", x, "pnmf/X")?;
            ctx.rand("W", 64, 4, 0.1, 1.0, 3)?;
            ctx.rand("H", 4, 16, 0.1, 1.0, 4)?;
            ctx.literal("loss", 0.0)?;
            for it in [1.0, 2.0, 3.0] {
                ctx.literal("it", it)?;
                ctx.matmul("WH", "W", "H")?;
                ctx.binary("R", "X", "WH", Div)?;
                ctx.xty("Hnum", "W", "R")?;
                ctx.agg("Wcs", "W", AggOp::Sum, AggDir::Col)?;
                ctx.transpose("Wcs_t", "Wcs")?;
                ctx.binary("Hs", "Hnum", "Wcs_t", Div)?;
                ctx.binary("H", "H", "Hs", Mul)?;
                ctx.transpose("Ht", "H")?;
                ctx.matmul("RHt", "R", "Ht")?;
                ctx.agg("Hrs", "H", AggOp::Sum, AggDir::Row)?;
                ctx.transpose("Hrs_t", "Hrs")?;
                ctx.binary("Ws", "RHt", "Hrs_t", Div)?;
                ctx.binary("W", "W", "Ws", Mul)?;
                ctx.checkpoint("W")?;
                ctx.matmul("WH2", "W", "H")?;
                ctx.binary("D", "X", "WH2", Sub)?;
                ctx.binary("D2", "D", "D", Mul)?;
                ctx.agg("loss", "D2", AggOp::Sum, AggDir::Full)?;
            }
            Ok(vec!["loss".into(), "W".into(), "H".into()])
        });
        assert_twin("pnmf", twin);
    }

    #[test]
    fn hband_script_matches_builder_twin() {
        let twin = twin_digest(|ctx| {
            use memphis_matrix::ops::binary::BinaryOp::*;
            let (x, y) = data::classification(60, 4, 3);
            ctx.read("X", x, "hband/X")?;
            ctx.read("y", y, "hband/y")?;
            // parfor-unrolled training: const hyper-parameters fold to
            // binary_const, exactly like inlined const function params.
            let step = |ctx: &mut ExecutionContext, w: &str, reg: f64, sig: bool| {
                ctx.matmul("p0", "X", w)?;
                let pred = if sig {
                    ctx.unary("p", "p0", UnaryOp::Sigmoid)?;
                    "p"
                } else {
                    "p0"
                };
                ctx.binary("e", pred, "y", Sub)?;
                ctx.xty("g0", "X", "e")?;
                ctx.binary_const("rw", w, reg, Mul, false)?;
                ctx.binary("g", "g0", "rw", Add)?;
                ctx.binary_const("st", "g", 0.002, Mul, false)?;
                ctx.binary(w, w, "st", Sub)
            };
            ctx.rand("w1", 4, 1, 0.0, 0.0, 7)?;
            for _ in 0..3 {
                step(ctx, "w1", 0.01, false)?;
            }
            ctx.rand("w2", 4, 1, 0.0, 0.0, 11)?;
            for _ in 0..3 {
                step(ctx, "w2", 0.02, true)?;
            }
            ctx.matmul("P1", "X", "w1")?;
            ctx.matmul("P2", "X", "w2")?;
            ctx.literal("best", 1e9)?;
            for a in [0.0, 0.25, 0.5, 0.75] {
                ctx.literal("a", a)?;
                ctx.binary("P1w", "P1", "a", Mul)?;
                ctx.binary_const("na", "a", 1.0, Sub, true)?;
                ctx.binary("P2w", "P2", "na", Mul)?;
                ctx.binary("P", "P1w", "P2w", Add)?;
                ctx.binary("E", "P", "y", Sub)?;
                ctx.binary("E2", "E", "E", Mul)?;
                ctx.agg("s", "E2", AggOp::Mean, AggDir::Full)?;
                ctx.binary("best", "best", "s", Min)?;
            }
            Ok(vec!["best".into(), "w1".into(), "w2".into()])
        });
        assert_twin("hband", twin);
    }

    #[test]
    fn tlvis_script_matches_builder_twin() {
        use memphis_matrix::ops::nn::{Conv2dParams, Pool2dParams};
        let twin = twin_digest(|ctx| {
            use memphis_matrix::ops::binary::BinaryOp::*;
            ctx.read("IMG", data::images(8, 3, 8, 0.0, 7), "tlvis/images")?;
            let conv = |inc: usize, outc: usize, side: usize| Conv2dParams {
                in_channels: inc,
                out_channels: outc,
                height: side,
                width: side,
                kernel: 3,
                stride: 1,
                pad: 1,
            };
            ctx.rand("Wc", 8, 27, -0.3, 0.3, 300)?;
            ctx.conv2d("c1", "IMG", "Wc", conv(3, 8, 8))?;
            ctx.unary("C1", "c1", UnaryOp::Relu)?;
            ctx.max_pool2d(
                "P1",
                "C1",
                Pool2dParams {
                    channels: 8,
                    height: 8,
                    width: 8,
                    window: 2,
                    stride: 2,
                },
            )?;
            ctx.rand("Wf", 128, 16, -0.3, 0.3, 400)?;
            ctx.rand("bf", 1, 16, 0.0, 0.0, 500)?;
            ctx.affine("a1", "P1", "Wf", "bf")?;
            ctx.unary("F1", "a1", UnaryOp::Relu)?;
            ctx.agg("vc0", "P1", AggOp::Var, AggDir::Col)?;
            ctx.agg("v0", "vc0", AggOp::Mean, AggDir::Full)?;
            ctx.agg("vc1", "F1", AggOp::Var, AggDir::Col)?;
            ctx.agg("v1", "vc1", AggOp::Mean, AggDir::Full)?;
            ctx.evict_gpu(1.0);
            ctx.rand("Wc2", 8, 27, -0.3, 0.3, 310)?;
            ctx.conv2d("c2", "IMG", "Wc2", conv(3, 8, 8))?;
            ctx.unary("C2", "c2", UnaryOp::Relu)?;
            ctx.max_pool2d(
                "P2",
                "C2",
                Pool2dParams {
                    channels: 8,
                    height: 8,
                    width: 8,
                    window: 2,
                    stride: 2,
                },
            )?;
            ctx.rand("Wc3", 16, 72, -0.3, 0.3, 311)?;
            ctx.conv2d("c3", "P2", "Wc3", conv(8, 16, 4))?;
            ctx.unary("C3", "c3", UnaryOp::Relu)?;
            ctx.rand("Wf2", 256, 16, -0.3, 0.3, 410)?;
            ctx.rand("bf2", 1, 16, 0.0, 0.0, 510)?;
            ctx.affine("a2", "C3", "Wf2", "bf2")?;
            ctx.unary("F2", "a2", UnaryOp::Relu)?;
            ctx.agg("vc2", "C3", AggOp::Var, AggDir::Col)?;
            ctx.agg("v2", "vc2", AggOp::Mean, AggDir::Full)?;
            ctx.agg("vc3", "F2", AggOp::Var, AggDir::Col)?;
            ctx.agg("v3", "vc3", AggOp::Mean, AggDir::Full)?;
            ctx.binary("s01", "v0", "v1", Add)?;
            ctx.binary("s012", "s01", "v2", Add)?;
            ctx.binary("score", "s012", "v3", Add)?;
            Ok(vec!["score".into(), "F1".into(), "F2".into()])
        });
        assert_twin("tlvis", twin);
    }

    #[test]
    fn script_session_kinds_run_over_shared_cache() {
        // The three script-only pipelines as serving tenants: sessions
        // share one lineage cache, and per-kind checksums are stable
        // across sessions (the serve-harness invariant).
        use crate::pipelines::{self, SCRIPT_SESSION_MIX};
        use memphis_core::cache::LineageCache;
        use std::sync::Arc;
        let cache = Arc::new(LineageCache::new(CacheConfig::test()));
        let mut seen = std::collections::HashMap::new();
        for s in 0..6 {
            let kind = SCRIPT_SESSION_MIX[s % SCRIPT_SESSION_MIX.len()];
            let mut ctx = pipelines::session_context(&cache);
            let check = pipelines::run_session_kind(&mut ctx, kind).unwrap();
            let prev = seen.insert(kind, check);
            if let Some(p) = prev {
                assert_eq!(p, check, "{kind}: checksum must be session-stable");
            }
        }
        assert_eq!(seen.len(), 3);
        assert!(cache.stats().hits_local > 0, "tenants share reuse");
    }

    #[test]
    fn fuzz_smoke_is_divergence_free() {
        for seed in [42, 1337] {
            let rep = fuzz_campaign(seed, 10, None);
            assert_eq!(rep.programs, 10);
            assert_eq!(rep.divergences, 0, "seed {seed}: {rep:?}");
            assert!(rep.lowered_nodes > 0);
        }
    }

    #[test]
    fn minimizer_writes_runnable_repro_for_forced_divergence() {
        // Force a "divergence" through the minimizer path by shrinking a
        // program against a content oracle, then verify the output still
        // compiles and runs — the repro-file contract.
        let src = memphis_script::fuzz::gen_program(42, 0);
        let min = memphis_script::fuzz::minimize(&src, |s| s.contains("rand"));
        let c = memphis_script::compile(&min).unwrap();
        let mut ctx = mph_ctx();
        run_compiled(&mut ctx, &c).unwrap();
    }

    #[test]
    fn unknown_read_name_is_rejected() {
        let c = memphis_script::compile("Z = read(\"nope/xyz\", 2, 2);\nprint(Z);\n").unwrap();
        let mut ctx = mph_ctx();
        assert!(run_compiled(&mut ctx, &c).is_err());
    }
}
