//! Experiment harness: backend setup per configuration and timing helpers
//! shared by the integration tests and the benchmark binaries.

use memphis_core::cache::config::CacheConfig;
use memphis_core::cache::LineageCache;
use memphis_core::stats::ReuseStatsSnapshot;
use memphis_core::BackendSnapshot;
use memphis_engine::context::EngineStats;
use memphis_engine::{EngineConfig, ExecutionContext};
use memphis_gpusim::{GpuConfig, GpuDevice};
use memphis_sparksim::{SparkConfig, SparkContext};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The backends available to a workload run.
#[derive(Clone, Default)]
pub struct Backends {
    /// Simulated Spark cluster.
    pub sc: Option<SparkContext>,
    /// Simulated GPU device.
    pub gpu: Option<Arc<GpuDevice>>,
}

impl Backends {
    /// CPU only.
    pub fn local() -> Self {
        Self::default()
    }

    /// CPU + simulated Spark.
    pub fn with_spark(cfg: SparkConfig) -> Self {
        Self {
            sc: Some(SparkContext::new(cfg)),
            gpu: None,
        }
    }

    /// CPU + simulated GPU.
    pub fn with_gpu(cfg: GpuConfig) -> Self {
        Self {
            sc: None,
            gpu: Some(Arc::new(GpuDevice::new(cfg))),
        }
    }

    /// All three backends.
    pub fn full(spark: SparkConfig, gpu: GpuConfig) -> Self {
        Self {
            sc: Some(SparkContext::new(spark)),
            gpu: Some(Arc::new(GpuDevice::new(gpu))),
        }
    }

    /// Builds an execution context with a fresh lineage cache over these
    /// backends.
    pub fn make_ctx(&self, engine: EngineConfig, cache: CacheConfig) -> ExecutionContext {
        let mut c = LineageCache::new(cache);
        if let Some(sc) = &self.sc {
            c = c.with_spark(sc.clone());
        }
        if let Some(gpu) = &self.gpu {
            c = c.with_gpu(gpu.clone());
        }
        ExecutionContext::new(engine, Arc::new(c), self.sc.clone(), self.gpu.clone())
    }

    /// Like [`Backends::make_ctx`] with deterministic (inline) RDD
    /// materialization for tests.
    pub fn make_ctx_sync(&self, engine: EngineConfig, cache: CacheConfig) -> ExecutionContext {
        let mut c = LineageCache::new(cache);
        if let Some(sc) = &self.sc {
            c = c.with_spark_sync(sc.clone());
        }
        if let Some(gpu) = &self.gpu {
            c = c.with_gpu(gpu.clone());
        }
        ExecutionContext::new(engine, Arc::new(c), self.sc.clone(), self.gpu.clone())
    }
}

/// Result of one timed workload run.
#[derive(Debug, Clone)]
pub struct WorkloadOutcome {
    /// Configuration label (e.g. `"MPH"`, `"Base"`).
    pub label: String,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// A workload-defined checksum for cross-configuration result
    /// equivalence.
    pub check: f64,
    /// Engine counters.
    pub engine: EngineStats,
    /// Lineage-cache counters.
    pub reuse: ReuseStatsSnapshot,
    /// Per-backend usage/budget/entry snapshots from the cache registry,
    /// in registration order.
    pub backends: Vec<BackendSnapshot>,
}

/// Times a workload closure against a context and packages the outcome.
pub fn run_timed<F>(
    label: &str,
    ctx: &mut ExecutionContext,
    f: F,
) -> memphis_engine::context::Result<WorkloadOutcome>
where
    F: FnOnce(&mut ExecutionContext) -> memphis_engine::context::Result<f64>,
{
    let t0 = Instant::now();
    let check = f(ctx)?;
    let elapsed = t0.elapsed();
    Ok(WorkloadOutcome {
        label: label.to_string(),
        elapsed,
        check,
        engine: ctx.stats,
        reuse: ctx.cache().stats(),
        backends: ctx.cache().backend_snapshots(),
    })
}

/// Formats the per-backend snapshot block of an outcome (one indented
/// line per registered tier, sourced from `CacheBackend::snapshot`).
pub fn backend_rows(o: &WorkloadOutcome) -> String {
    o.backends
        .iter()
        .map(|s| format!("    {s}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Formats an outcome row for experiment reports.
pub fn outcome_row(o: &WorkloadOutcome) -> String {
    format!(
        "{:<10} {:>9.3}s  check={:<14.6} instr={:<8} reused={:<8} hits(l/r/g/f)={}/{}/{}/{}",
        o.label,
        o.elapsed.as_secs_f64(),
        o.check,
        o.engine.instructions,
        o.engine.reused,
        o.reuse.hits_local,
        o.reuse.hits_rdd,
        o.reuse.hits_gpu,
        o.reuse.hits_func,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use memphis_engine::ReuseMode;

    #[test]
    fn make_ctx_wires_backends() {
        let b = Backends::with_spark(SparkConfig::local_test());
        let ctx = b.make_ctx(EngineConfig::test(), CacheConfig::test());
        assert!(ctx.spark().is_some());
        assert!(ctx.gpu_device().is_none());
        let b = Backends::with_gpu(GpuConfig::zero_cost(1 << 20));
        let ctx = b.make_ctx(EngineConfig::test(), CacheConfig::test());
        assert!(ctx.gpu_device().is_some());
    }

    #[test]
    fn run_timed_reports_outcome() {
        let b = Backends::local();
        let mut ctx = b.make_ctx(
            EngineConfig::test().with_reuse(ReuseMode::Memphis),
            CacheConfig::test(),
        );
        let o = run_timed("t", &mut ctx, |c| {
            c.rand("X", 4, 4, 0.0, 1.0, 1)?;
            c.get_scalar("X").err(); // not a scalar; ignore
            Ok(42.0)
        })
        .unwrap();
        assert_eq!(o.check, 42.0);
        assert_eq!(o.engine.instructions, 1);
        assert!(!outcome_row(&o).is_empty());
        // Local + disk tiers always register; snapshots ride along.
        use memphis_core::BackendId;
        assert!(o.backends.iter().any(|s| s.id == BackendId::Local));
        assert!(o.backends.iter().any(|s| s.id == BackendId::Disk));
        assert!(backend_rows(&o).contains("local"));
    }

    #[test]
    fn outcome_snapshots_cover_attached_tiers() {
        let b = Backends::with_spark(SparkConfig::local_test());
        let mut ctx = b.make_ctx_sync(EngineConfig::test(), CacheConfig::test());
        let o = run_timed("sp", &mut ctx, |_| Ok(0.0)).unwrap();
        use memphis_core::BackendId;
        assert!(o.backends.iter().any(|s| s.id == BackendId::Spark));
    }
}
