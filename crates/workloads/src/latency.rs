//! Skewed multi-tenant latency harness: the delayed-hits demonstration
//! trace behind `exp_latency` and the `GATED_LATENCY` bench slice.
//!
//! Three request classes share one under-provisioned cache:
//!
//! * **fan-out** items arrive in coalesced batches — one probe serves
//!   the whole batch on a hit, but a miss stacks every batched arrival
//!   behind the same recompute (the delayed-hits effect). Per-probe
//!   reference counting systematically under-credits them: eq. (1)
//!   sees one probe where the serving layer sees a whole batch.
//! * **steady** items arrive singly and often — eq. (1) credits them
//!   fully and keeps them resident under either policy.
//! * **cold** items are scan-like pollution: rarely re-accessed,
//!   slightly costlier than a fan-out recompute. The pool exceeds the
//!   budget, so *something* must stay homeless; the right choice is the
//!   cold class.
//! * **stream** items are one-shot background traffic — a fresh
//!   identity every round, never re-accessed. Each admission forces an
//!   eviction decision, and that decision is where the policies part:
//!   eq. (1) scores a freshly readmitted fan-out entry `1 × c_fan`
//!   (refs count probes, not arrivals), *below* a disposable stream
//!   item's `c_stream`, so `Paper` evicts the batch-serving entry
//!   every round and its whole batch pays the recompute again next
//!   round. `DelayedHits` keeps the waiter-boosted fan-out entries and
//!   lets the stream churn itself.
//!
//! Under `CachePolicy::DelayedHits` the observed waiters-per-miss feed
//! the aggregate-delay term, fan-out entries out-score the cold
//! squatters, and the p99 of per-arrival virtual latency drops. The
//! stream of served objects is policy-independent by construction
//! (payloads are pure functions of the item), so the served digest is
//! bit-identical between policies — only latency and the new counters
//! may differ.
//!
//! Everything is single-threaded and seeded: arrivals come from
//! SplitMix64 decisions, groups are processed in class/index order, and
//! the digest is an order-sensitive FNV fold.

use memphis_core::cache::entry::CachedObject;
use memphis_core::cache::{LineageCache, MemoryPressure, Probed};
use memphis_core::lineage::{LItem, LineageItem};
use memphis_core::stats::ReuseStatsSnapshot;
use memphis_core::{CacheConfig, CachePolicy};
use std::sync::Arc;

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hash(seed: u64, salt: u64, coord: u64) -> u64 {
    mix(mix(seed ^ mix(salt)) ^ coord)
}

/// Uniform in [0, 1) from the top 53 bits.
fn decide(seed: u64, salt: u64, coord: u64) -> f64 {
    (hash(seed, salt, coord) >> 11) as f64 / (1u64 << 53) as f64
}

mod salt {
    pub const FANOUT: u64 = 0x1a7e_0001;
    pub const STEADY: u64 = 0x1a7e_0002;
    pub const COLD: u64 = 0x1a7e_0003;
    pub const STREAM: u64 = 0x1a7e_0004;
}

/// Virtual ticks a cache hit costs an arrival.
const HIT_TICKS: u64 = 1;

/// Parameters of one latency harness run.
#[derive(Debug, Clone)]
pub struct LatencyParams {
    /// Decision seed (every arrival pattern derives from it).
    pub seed: u64,
    /// Trace rounds driven.
    pub rounds: usize,
    /// Leading rounds excluded from the latency sample (cold-start
    /// compulsory misses are not the policy comparison's subject).
    pub warmup_rounds: usize,
    /// Fan-out class: distinct items.
    pub fanout_items: usize,
    /// Arrivals coalesced into each fan-out batch.
    pub fanout: usize,
    /// Per-round probability a fan-out item's batch arrives.
    pub fanout_prob: f64,
    /// Recompute cost (= miss latency in ticks) of fan-out items.
    pub cost_fanout: f64,
    /// Steady class: distinct items.
    pub steady_items: usize,
    /// Per-round probability a steady item arrives (singly).
    pub steady_prob: f64,
    /// Recompute cost of steady items.
    pub cost_steady: f64,
    /// Cold class: distinct items.
    pub cold_items: usize,
    /// Per-round probability a cold item arrives (singly).
    pub cold_prob: f64,
    /// Recompute cost of cold items — just above `cost_fanout`, so
    /// eq. (1) ranks a freshly readmitted fan-out entry *below* cold
    /// pollution and churns the wrong class.
    pub cost_cold: f64,
    /// One-shot stream items admitted per round (fresh identities,
    /// never re-accessed) — the constant admission pressure that forces
    /// an eviction decision every round. Must be at least the fan-out
    /// item count for the eq. (1) trap to close: every freshly
    /// readmitted fan-out entry must be evictable before its next
    /// batch probes it.
    pub stream_per_round: usize,
    /// Recompute cost of stream items — strictly between `cost_fanout`
    /// and `cost_cold`: above a fresh fan-out entry (so eq. (1) evicts
    /// the fan-out entry first) and below everything established.
    pub cost_stream: f64,
    /// Local budget in payload-sized slots (the item pool exceeds it).
    pub budget_slots: usize,
    /// Probe-map shards.
    pub shards: usize,
    /// Rounds `[from, to)` during which the harness reports `Shed`
    /// memory pressure (exercising the MURS-style admission gate).
    pub pressure_window: (usize, usize),
}

impl LatencyParams {
    /// The gated configuration: the full skewed trace behind
    /// `exp_latency` and the `GATED_LATENCY` baseline.
    pub fn gate(seed: u64) -> Self {
        Self {
            seed,
            rounds: 260,
            warmup_rounds: 20,
            fanout_items: 6,
            fanout: 16,
            fanout_prob: 0.5,
            cost_fanout: 20.0,
            steady_items: 20,
            steady_prob: 0.8,
            cost_steady: 100.0,
            cold_items: 16,
            cold_prob: 0.01,
            cost_cold: 30.0,
            stream_per_round: 6,
            cost_stream: 25.0,
            budget_slots: 30,
            shards: 8,
            pressure_window: (60, 220),
        }
    }

    /// A fast configuration for unit/property tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            rounds: 60,
            warmup_rounds: 8,
            fanout_items: 3,
            fanout: 8,
            fanout_prob: 0.5,
            cost_fanout: 20.0,
            steady_items: 8,
            steady_prob: 0.8,
            cost_steady: 100.0,
            cold_items: 6,
            cold_prob: 0.05,
            cost_cold: 30.0,
            stream_per_round: 3,
            cost_stream: 25.0,
            budget_slots: 12,
            shards: 4,
            pressure_window: (20, 50),
        }
    }
}

/// Outcome of one harness run.
#[derive(Debug, Clone)]
pub struct LatencyReport {
    /// Order-sensitive FNV fold of every served arrival's object
    /// fingerprint — policy-independent by construction.
    pub digest: u64,
    /// Arrivals served (warmup included).
    pub served: u64,
    /// Arrivals that coalesced behind another arrival's miss (batch
    /// size minus one, summed over missing fan-out batches).
    pub coalesced_arrivals: u64,
    /// Per-arrival virtual latency in ticks, post-warmup rounds only.
    /// Foreground classes (fan-out, steady, cold) only — the one-shot
    /// stream class is background traffic with no re-access and sits
    /// outside the serving SLO (its arrivals still flow into `served`
    /// and the digest).
    pub latencies: Vec<u64>,
    /// Cache counters at the end of the run.
    pub reuse: ReuseStatsSnapshot,
}

/// The trace's lineage item for class `class` ("fan", "std", "cold")
/// and index `i`.
pub fn latency_item(class: &str, i: usize) -> LItem {
    LineageItem::leaf(&format!("latency/{class}{i}"))
}

/// Deterministic payload of an item: a 16x16 embedding matrix (~2 KiB)
/// whose fingerprint depends only on the class salt and index.
pub fn latency_payload(class_salt: u64, i: usize) -> CachedObject {
    CachedObject::Matrix(Arc::new(crate::data::embeddings(
        16,
        16,
        class_salt ^ (i as u64),
    )))
}

/// One arrival group of a round: `group` arrivals of the same item
/// probing once (the serving layer coalesces them).
struct Group {
    item: LItem,
    class_salt: u64,
    index: usize,
    cost: f64,
    arrivals: u64,
    tenant: u16,
    /// Foreground arrivals contribute latency samples; background
    /// (stream) arrivals do not.
    foreground: bool,
}

/// Drives the skewed trace under `policy` and returns the report.
/// Single-threaded: groups are processed in class/index order, so the
/// digest and every counter are deterministic functions of the params.
pub fn run_latency(p: &LatencyParams, policy: CachePolicy) -> LatencyReport {
    assert!(p.rounds > p.warmup_rounds && p.fanout >= 2 && p.budget_slots >= 2);
    let _span = memphis_obs::span_with(memphis_obs::cat::CACHE, "latency_harness", || {
        format!("seed={} rounds={} policy={policy:?}", p.seed, p.rounds)
    });
    let payload_bytes = match latency_payload(salt::FANOUT, 0) {
        CachedObject::Matrix(m) => m.size_bytes(),
        _ => unreachable!(),
    };
    let mut config = CacheConfig::test();
    config.local_budget = payload_bytes * p.budget_slots;
    config.shards = p.shards;
    config.spill_to_disk = false;
    config.policy = policy;
    let cache = LineageCache::new(config);

    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        digest ^= v;
        digest = digest.wrapping_mul(0x1000_0000_01b3);
    };
    let mut served = 0u64;
    let mut coalesced_arrivals = 0u64;
    let mut latencies: Vec<u64> = Vec::new();

    for round in 0..p.rounds {
        let in_window = round >= p.pressure_window.0 && round < p.pressure_window.1;
        cache.set_memory_pressure(if in_window {
            MemoryPressure::Shed
        } else {
            MemoryPressure::Normal
        });

        // Deterministic arrival groups, in class/index order.
        let mut groups: Vec<Group> = Vec::new();
        for i in 0..p.fanout_items {
            if decide(p.seed, salt::FANOUT, (round * 1024 + i) as u64) < p.fanout_prob {
                groups.push(Group {
                    item: latency_item("fan", i),
                    class_salt: salt::FANOUT,
                    index: i,
                    cost: p.cost_fanout,
                    arrivals: p.fanout as u64,
                    tenant: 0,
                    foreground: true,
                });
            }
        }
        for i in 0..p.steady_items {
            if decide(p.seed, salt::STEADY, (round * 1024 + i) as u64) < p.steady_prob {
                groups.push(Group {
                    item: latency_item("std", i),
                    class_salt: salt::STEADY,
                    index: i,
                    cost: p.cost_steady,
                    arrivals: 1,
                    tenant: 1,
                    foreground: true,
                });
            }
        }
        for i in 0..p.cold_items {
            if decide(p.seed, salt::COLD, (round * 1024 + i) as u64) < p.cold_prob {
                groups.push(Group {
                    item: latency_item("cold", i),
                    class_salt: salt::COLD,
                    index: i,
                    cost: p.cost_cold,
                    arrivals: 1,
                    tenant: 2,
                    foreground: true,
                });
            }
        }
        // One-shot stream admissions close the round: a freshly
        // readmitted fan-out entry has to survive them to ever be
        // probed again.
        for j in 0..p.stream_per_round {
            let idx = round * 64 + j;
            groups.push(Group {
                item: latency_item("stream", idx),
                class_salt: salt::STREAM,
                index: idx,
                cost: p.cost_stream,
                arrivals: 1,
                tenant: 3,
                foreground: false,
            });
        }

        for g in groups {
            let per_arrival = match cache.probe_or_begin_as(&g.item, Some(g.tenant)) {
                Probed::Hit(hit) | Probed::Coalesced(hit) => {
                    let f = fingerprint_of(&hit.object);
                    for _ in 0..g.arrivals {
                        fold(f);
                    }
                    HIT_TICKS
                }
                Probed::Compute(guard) => {
                    let obj = latency_payload(g.class_salt, g.index);
                    let f = fingerprint_of(&obj);
                    cache.complete(guard, obj, g.cost, payload_bytes, 1);
                    // Every batched arrival beyond the first coalesced
                    // behind this miss — the aggregate-delay evidence.
                    if g.arrivals > 1 {
                        cache.note_miss_waiters(&g.item, g.arrivals - 1);
                        coalesced_arrivals += g.arrivals - 1;
                    }
                    for _ in 0..g.arrivals {
                        fold(f);
                    }
                    g.cost as u64
                }
            };
            served += g.arrivals;
            if g.foreground && round >= p.warmup_rounds {
                for _ in 0..g.arrivals {
                    latencies.push(per_arrival);
                }
            }
        }
    }

    LatencyReport {
        digest,
        served,
        coalesced_arrivals,
        latencies,
        reuse: cache.stats(),
    }
}

fn fingerprint_of(o: &CachedObject) -> u64 {
    match o {
        CachedObject::Matrix(m) => m.fingerprint(),
        CachedObject::Scalar(s) => s.to_bits(),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_is_deterministic() {
        let a = run_latency(&LatencyParams::tiny(7), CachePolicy::Paper);
        let b = run_latency(&LatencyParams::tiny(7), CachePolicy::Paper);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.served, b.served);
        assert_eq!(a.latencies, b.latencies);
        assert_eq!(a.reuse, b.reuse);
    }

    #[test]
    fn policies_serve_identical_streams() {
        let paper = run_latency(&LatencyParams::tiny(42), CachePolicy::Paper);
        let mad = run_latency(&LatencyParams::tiny(42), CachePolicy::DelayedHits);
        assert_eq!(
            paper.digest, mad.digest,
            "served bytes must not depend on policy"
        );
        assert_eq!(paper.served, mad.served);
    }

    #[test]
    fn paper_policy_reports_zero_new_counters() {
        let paper = run_latency(&LatencyParams::tiny(42), CachePolicy::Paper);
        assert_eq!(paper.reuse.mad_evictions, 0);
        assert_eq!(paper.reuse.ttna_admission_rejects, 0);
        assert_eq!(paper.reuse.delayed_hit_ticks_saved, 0);
    }
}
