//! The seven end-to-end ML pipelines of §6.3 (Table 3), each parameterized
//! so the benchmark harness can sweep the paper's x-axes at reduced scale.

pub mod clean;
pub mod en2de;
pub mod hband;
pub mod hcv;
pub mod hdrop;
pub mod pnmf;
pub mod tlvis;
