//! The seven end-to-end ML pipelines of §6.3 (Table 3), each parameterized
//! so the benchmark harness can sweep the paper's x-axes at reduced scale.

pub mod clean;
pub mod en2de;
pub mod hband;
pub mod hcv;
pub mod hdrop;
pub mod pnmf;
pub mod tlvis;

use memphis_core::cache::LineageCache;
use memphis_engine::context::Result;
use memphis_engine::{EngineConfig, ExecutionContext, ReuseMode};
use std::sync::Arc;

/// The serving pipeline mix shared by the PR 4 rendezvous harness
/// ([`crate::serve`]) and the memphis-serve scheduler: session `s` of a
/// run seeded `seed` gets [`session_kind`]`(seed, s)`.
pub const SESSION_MIX: [&str; 4] = ["hcv", "pnmf", "hband", "tlvis"];

/// The pipeline kind assigned to session `s` under `seed`.
pub fn session_kind(seed: u64, s: usize) -> &'static str {
    SESSION_MIX[((seed as usize) + s) % SESSION_MIX.len()]
}

/// The script-only tenant pipelines (PR 10): corpus `.dml` programs that
/// have no builder-API counterpart, routable through
/// [`run_session_kind`] like any other serving workload. Kept separate
/// from [`SESSION_MIX`] so the gated serve counters are unchanged.
pub const SCRIPT_SESSION_MIX: [&str; 3] = ["cvgrid", "ensemble", "minibatch"];

/// Builds a session execution context over a shared lineage cache with
/// MEMPHIS reuse on (the serving-layer configuration).
pub fn session_context(cache: &Arc<LineageCache>) -> ExecutionContext {
    ExecutionContext::new(
        EngineConfig::test().with_reuse(ReuseMode::Memphis),
        Arc::clone(cache),
        None,
        None,
    )
}

/// Runs one session pipeline of `kind` (a [`SESSION_MIX`] or
/// [`SCRIPT_SESSION_MIX`] name) at test scale, returning its checksum.
/// Unknown kinds fall back to tlvis, matching the historical
/// serving-harness dispatch.
pub fn run_session_kind(ctx: &mut ExecutionContext, kind: &str) -> Result<f64> {
    match kind {
        "hcv" => hcv::run(ctx, &hcv::HcvParams::small()),
        "pnmf" => pnmf::run(ctx, &pnmf::PnmfParams::small()),
        "hband" => hband::run(ctx, &hband::HbandParams::small()),
        "cvgrid" | "ensemble" | "minibatch" => crate::script::run_corpus(ctx, kind),
        _ => tlvis::run(ctx, &tlvis::TlvisParams::small()),
    }
}
