//! HDROP: grid search over the dropout rate of an autoencoder
//! (Figure 14(b)). Every epoch re-applies the batch-wise input data
//! pipeline (binning, recoding, one-hot encoding, normalization) — the
//! paper's IDP — whose results are dropout-rate- and epoch-independent
//! and therefore reusable; the training steps themselves are not.

use crate::builtins;
use crate::data;
use memphis_engine::context::Result;
use memphis_engine::ExecutionContext;

/// HDROP parameters.
#[derive(Debug, Clone)]
pub struct HdropParams {
    /// Dataset rows.
    pub rows: usize,
    /// Numeric feature columns.
    pub numeric: usize,
    /// Categorical feature columns.
    pub categorical: usize,
    /// Categorical cardinality.
    pub cardinality: usize,
    /// Dropout rates searched.
    pub rates: Vec<f64>,
    /// Epochs per rate.
    pub epochs: usize,
    /// Mini-batch rows.
    pub batch: usize,
    /// Hidden width of the first layer (paper: 500; scaled).
    pub hidden: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl HdropParams {
    /// Tiny configuration for tests.
    pub fn small() -> Self {
        Self {
            rows: 64,
            numeric: 4,
            categorical: 2,
            cardinality: 4,
            rates: vec![0.1, 0.3],
            epochs: 2,
            batch: 16,
            hidden: 8,
            seed: 5,
        }
    }

    /// Benchmark scale (10 rates as in the paper's 5%..50% grid). The
    /// KDD98-like data is feature-transformation heavy (binning, recoding,
    /// wide one-hot encodings), as in the paper.
    pub fn benchmark(rows: usize) -> Self {
        Self {
            rows,
            numeric: 16,
            categorical: 8,
            cardinality: 48,
            rates: (1..=10).map(|i| 0.05 * i as f64).collect(),
            epochs: 3,
            batch: 64,
            hidden: 16,
            seed: 5,
        }
    }
}

/// Runs HDROP; returns the best final loss across rates.
pub fn run(ctx: &mut ExecutionContext, p: &HdropParams) -> Result<f64> {
    let (x, _y) = data::kdd98_like(p.rows, p.numeric, p.categorical, p.cardinality, p.seed);
    ctx.read("X", x, "hdrop/X")?;
    let batches = p.rows / p.batch;
    let mut best = f64::INFINITY;
    for (ri, &rate) in p.rates.iter().enumerate() {
        // Re-initialize weights per configuration (identical seeds).
        let width = {
            // Probe the IDP output width once via the first batch.
            run_idp(ctx, p, 0)?;
            ctx.value("__idp_out")?
                .shape()
                .map(|(_, c)| c)
                .unwrap_or(p.numeric)
        };
        ctx.rand("W1", width, p.hidden, -0.3, 0.3, 100)?;
        ctx.rand("b1", 1, p.hidden, 0.0, 0.0, 101)?;
        ctx.rand("W2", p.hidden, width, -0.3, 0.3, 102)?;
        ctx.rand("b2", 1, width, 0.0, 0.0, 103)?;
        let mut last = 0.0;
        for epoch in 0..p.epochs {
            for bi in 0..batches {
                // Input data pipeline: batch slice → bin/recode/one-hot →
                // normalize. Identical across epochs and rates → reusable.
                run_idp(ctx, p, bi)?;
                let seed = (epoch * batches + bi) as u64;
                builtins::autoencoder_step(
                    ctx,
                    "__idp_out",
                    "W1",
                    "b1",
                    "W2",
                    "b2",
                    rate,
                    seed,
                    0.01,
                    &format!("__loss_{ri}"),
                )?;
                last = ctx.get_scalar(&format!("__loss_{ri}"))?;
            }
        }
        best = best.min(last);
    }
    Ok(best)
}

/// The batch-wise input data pipeline (IDP).
fn run_idp(ctx: &mut ExecutionContext, p: &HdropParams, batch_index: usize) -> Result<()> {
    let start = batch_index * p.batch;
    ctx.slice_rows("__idp_b", "X", start, start + p.batch)?;
    // Feature transform on the categorical tail: bin numerics, recode and
    // one-hot the categoricals, then normalize everything.
    ctx.slice_cols("__idp_num", "__idp_b", 0, p.numeric)?;
    ctx.slice_cols("__idp_cat", "__idp_b", p.numeric, p.numeric + p.categorical)?;
    builtins::bin_features(ctx, "__idp_num", 10, "__idp_binned")?;
    // Fixed cardinality keeps the one-hot width stable across batches.
    builtins::one_hot_fixed(ctx, "__idp_cat", p.cardinality, "__idp_oh")?;
    ctx.cbind("__idp_all", "__idp_binned", "__idp_oh")?;
    builtins::scale_minmax(ctx, "__idp_all", "__idp_out")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Backends;
    use memphis_core::cache::config::CacheConfig;
    use memphis_engine::{EngineConfig, ReuseMode};

    #[test]
    fn idp_is_reused_across_epochs_and_rates() {
        let p = HdropParams::small();
        let b = Backends::local();
        let mut base = b.make_ctx(
            EngineConfig::test().with_reuse(ReuseMode::None),
            CacheConfig::test(),
        );
        let l0 = run(&mut base, &p).unwrap();
        let mut mph = b.make_ctx(
            EngineConfig::test().with_reuse(ReuseMode::Memphis),
            CacheConfig::test(),
        );
        let l1 = run(&mut mph, &p).unwrap();
        assert!((l0 - l1).abs() < 1e-9);
        // 4 batches x (2 epochs x 2 rates + probes): the IDP repeats.
        assert!(mph.stats.reused > 30, "reused={}", mph.stats.reused);
    }

    #[test]
    fn training_reduces_loss() {
        let b = Backends::local();
        let mut ctx = b.make_ctx(EngineConfig::test(), CacheConfig::test());
        let mut p = HdropParams::small();
        p.rates = vec![0.1];
        p.epochs = 6;
        let loss = run(&mut ctx, &p).unwrap();
        assert!(loss.is_finite() && loss >= 0.0);
    }
}
