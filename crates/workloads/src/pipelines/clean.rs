//! CLEAN: enumeration of data-cleaning pipelines with downstream-model
//! feedback (Figure 14(a)). Twelve pipelines combine imputation, outlier
//! repair, scaling, class balancing, and PCA, then score an L2SVM; the
//! top-3 pipelines are returned. Pipelines share long prefixes (the same
//! imputation/outlier steps), which MEMPHIS reuses fine-grained.

use crate::builtins;
use crate::data;
use memphis_engine::context::Result;
use memphis_engine::ExecutionContext;
use memphis_matrix::ops::reorg;

/// CLEAN parameters.
#[derive(Debug, Clone)]
pub struct CleanParams {
    /// Base rows before replication.
    pub base_rows: usize,
    /// Feature columns (plus one label column).
    pub cols: usize,
    /// Row-replication scale factor (the paper's x-axis).
    pub scale: usize,
    /// Missing-value rate.
    pub missing_rate: f64,
    /// Downstream training iterations.
    pub train_iters: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl CleanParams {
    /// Tiny configuration for tests.
    pub fn small() -> Self {
        Self {
            base_rows: 60,
            cols: 6,
            scale: 1,
            missing_rate: 0.05,
            train_iters: 3,
            seed: 4,
        }
    }

    /// Benchmark scale.
    pub fn benchmark(scale: usize) -> Self {
        Self {
            base_rows: 256,
            cols: 16,
            scale,
            missing_rate: 0.02,
            train_iters: 5,
            seed: 4,
        }
    }
}

/// One enumerated cleaning pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineSpec {
    /// Mean (false) or mode (true) imputation.
    pub impute_mode: bool,
    /// Apply IQR outlier repair.
    pub outlier: bool,
    /// Standard (false) or min-max (true) scaling.
    pub minmax: bool,
    /// Apply under-sampling for class balance.
    pub balance: bool,
}

/// The 12 enumerated pipelines (8 impute x outlier x scaling combos, plus
/// 4 balanced variants — mirroring the paper's primitive combinations).
pub fn enumerate_pipelines() -> Vec<PipelineSpec> {
    let mut out = Vec::new();
    for impute_mode in [false, true] {
        for outlier in [false, true] {
            for minmax in [false, true] {
                out.push(PipelineSpec {
                    impute_mode,
                    outlier,
                    minmax,
                    balance: false,
                });
            }
        }
    }
    for impute_mode in [false, true] {
        for minmax in [false, true] {
            out.push(PipelineSpec {
                impute_mode,
                outlier: true,
                minmax,
                balance: true,
            });
        }
    }
    out
}

/// Runs CLEAN; returns the summed score of the top-3 pipelines.
pub fn run(ctx: &mut ExecutionContext, p: &CleanParams) -> Result<f64> {
    // APS-like data with missing values; replicate rows by the scale
    // factor (the paper's row-append replication).
    let base = data::aps_like(p.base_rows, p.cols, p.missing_rate, p.seed);
    let mut replicated = base.clone();
    for _ in 1..p.scale {
        replicated = reorg::rbind(&replicated, &base).expect("cols match");
    }
    let d = p.cols;
    let x = reorg::slice_cols(&replicated, 0, d).expect("in bounds");
    let y = reorg::slice_cols(&replicated, d, d + 1).expect("in bounds");
    ctx.read("X", x, "clean/X")?;
    ctx.read("y", y, "clean/y")?;

    let mut scores: Vec<f64> = Vec::new();
    for (i, spec) in enumerate_pipelines().iter().enumerate() {
        // Imputation first (order is data-dependent, as in the paper).
        if spec.impute_mode {
            builtins::impute_by_mode(ctx, "X", "__c_imp")?;
        } else {
            builtins::impute_by_mean(ctx, "X", "__c_imp")?;
        }
        let mut cur = "__c_imp".to_string();
        if spec.outlier {
            builtins::outlier_by_iqr(ctx, &cur, "__c_out")?;
            cur = "__c_out".into();
        }
        if spec.minmax {
            builtins::scale_minmax(ctx, &cur, "__c_scaled")?;
        } else {
            builtins::scale_standard(ctx, &cur, "__c_scaled")?;
        }
        cur = "__c_scaled".into();
        let yvar = if spec.balance {
            builtins::under_sample(ctx, &cur, "y", "__c_bal")?;
            builtins::under_sample(ctx, "y", "y", "__c_ybal")?;
            cur = "__c_bal".into();
            "__c_ybal".to_string()
        } else {
            "y".to_string()
        };
        // Dimensionality reduction + downstream L2SVM feedback.
        builtins::pca(ctx, &cur, (d / 2).max(2), "__c_pca")?;
        ctx.literal("reg", 0.01)?;
        builtins::l2svm_train(ctx, "__c_pca", &yvar, "reg", p.train_iters, 0.005, "__c_w")?;
        builtins::mse(ctx, "__c_pca", "__c_w", &yvar, &format!("score_{i}"))?;
        scores.push(ctx.get_scalar(&format!("score_{i}"))?);
    }
    let mut sorted = scores.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Ok(sorted.iter().take(3).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Backends;
    use memphis_core::cache::config::CacheConfig;
    use memphis_engine::{EngineConfig, ReuseMode};

    #[test]
    fn twelve_pipelines_enumerated() {
        let specs = enumerate_pipelines();
        assert_eq!(specs.len(), 12);
        let unique: std::collections::HashSet<_> = specs.iter().map(|s| format!("{s:?}")).collect();
        assert_eq!(unique.len(), 12);
    }

    #[test]
    fn modes_agree_and_prefixes_are_reused() {
        let p = CleanParams::small();
        let b = Backends::local();
        let mut base = b.make_ctx(
            EngineConfig::test().with_reuse(ReuseMode::None),
            CacheConfig::test(),
        );
        let s0 = run(&mut base, &p).unwrap();
        let mut mph = b.make_ctx(
            EngineConfig::test().with_reuse(ReuseMode::Memphis),
            CacheConfig::test(),
        );
        let s1 = run(&mut mph, &p).unwrap();
        assert!((s0 - s1).abs() < 1e-6, "{s0} vs {s1}");
        // 12 pipelines share imputation/outlier/scaling prefixes.
        assert!(mph.stats.reused > 20, "reused={}", mph.stats.reused);
        assert!(mph.stats.instructions < base.stats.instructions + 1);
    }
}
