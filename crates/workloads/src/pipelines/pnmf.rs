//! PNMF: Poisson non-negative matrix factorization (Figure 13(b)).
//!
//! `X ≈ W H` with multiplicative updates. `W` is distributed (tall), `H`
//! local. Without checkpointing, every iteration's jobs lazily re-execute
//! the whole update history (`W_i` depends on `W_{i-1}` RDDs), producing
//! the super-linear slowdown of Base/LIMA past ~30 iterations; MEMPHIS's
//! loop checkpoint rewrite persists `W` each iteration (§5.2).

use crate::data;
use memphis_engine::context::Result;
use memphis_engine::ops::AggDir;
use memphis_engine::ExecutionContext;
use memphis_matrix::ops::agg::AggOp;
use memphis_matrix::ops::binary::BinaryOp;

/// PNMF parameters.
#[derive(Debug, Clone)]
pub struct PnmfParams {
    /// Users (rows of X; distributed dimension).
    pub rows: usize,
    /// Movies (columns of X).
    pub cols: usize,
    /// Factorization rank.
    pub rank: usize,
    /// Iterations.
    pub iterations: usize,
    /// Ratings density.
    pub density: f64,
    /// Dataset seed.
    pub seed: u64,
    /// Apply the compiler's loop-checkpoint rewrite (persist W per
    /// iteration) — on for MPH, off for Base/LIMA.
    pub checkpoint: bool,
}

impl PnmfParams {
    /// Tiny configuration for tests.
    pub fn small() -> Self {
        Self {
            rows: 64,
            cols: 16,
            rank: 4,
            iterations: 3,
            density: 0.3,
            seed: 2,
            checkpoint: true,
        }
    }

    /// Benchmark scale (MovieLens-like shape, reduced).
    pub fn benchmark(rows: usize, iterations: usize, checkpoint: bool) -> Self {
        Self {
            rows,
            cols: 64,
            rank: 8,
            iterations,
            density: 0.2,
            seed: 2,
            checkpoint,
        }
    }
}

/// Runs PNMF; returns the final reconstruction loss.
pub fn run(ctx: &mut ExecutionContext, p: &PnmfParams) -> Result<f64> {
    let x = data::movielens_like(p.rows, p.cols, p.density, p.seed);
    // Shift zeros to a small positive value so divisions stay finite.
    let x = memphis_matrix::ops::binary::binary_scalar(&x, 0.1, BinaryOp::Add, false);
    ctx.read("X", x, "pnmf/X")?;
    ctx.rand("W", p.rows, p.rank, 0.1, 1.0, p.seed + 1)?;
    ctx.rand("H", p.rank, p.cols, 0.1, 1.0, p.seed + 2)?;
    let mut loss = 0.0;
    for _it in 0..p.iterations {
        // WH = W %*% H (distributed when W is); R = X / WH.
        ctx.matmul("WH", "W", "H")?;
        ctx.binary("R", "X", "WH", BinaryOp::Div)?;
        // H update: H *= (t(W) R) / (colSums(W)^T 1)  — J1.
        ctx.xty("Hnum", "W", "R")?;
        ctx.agg("Wcs", "W", AggOp::Sum, AggDir::Col)?;
        ctx.transpose("Wcs_t", "Wcs")?;
        ctx.binary("Hscaled", "Hnum", "Wcs_t", BinaryOp::Div)?;
        ctx.binary("H", "H", "Hscaled", BinaryOp::Mul)?;
        // W update: W *= (R t(H)) / rowSums(H)^T  — J2.
        ctx.transpose("Ht", "H")?;
        ctx.matmul("RHt", "R", "Ht")?;
        ctx.agg("Hrs", "H", AggOp::Sum, AggDir::Row)?;
        ctx.transpose("Hrs_t", "Hrs")?;
        ctx.binary("Wnum", "RHt", "Hrs_t", BinaryOp::Div)?;
        ctx.binary("W", "W", "Wnum", BinaryOp::Mul)?;
        if p.checkpoint {
            ctx.checkpoint("W")?;
        }
        // Loss (triggers the second job of Figure 9(c)).
        ctx.matmul("WH2", "W", "H")?;
        ctx.binary("D", "X", "WH2", BinaryOp::Sub)?;
        ctx.binary("D2", "D", "D", BinaryOp::Mul)?;
        ctx.agg("loss", "D2", AggOp::Sum, AggDir::Full)?;
        loss = ctx.get_scalar("loss")?;
    }
    Ok(loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Backends;
    use memphis_core::cache::config::CacheConfig;
    use memphis_engine::{EngineConfig, ReuseMode};
    use memphis_sparksim::SparkConfig;

    #[test]
    fn factorization_reduces_loss() {
        let b = Backends::local();
        let mut ctx = b.make_ctx(EngineConfig::test(), CacheConfig::test());
        let mut p = PnmfParams::small();
        p.iterations = 1;
        let l1 = run(&mut ctx, &p).unwrap();
        let b2 = Backends::local();
        let mut ctx2 = b2.make_ctx(EngineConfig::test(), CacheConfig::test());
        p.iterations = 8;
        let l8 = run(&mut ctx2, &p).unwrap();
        assert!(l8 < l1, "loss must decrease: {l1} -> {l8}");
    }

    #[test]
    fn checkpoint_and_plain_agree() {
        for checkpoint in [false, true] {
            let b = Backends::with_spark(SparkConfig::local_test());
            let mut cfg = EngineConfig::test().with_reuse(ReuseMode::Memphis);
            cfg.spark_threshold_bytes = 1024; // W and X distributed
            let mut ctx = b.make_ctx_sync(cfg, CacheConfig::test());
            let mut p = PnmfParams::small();
            p.checkpoint = checkpoint;
            let loss = run(&mut ctx, &p).unwrap();
            assert!(loss.is_finite());
        }
    }

    #[test]
    fn checkpointing_bounds_task_growth() {
        // Under Base (no runtime reuse), the compiler-placed checkpoint is
        // the only thing bounding the lazy re-execution of prior
        // iterations — the Figure 13(b) effect. (Under full MEMPHIS, RDD
        // caching subsumes it.)
        let count_tasks = |checkpoint: bool| {
            let b = Backends::with_spark(SparkConfig::local_test());
            let mut cfg = EngineConfig::test().with_reuse(ReuseMode::None);
            cfg.spark_threshold_bytes = 1024;
            let mut ctx = b.make_ctx_sync(cfg, CacheConfig::test());
            let mut p = PnmfParams::small();
            p.iterations = 6;
            p.checkpoint = checkpoint;
            run(&mut ctx, &p).unwrap();
            b.sc.as_ref().unwrap().stats().narrow_records_computed
        };
        let without = count_tasks(false);
        let with = count_tasks(true);
        assert!(
            with * 2 < without,
            "checkpointing must cut lazy re-execution: {with} vs {without}"
        );
    }

    #[test]
    fn memphis_rdd_caching_subsumes_checkpoints() {
        // With full MEMPHIS reuse, even checkpoint-free PNMF avoids the
        // re-execution blowup because RDD entries are persisted on PUT.
        let b = Backends::with_spark(SparkConfig::local_test());
        let mut cfg = EngineConfig::test().with_reuse(ReuseMode::Memphis);
        cfg.spark_threshold_bytes = 1024;
        let mut ctx = b.make_ctx_sync(cfg, CacheConfig::test());
        let mut p = PnmfParams::small();
        p.iterations = 6;
        p.checkpoint = false;
        run(&mut ctx, &p).unwrap();
        let mph_tasks = b.sc.as_ref().unwrap().stats().narrow_records_computed;

        let b2 = Backends::with_spark(SparkConfig::local_test());
        let mut cfg2 = EngineConfig::test().with_reuse(ReuseMode::None);
        cfg2.spark_threshold_bytes = 1024;
        let mut ctx2 = b2.make_ctx_sync(cfg2, CacheConfig::test());
        run(&mut ctx2, &p).unwrap();
        let base_tasks = b2.sc.as_ref().unwrap().stats().narrow_records_computed;
        assert!(
            mph_tasks * 2 < base_tasks,
            "MPH {mph_tasks} vs Base {base_tasks}"
        );
    }
}
