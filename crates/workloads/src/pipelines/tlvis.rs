//! TLVIS: transfer-learning feature extraction from multiple pre-trained
//! CNNs (Figure 14(d)). For each model, features are extracted at several
//! candidate layers over the same frozen prefix — MEMPHIS reuses the
//! shared forward computation, and the compiler's eviction injection
//! clears the GPU free lists between models whose allocation patterns
//! differ (Figure 9(b)).

use crate::builtins;
use crate::data;
use memphis_engine::context::Result;
use memphis_engine::ops::AggDir;
use memphis_engine::ExecutionContext;
use memphis_matrix::ops::agg::AggOp;
use memphis_matrix::ops::nn::{Conv2dParams, Pool2dParams};

/// TLVIS parameters.
#[derive(Debug, Clone)]
pub struct TlvisParams {
    /// Test images.
    pub images: usize,
    /// Image side length (channels fixed at 3).
    pub side: usize,
    /// Duplicate-image rate in the stream.
    pub dup_rate: f64,
    /// Dataset seed.
    pub seed: u64,
    /// Insert `evict(100%)` between models (the compiler rewrite; on for
    /// MPH, off for the no-eviction ablation).
    pub evict_between_models: bool,
}

impl TlvisParams {
    /// Tiny configuration for tests.
    pub fn small() -> Self {
        Self {
            images: 8,
            side: 8,
            dup_rate: 0.0,
            seed: 7,
            evict_between_models: true,
        }
    }

    /// Benchmark scale (CIFAR-like 32x32 when `side` is 32).
    pub fn benchmark(images: usize, side: usize) -> Self {
        Self {
            images,
            side,
            dup_rate: 0.0,
            seed: 7,
            evict_between_models: true,
        }
    }
}

struct ModelSpec {
    name: &'static str,
    /// Output channels of each conv stage.
    convs: Vec<usize>,
    /// Fully-connected widths after the convolutional trunk.
    fcs: Vec<usize>,
}

fn models() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            name: "alexnet",
            convs: vec![8, 16],
            fcs: vec![32, 16],
        },
        ModelSpec {
            name: "vgg16",
            convs: vec![8, 16, 16],
            fcs: vec![32, 16],
        },
        ModelSpec {
            name: "resnet18",
            convs: vec![8, 8, 16, 16],
            fcs: vec![16],
        },
    ]
}

/// Runs TLVIS; returns the summed transferability proxy scores.
pub fn run(ctx: &mut ExecutionContext, p: &TlvisParams) -> Result<f64> {
    let x = data::images(p.images, 3, p.side, p.dup_rate, p.seed);
    ctx.read("IMG", x, "tlvis/images")?;
    let mut total = 0.0;
    for (mi, model) in models().iter().enumerate() {
        if mi > 0 && p.evict_between_models {
            // Eviction injection between models with shifted allocation
            // patterns (§5.2).
            ctx.evict_gpu(1.0);
        }
        total += extract_and_rank(ctx, p, model, mi)?;
    }
    Ok(total)
}

/// Forward through the frozen trunk; extract features at each of the last
/// `fcs.len() + 1` layers and rank them with a variance-based linear-proxy
/// score (LEEP-style stand-in).
fn extract_and_rank(
    ctx: &mut ExecutionContext,
    p: &TlvisParams,
    model: &ModelSpec,
    mi: usize,
) -> Result<f64> {
    let mut score_sum = 0.0;
    let n_extract = model.fcs.len() + 1; // trunk output + each FC layer
    for layer_choice in 0..n_extract {
        // Re-run the forward pass up to the chosen layer; the shared
        // prefix is reused fine-grained across choices.
        let mut side = p.side;
        let mut channels = 3usize;
        let mut cur = "IMG".to_string();
        for (ci, &out_ch) in model.convs.iter().enumerate() {
            let conv = Conv2dParams {
                in_channels: channels,
                out_channels: out_ch,
                height: side,
                width: side,
                kernel: 3,
                stride: 1,
                pad: 1,
            };
            let wname = format!("W_{}_{ci}", model.name);
            if !ctx.has(&wname) {
                ctx.rand(
                    &wname,
                    out_ch,
                    channels * 9,
                    -0.3,
                    0.3,
                    300 + mi as u64 * 10 + ci as u64,
                )?;
            }
            let out = format!("__tl_c{ci}");
            builtins::conv_relu(ctx, &cur, &wname, conv, &out)?;
            cur = out;
            channels = out_ch;
            if side >= 4 && ci % 2 == 1 {
                let pool = Pool2dParams {
                    channels,
                    height: side,
                    width: side,
                    window: 2,
                    stride: 2,
                };
                let pout = format!("__tl_p{ci}");
                builtins::pool(ctx, &cur, pool, &pout)?;
                cur = pout;
                side /= 2;
            }
        }
        // FC tail up to the chosen extraction layer.
        let mut width = channels * side * side;
        for (fi, &fc_width) in model.fcs.iter().take(layer_choice).enumerate() {
            let wname = format!("Wfc_{}_{fi}", model.name);
            let bname = format!("bfc_{}_{fi}", model.name);
            if !ctx.has(&wname) {
                ctx.rand(
                    &wname,
                    width,
                    fc_width,
                    -0.3,
                    0.3,
                    400 + mi as u64 * 10 + fi as u64,
                )?;
                ctx.rand(
                    &bname,
                    1,
                    fc_width,
                    0.0,
                    0.0,
                    500 + mi as u64 * 10 + fi as u64,
                )?;
            }
            let out = format!("__tl_fc{fi}");
            builtins::fc_relu(ctx, &cur, &wname, &bname, &out)?;
            cur = out;
            width = fc_width;
        }
        // Transferability proxy: mean feature variance.
        ctx.agg("__tl_var", &cur, AggOp::Var, AggDir::Col)?;
        ctx.agg("__tl_score", "__tl_var", AggOp::Mean, AggDir::Full)?;
        score_sum += ctx.get_scalar("__tl_score")?;
    }
    Ok(score_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Backends;
    use memphis_core::cache::config::CacheConfig;
    use memphis_engine::{EngineConfig, ReuseMode};
    use memphis_gpusim::GpuConfig;

    #[test]
    fn shared_prefixes_reused_across_layer_choices() {
        let p = TlvisParams::small();
        let b = Backends::local();
        let mut base = b.make_ctx(
            EngineConfig::test().with_reuse(ReuseMode::None),
            CacheConfig::test(),
        );
        let s0 = run(&mut base, &p).unwrap();
        let mut mph = b.make_ctx(
            EngineConfig::test().with_reuse(ReuseMode::Memphis),
            CacheConfig::test(),
        );
        let s1 = run(&mut mph, &p).unwrap();
        assert!((s0 - s1).abs() < 1e-9);
        assert!(mph.stats.reused > 5, "reused={}", mph.stats.reused);
        // Reuse skips execution, not instruction submission.
        assert!(mph.stats.executed_cp < base.stats.executed_cp);
    }

    #[test]
    fn gpu_run_recycles_and_evicts() {
        let p = TlvisParams::small();
        let b = Backends::with_gpu(GpuConfig::zero_cost(32 << 20));
        let mut cfg = EngineConfig::test().with_reuse(ReuseMode::Memphis);
        cfg.gpu_min_cells = 1;
        let mut ctx = b.make_ctx(cfg, CacheConfig::test());
        let s = run(&mut ctx, &p).unwrap();
        assert!(s.is_finite());
        let r = ctx.cache().stats();
        assert!(
            r.gpu_freed + r.gpu_recycled > 0,
            "evict(1.0) ran between models"
        );
    }
}
