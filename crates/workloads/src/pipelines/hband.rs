//! HBAND: Hyperband-like model search via successive halving over L2SVM
//! and logistic regression, followed by weighted ensemble learning
//! (Figure 13(c)). Reuse sources: successive halving re-runs surviving
//! configurations with doubled iteration counts — the shared training
//! prefix is reused — and the ensemble's `X w` products are reused across
//! the weight grid.

use crate::builtins;
use crate::data;
use memphis_engine::context::Result;
use memphis_engine::ops::AggDir;
use memphis_engine::ExecutionContext;
use memphis_matrix::ops::agg::AggOp;
use memphis_matrix::ops::binary::BinaryOp;

/// HBAND parameters.
#[derive(Debug, Clone)]
pub struct HbandParams {
    /// Training rows.
    pub rows: usize,
    /// Feature columns.
    pub cols: usize,
    /// Initial number of regularization values (halved per bracket).
    pub initial_configs: usize,
    /// Brackets of successive halving.
    pub brackets: usize,
    /// Initial iteration count (doubled per bracket).
    pub initial_iters: usize,
    /// Ensemble weight configurations searched.
    pub weight_configs: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl HbandParams {
    /// Tiny configuration for tests.
    pub fn small() -> Self {
        Self {
            rows: 60,
            cols: 4,
            initial_configs: 4,
            brackets: 2,
            initial_iters: 3,
            weight_configs: 10,
            seed: 3,
        }
    }

    /// Benchmark scale (reduced from 25 configs / 5 brackets / 1K weights).
    pub fn benchmark(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            initial_configs: 8,
            brackets: 3,
            initial_iters: 5,
            weight_configs: 100,
            seed: 3,
        }
    }
}

/// Runs HBAND; returns the best ensemble score.
pub fn run(ctx: &mut ExecutionContext, p: &HbandParams) -> Result<f64> {
    let (x, y) = data::classification(p.rows, p.cols, p.seed);
    ctx.read("X", x, "hband/X")?;
    ctx.read("y", y, "hband/y")?;

    // Successive halving per algorithm.
    let mut best: Vec<(String, f64)> = Vec::new(); // (weight var, score)
    for (alg, trainer) in [("svm", 0usize), ("mlr", 1usize)] {
        let mut configs: Vec<f64> = (1..=p.initial_configs).map(|i| 0.01 * i as f64).collect();
        let mut iters = p.initial_iters;
        let mut scored: Vec<(f64, f64)> = Vec::new();
        for _bracket in 0..p.brackets {
            scored.clear();
            for &reg in &configs {
                ctx.literal("reg", reg)?;
                let wvar = format!("w_{alg}_{reg}");
                if trainer == 0 {
                    builtins::l2svm_train(ctx, "X", "y", "reg", iters, 0.002, &wvar)?;
                } else {
                    builtins::mlogreg_train(ctx, "X", "y", "reg", iters, 0.002, &wvar)?;
                }
                builtins::mse(ctx, "X", &wvar, "y", "__hb_score")?;
                scored.push((reg, ctx.get_scalar("__hb_score")?));
            }
            scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            let keep = (configs.len() / 2).max(1);
            configs = scored.iter().take(keep).map(|(r, _)| *r).collect();
            iters *= 2;
        }
        let (best_reg, best_score) = scored[0];
        best.push((format!("w_{alg}_{best_reg}"), best_score));
    }

    // Weighted ensemble: predictions of the two best models combined over
    // a weight grid — the X w products are weight-independent.
    let (w1, _) = best[0].clone();
    let (w2, _) = best[1].clone();
    let mut best_score = f64::INFINITY;
    for i in 0..p.weight_configs {
        let a = i as f64 / p.weight_configs.max(1) as f64;
        ctx.matmul("__P1", "X", &w1)?;
        ctx.matmul("__P2", "X", &w2)?;
        ctx.literal("a", a)?;
        ctx.literal("na", 1.0 - a)?;
        ctx.binary("__P1w", "__P1", "a", BinaryOp::Mul)?;
        ctx.binary("__P2w", "__P2", "na", BinaryOp::Mul)?;
        ctx.binary("__P", "__P1w", "__P2w", BinaryOp::Add)?;
        ctx.binary("__E", "__P", "y", BinaryOp::Sub)?;
        ctx.binary("__E2", "__E", "__E", BinaryOp::Mul)?;
        ctx.agg("__ens", "__E2", AggOp::Mean, AggDir::Full)?;
        best_score = best_score.min(ctx.get_scalar("__ens")?);
    }
    Ok(best_score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Backends;
    use memphis_core::cache::config::CacheConfig;
    use memphis_engine::{EngineConfig, ReuseMode};

    #[test]
    fn modes_agree_and_memphis_reuses() {
        let p = HbandParams::small();
        let b = Backends::local();
        let mut base = b.make_ctx(
            EngineConfig::test().with_reuse(ReuseMode::None),
            CacheConfig::test(),
        );
        let s_base = run(&mut base, &p).unwrap();
        let mut mph = b.make_ctx(
            EngineConfig::test().with_reuse(ReuseMode::Memphis),
            CacheConfig::test(),
        );
        let s_mph = run(&mut mph, &p).unwrap();
        assert!((s_base - s_mph).abs() < 1e-9);
        // Halving re-runs shared prefixes; the ensemble reuses X w.
        assert!(mph.stats.reused > 50, "reused={}", mph.stats.reused);
    }

    #[test]
    fn ensemble_score_not_worse_than_single_models() {
        let p = HbandParams::small();
        let b = Backends::local();
        let mut ctx = b.make_ctx(EngineConfig::test(), CacheConfig::test());
        let score = run(&mut ctx, &p).unwrap();
        assert!(score.is_finite());
        assert!(score >= 0.0);
    }
}
