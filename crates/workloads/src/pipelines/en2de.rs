//! EN2DE: scoring with a pre-trained translation network over a token
//! stream with heavy duplication (Figure 14(c)). Multi-level reuse caches
//! whole predictions at the host (the Clipper pattern); fine-grained-only
//! reuse (MPH-F) still reuses the GPU pointer chain per repeated token.

use crate::builtins;
use crate::data;
use memphis_engine::context::Result;
use memphis_engine::ops::AggDir;
use memphis_engine::ExecutionContext;
use memphis_matrix::ops::agg::AggOp;

/// EN2DE parameters.
#[derive(Debug, Clone)]
pub struct En2deParams {
    /// Tokens scored.
    pub tokens: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding dimension (paper: 300).
    pub dim: usize,
    /// Hidden width of the 4-layer scoring network.
    pub hidden: usize,
    /// Output classes (target-vocabulary buckets).
    pub out_classes: usize,
    /// Zipf skew of the token stream.
    pub skew: f64,
    /// Dataset seed.
    pub seed: u64,
    /// Use multi-level (prediction-level) reuse; fine-grained otherwise
    /// (the paper's MPH vs MPH-F).
    pub multilevel: bool,
}

impl En2deParams {
    /// Tiny configuration for tests.
    pub fn small() -> Self {
        Self {
            tokens: 60,
            vocab: 20,
            dim: 8,
            hidden: 16,
            out_classes: 10,
            skew: 1.1,
            seed: 6,
            multilevel: true,
        }
    }

    /// Benchmark scale (reduced from the 200K-word stream).
    pub fn benchmark(tokens: usize, multilevel: bool) -> Self {
        Self {
            tokens,
            vocab: 256,
            dim: 32,
            hidden: 64,
            out_classes: 32,
            skew: 1.1,
            seed: 6,
            multilevel,
        }
    }
}

/// Runs EN2DE; returns the sum of predicted class ids (checksum).
pub fn run(ctx: &mut ExecutionContext, p: &En2deParams) -> Result<f64> {
    // Pre-trained weights and embeddings.
    ctx.read("EMB", data::embeddings(p.vocab, p.dim, p.seed), "en2de/emb")?;
    ctx.rand("W1", p.dim, p.hidden, -0.3, 0.3, 201)?;
    ctx.rand("b1", 1, p.hidden, 0.0, 0.0, 202)?;
    ctx.rand("W2", p.hidden, p.hidden, -0.3, 0.3, 203)?;
    ctx.rand("b2", 1, p.hidden, 0.0, 0.0, 204)?;
    ctx.rand("W3", p.hidden, p.hidden, -0.3, 0.3, 205)?;
    ctx.rand("b3", 1, p.hidden, 0.0, 0.0, 206)?;
    ctx.rand("W4", p.hidden, p.out_classes, -0.3, 0.3, 207)?;
    ctx.rand("b4", 1, p.out_classes, 0.0, 0.0, 208)?;

    let stream = data::zipf_tokens(p.tokens, p.vocab, p.skew, p.seed);
    let mut checksum = 0.0;
    for tok in stream {
        // Embedding lookup: the slice lineage is keyed by the token id,
        // so repeated tokens yield identical traces.
        ctx.slice_rows("__tok", "EMB", tok, tok + 1)?;
        if p.multilevel {
            ctx.call_function("translate", &["__tok"], &["__pred"], forward)?;
        } else {
            forward(ctx)?;
        }
        checksum += ctx.get_scalar("__pred")?;
    }
    Ok(checksum)
}

/// The pre-trained 4-layer forward pass + argmax.
fn forward(ctx: &mut ExecutionContext) -> Result<()> {
    builtins::fc_relu(ctx, "__tok", "W1", "b1", "__h1")?;
    builtins::fc_relu(ctx, "__h1", "W2", "b2", "__h2")?;
    builtins::fc_relu(ctx, "__h2", "W3", "b3", "__h3")?;
    builtins::fc_softmax(ctx, "__h3", "W4", "b4", "__probs")?;
    ctx.agg("__pred", "__probs", AggOp::ArgMax, AggDir::Row)?;
    // __pred is a 1x1 row-argmax; force scalar binding for the caller.
    let v = ctx
        .get_matrix("__pred")?
        .as_scalar()
        .map_err(memphis_engine::context::EngineError::Matrix)?;
    let item = ctx.lineage_of("__pred");
    let _ = item;
    ctx.literal("__pred_s", v)?;
    ctx.assign("__pred", "__pred_s")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Backends;
    use memphis_core::cache::config::CacheConfig;
    use memphis_engine::{EngineConfig, ReuseMode};
    use memphis_gpusim::GpuConfig;

    #[test]
    fn prediction_reuse_matches_base() {
        let p = En2deParams::small();
        let b = Backends::local();
        let mut base = b.make_ctx(
            EngineConfig::test().with_reuse(ReuseMode::None),
            CacheConfig::test(),
        );
        let s0 = run(&mut base, &p).unwrap();
        let mut mph = b.make_ctx(
            EngineConfig::test().with_reuse(ReuseMode::Memphis),
            CacheConfig::test(),
        );
        let s1 = run(&mut mph, &p).unwrap();
        assert_eq!(s0, s1);
        assert!(
            mph.stats.functions_reused > 10,
            "duplicate tokens must hit the prediction cache: {}",
            mph.stats.functions_reused
        );
    }

    #[test]
    fn fine_grained_reuses_gpu_pointers() {
        let mut p = En2deParams::small();
        p.multilevel = false;
        let b = Backends::with_gpu(GpuConfig::zero_cost(8 << 20));
        let mut cfg = EngineConfig::test().with_reuse(ReuseMode::Memphis);
        cfg.gpu_min_cells = 1; // everything compute-intensive on device
        let mut ctx = b.make_ctx(cfg, CacheConfig::test());
        let s = run(&mut ctx, &p).unwrap();
        assert!(s.is_finite());
        assert!(
            ctx.cache().stats().hits_gpu > 0,
            "repeated tokens reuse device pointers"
        );
    }
}
