//! HCV: grid-search hyper-parameter tuning of cross-validated linear
//! regression (Figure 13(a)). The core is Example 4.1's `linRegDS`: the
//! per-fold `t(X)X` / `t(X)y` are regularization-independent and dominate,
//! so MEMPHIS reuses them across the whole grid (local matrices, Spark
//! actions, and RDDs), while `Base` re-runs every distributed job.

use crate::data;
use memphis_engine::context::Result;
use memphis_engine::ops::AggDir;
use memphis_engine::ExecutionContext;
use memphis_matrix::ops::agg::AggOp;
use memphis_matrix::ops::binary::BinaryOp;

/// HCV parameters.
#[derive(Debug, Clone)]
pub struct HcvParams {
    /// Rows per fold.
    pub rows_per_fold: usize,
    /// Feature columns.
    pub cols: usize,
    /// Number of folds.
    pub folds: usize,
    /// Regularization grid.
    pub regs: Vec<f64>,
    /// Dataset seed.
    pub seed: u64,
    /// Use asynchronous prefetch on the distributed actions.
    pub prefetch: bool,
}

impl HcvParams {
    /// Tiny configuration for tests.
    pub fn small() -> Self {
        Self {
            rows_per_fold: 40,
            cols: 4,
            folds: 3,
            regs: vec![0.1, 0.2, 0.4],
            seed: 1,
            prefetch: false,
        }
    }

    /// Benchmark scale: 10 regularization values as in the paper.
    pub fn benchmark(rows_per_fold: usize, cols: usize) -> Self {
        Self {
            rows_per_fold,
            cols,
            folds: 3,
            regs: (1..=10).map(|i| 0.05 * i as f64).collect(),
            seed: 1,
            prefetch: true,
        }
    }
}

/// Runs HCV; returns the summed cross-validation MSE over the grid (the
/// cross-configuration checksum).
pub fn run(ctx: &mut ExecutionContext, p: &HcvParams) -> Result<f64> {
    // Load folds as separate datasets (SystemDS splits before the loop).
    for f in 0..p.folds {
        let (x, y) = data::regression(p.rows_per_fold, p.cols, 0.1, p.seed + f as u64);
        ctx.read(&format!("Xf{f}"), x, &format!("hcv/X{f}"))?;
        ctx.read(&format!("yf{f}"), y, &format!("hcv/y{f}"))?;
    }
    let mut total = 0.0;
    for (ri, &reg) in p.regs.iter().enumerate() {
        ctx.literal("reg", reg)?;
        for hold in 0..p.folds {
            // linRegDS over the complement of the held-out fold: the
            // normal equations are additive over folds.
            let mut have = false;
            for f in 0..p.folds {
                if f == hold {
                    continue;
                }
                ctx.tsmm("__G_f", &format!("Xf{f}"))?;
                ctx.xty("__b_f", &format!("Xf{f}"), &format!("yf{f}"))?;
                if p.prefetch {
                    ctx.prefetch("__G_f")?;
                    ctx.prefetch("__b_f")?;
                }
                if have {
                    ctx.binary("__G", "__G", "__G_f", BinaryOp::Add)?;
                    ctx.binary("__b", "__b", "__b_f", BinaryOp::Add)?;
                } else {
                    ctx.assign("__G", "__G_f")?;
                    ctx.assign("__b", "__b_f")?;
                    have = true;
                }
            }
            ctx.binary("__A", "__G", "reg", BinaryOp::Add)?;
            ctx.solve("__w", "__A", "__b")?;
            // Evaluate on the held-out fold.
            ctx.matmul("__pred", &format!("Xf{hold}"), "__w")?;
            ctx.binary("__err", "__pred", &format!("yf{hold}"), BinaryOp::Sub)?;
            ctx.binary("__sq", "__err", "__err", BinaryOp::Mul)?;
            ctx.agg(
                &format!("mse_{ri}_{hold}"),
                "__sq",
                AggOp::Mean,
                AggDir::Full,
            )?;
            total += ctx.get_scalar(&format!("mse_{ri}_{hold}"))?;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Backends;
    use memphis_core::cache::config::CacheConfig;
    use memphis_engine::{EngineConfig, ReuseMode};
    use memphis_sparksim::SparkConfig;

    #[test]
    fn results_identical_across_modes() {
        let p = HcvParams::small();
        let mut checks = Vec::new();
        for mode in [ReuseMode::None, ReuseMode::Lima, ReuseMode::Memphis] {
            let b = Backends::local();
            let mut ctx = b.make_ctx(EngineConfig::test().with_reuse(mode), CacheConfig::test());
            checks.push(run(&mut ctx, &p).unwrap());
        }
        assert!((checks[0] - checks[1]).abs() < 1e-9);
        assert!((checks[0] - checks[2]).abs() < 1e-9);
    }

    #[test]
    fn memphis_eliminates_fold_recomputation() {
        let p = HcvParams::small();
        let b = Backends::local();
        let mut base = b.make_ctx(
            EngineConfig::test().with_reuse(ReuseMode::None),
            CacheConfig::test(),
        );
        run(&mut base, &p).unwrap();
        let mut mph = b.make_ctx(
            EngineConfig::test().with_reuse(ReuseMode::Memphis),
            CacheConfig::test(),
        );
        run(&mut mph, &p).unwrap();
        // 3 regs x 3 holds x 2 folds = 18 (tsmm + xty) executions in Base;
        // MPH executes each fold's pair once.
        assert!(mph.stats.reused > 20, "reused={}", mph.stats.reused);
        assert_eq!(base.stats.reused, 0);
    }

    #[test]
    fn distributed_hcv_reuses_spark_actions() {
        let p = HcvParams::small();
        let b = Backends::with_spark(SparkConfig::local_test());
        let mut cfg = EngineConfig::test().with_reuse(ReuseMode::Memphis);
        cfg.spark_threshold_bytes = 512; // folds become RDDs
        let mut ctx = b.make_ctx_sync(cfg, CacheConfig::test());
        run(&mut ctx, &p).unwrap();
        let jobs = b.sc.as_ref().unwrap().stats().jobs;
        // Base would run 18 tsmm/xty jobs + 9 prediction aggregations; MPH
        // needs one tsmm+xty pair per fold plus per-(reg,hold) evaluation.
        assert!(jobs < 40, "jobs={jobs}");
        assert!(ctx.cache().stats().hits_local > 0);
    }
}
