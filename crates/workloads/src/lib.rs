//! Workloads for the MEMPHIS reproduction: ML builtins (the SystemDS
//! primitives the paper's pipelines compose), deterministic synthetic
//! dataset generators standing in for the paper's datasets (Table 3), and
//! the seven end-to-end pipelines of §6.3.

pub mod builtins;
pub mod cluster;
pub mod data;
pub mod harness;
pub mod latency;
pub mod pipelines;
pub mod script;
pub mod serve;

pub use cluster::{run_cluster, ClusterParams, ClusterReport};
pub use harness::{run_timed, Backends, WorkloadOutcome};
pub use latency::{run_latency, LatencyParams, LatencyReport};
pub use serve::{run_serve, ServeParams, ServeReport};
