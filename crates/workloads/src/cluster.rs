//! Single-threaded deterministic cluster harness: a skewed multi-tenant
//! read/compute trace driven through [`ClusterCache`], with optional
//! mid-run membership churn and write invalidations.
//!
//! Every decision (tenant, item, hot-vs-cold, invalidation target) is a
//! SplitMix64 hash of `(seed, salt, request)`, so a run is a pure
//! function of [`ClusterParams`] — the node-count-invariance proptests
//! compare the *digest* (an order-sensitive fold of every served
//! object's fingerprint) across cluster sizes, and whole
//! [`ClusterStatsSnapshot`]s across repeated runs.

use memphis_cluster::{ClusterCache, ClusterConfig, ClusterProbed, ClusterStatsSnapshot, NodeId};
use memphis_core::{CachedObject, LItem, LineageItem};
use std::collections::HashSet;
use std::sync::Arc;

/// SplitMix64 finalizer (same mix the serve dispatcher uses).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hash(seed: u64, salt: u64, coord: u64) -> u64 {
    mix(mix(seed ^ mix(salt)) ^ coord)
}

/// Uniform in [0, 1) from the top 53 bits.
fn decide(seed: u64, salt: u64, coord: u64) -> f64 {
    (hash(seed, salt, coord) >> 11) as f64 / (1u64 << 53) as f64
}

mod salt {
    pub const TENANT: u64 = 0xc1a0_0001;
    pub const SKEW: u64 = 0xc1a0_0002;
    pub const HOT: u64 = 0xc1a0_0003;
    pub const COLD: u64 = 0xc1a0_0004;
    pub const INVALIDATE: u64 = 0xc1a0_0005;
}

/// Parameters of one cluster harness run.
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Initial node count (ids `0..nodes`).
    pub nodes: usize,
    /// Seed for every deterministic decision.
    pub seed: u64,
    /// Distinct lineage items in the trace.
    pub items: usize,
    /// Leading items forming the skewed hotspot.
    pub hot_items: usize,
    /// Probability a request targets the hotspot.
    pub hot_frac: f64,
    /// Requests to drive.
    pub requests: usize,
    /// Tenants (routed to origin nodes by hash).
    pub tenants: usize,
    /// Run a rebalance epoch every this many requests (0 = never).
    pub epoch_every: usize,
    /// Invalidate one hot item every this many requests (0 = never) —
    /// exercises write coherence (replica invalidation + recompute).
    pub invalidate_every: usize,
    /// Mid-run churn: a node joins at 1/3 of the trace and node 0
    /// leaves at 2/3.
    pub churn: bool,
    /// Replica copies per hot item.
    pub replicas: usize,
    /// Top-k replicated items.
    pub hot_k: usize,
    /// Heat threshold for replication.
    pub hot_min_probes: u64,
    /// Rebalance budget per epoch.
    pub rebalance_moves: usize,
    /// Per-node cache budget in bytes.
    pub node_budget: usize,
}

impl ClusterParams {
    /// Small deterministic run for tests and proptests.
    pub fn test(nodes: usize, seed: u64) -> Self {
        Self {
            nodes,
            seed,
            items: 24,
            hot_items: 4,
            hot_frac: 0.7,
            requests: 300,
            tenants: 8,
            epoch_every: 40,
            invalidate_every: 0,
            churn: false,
            replicas: 1,
            hot_k: 4,
            hot_min_probes: 3,
            rebalance_moves: 8,
            node_budget: 1 << 20,
        }
    }

    /// The gated configuration: 4 nodes, churn on, replication on,
    /// periodic invalidations — every counter class exercised.
    pub fn gate(seed: u64) -> Self {
        Self {
            nodes: 4,
            seed,
            items: 32,
            hot_items: 4,
            hot_frac: 0.75,
            requests: 600,
            tenants: 8,
            epoch_every: 50,
            invalidate_every: 150,
            churn: true,
            replicas: 2,
            hot_k: 4,
            hot_min_probes: 3,
            rebalance_moves: 6,
            node_budget: 1 << 20,
        }
    }
}

/// Outcome of one harness run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Order-sensitive FNV fold of every served object's fingerprint —
    /// node-count invariant by construction (payloads depend only on
    /// the item index).
    pub digest: u64,
    /// Cluster counter snapshot at the end of the run.
    pub stats: ClusterStatsSnapshot,
    /// Requests driven.
    pub requests: u64,
    /// Computations of an item whose result should still have been
    /// cached (invalidated items are excused). Churn alone must never
    /// force one, so a healthy run reports 0.
    pub recomputes: u64,
    /// Write invalidations the harness issued.
    pub invalidations_issued: u64,
    /// Hot-item reads served per node (computes excluded), sorted by
    /// node id.
    pub hot_serves: Vec<(NodeId, u64)>,
    /// `max(hot_serves) / sum(hot_serves)`, in thousandths — the
    /// flattening metric replication is judged by.
    pub hot_max_share_x1000: u64,
    /// Leftover queued moves after the final drain (should be 0).
    pub pending_moves: u64,
}

/// The trace's lineage item `i`.
pub fn cluster_item(i: usize) -> LItem {
    LineageItem::leaf(&format!("cluster/item{i}"))
}

/// The deterministic payload of item `i`: a 16x16 embedding matrix
/// (~2 KiB) whose fingerprint depends only on `i`.
pub fn cluster_payload(i: usize) -> CachedObject {
    CachedObject::Matrix(Arc::new(crate::data::embeddings(
        16,
        16,
        0xC1A0 ^ (i as u64),
    )))
}

fn object_fingerprint(o: &CachedObject) -> u64 {
    match o {
        CachedObject::Matrix(m) => m.fingerprint(),
        CachedObject::Scalar(s) => s.to_bits(),
        _ => 0,
    }
}

fn object_size(o: &CachedObject) -> usize {
    match o {
        CachedObject::Matrix(m) => m.size_bytes(),
        _ => std::mem::size_of::<f64>(),
    }
}

/// Analytical compute cost of a trace item.
const ITEM_COST: f64 = 50.0;

/// Drives the trace and returns the report. Single-threaded: requests
/// are processed in order, so the digest is well-defined.
pub fn run_cluster(p: &ClusterParams) -> ClusterReport {
    assert!(p.nodes >= 1 && p.items > p.hot_items && p.hot_items > 0);
    let _span = memphis_obs::span_with(memphis_obs::cat::CLUSTER, "cluster_harness", || {
        format!("nodes={} seed={} requests={}", p.nodes, p.seed, p.requests)
    });
    let cfg = ClusterConfig {
        seed: p.seed,
        node_budget: p.node_budget,
        shards: 8,
        replicas: p.replicas,
        hot_k: p.hot_k,
        hot_min_probes: p.hot_min_probes,
        rebalance_moves: p.rebalance_moves,
        net: memphis_cluster::NetworkModel::test(),
    };
    let node_ids: Vec<NodeId> = (0..p.nodes as NodeId).collect();
    let cluster = ClusterCache::new(cfg, &node_ids);

    let join_at = if p.churn { p.requests / 3 } else { usize::MAX };
    let leave_at = if p.churn {
        2 * p.requests / 3
    } else {
        usize::MAX
    };

    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        digest ^= v;
        digest = digest.wrapping_mul(0x1000_0000_01b3);
    };
    let mut computed: HashSet<usize> = HashSet::new();
    let mut recomputes = 0u64;
    let mut invalidations_issued = 0u64;
    let mut hot_counts: std::collections::BTreeMap<NodeId, u64> = std::collections::BTreeMap::new();

    for r in 0..p.requests {
        if r == join_at {
            cluster.join(p.nodes as NodeId);
        }
        if r == leave_at {
            cluster.leave(0);
        }
        if p.invalidate_every > 0 && r > 0 && r % p.invalidate_every == 0 {
            let idx = (hash(p.seed, salt::INVALIDATE, r as u64) % p.hot_items as u64) as usize;
            cluster.invalidate(&cluster_item(idx));
            computed.remove(&idx);
            invalidations_issued += 1;
        }

        let tenant = hash(p.seed, salt::TENANT, r as u64) % p.tenants as u64;
        let origin = cluster.route_hash(mix(p.seed ^ mix(tenant)));
        let idx = if decide(p.seed, salt::SKEW, r as u64) < p.hot_frac {
            (hash(p.seed, salt::HOT, r as u64) % p.hot_items as u64) as usize
        } else {
            p.hot_items
                + (hash(p.seed, salt::COLD, r as u64) % (p.items - p.hot_items) as u64) as usize
        };
        let item = cluster_item(idx);

        match cluster.probe_or_begin_from(origin, &item) {
            ClusterProbed::Hit { hit, locality } => {
                fold(object_fingerprint(&hit.object));
                if idx < p.hot_items {
                    let server = locality.node().unwrap_or(origin);
                    *hot_counts.entry(server).or_insert(0) += 1;
                }
            }
            ClusterProbed::Compute(g) => {
                let obj = cluster_payload(idx);
                fold(object_fingerprint(&obj));
                let size = object_size(&obj);
                cluster.complete_from(g, obj, ITEM_COST, size);
                if !computed.insert(idx) {
                    recomputes += 1;
                }
            }
        }

        if p.epoch_every > 0 && (r + 1) % p.epoch_every == 0 {
            cluster.rebalance_epoch();
        }
    }

    // Final drain so no move stays queued at report time.
    let mut guard = 0;
    while cluster.pending_moves() > 0 {
        cluster.rebalance_epoch();
        guard += 1;
        assert!(guard < 1024, "rebalance queue never drained");
    }

    let stats = cluster.stats();
    let hot_serves: Vec<(NodeId, u64)> = hot_counts.into_iter().collect();
    let total: u64 = hot_serves.iter().map(|&(_, c)| c).sum();
    let max: u64 = hot_serves.iter().map(|&(_, c)| c).max().unwrap_or(0);
    ClusterReport {
        digest,
        stats,
        requests: p.requests as u64,
        recomputes,
        invalidations_issued,
        hot_serves,
        hot_max_share_x1000: (max * 1000).checked_div(total).unwrap_or(0),
        pending_moves: cluster.pending_moves() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_is_deterministic() {
        let p = ClusterParams::test(3, 42);
        let a = run_cluster(&p);
        let b = run_cluster(&p);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.hot_serves, b.hot_serves);
    }

    #[test]
    fn digest_is_node_count_invariant() {
        let d1 = run_cluster(&ClusterParams::test(1, 7)).digest;
        let d4 = run_cluster(&ClusterParams::test(4, 7)).digest;
        assert_eq!(d1, d4);
    }

    #[test]
    fn churn_never_recomputes_without_invalidations() {
        let mut p = ClusterParams::test(4, 42);
        p.churn = true;
        let r = run_cluster(&p);
        assert_eq!(r.recomputes, 0, "join/leave must not lose entries");
        assert_eq!(r.pending_moves, 0);
        assert!(r.stats.rebalance_moves > 0, "churn must move something");
    }

    #[test]
    fn gate_config_exercises_every_counter_class() {
        let r = run_cluster(&ClusterParams::gate(42));
        assert!(r.stats.remote_hits > 0);
        assert!(r.stats.replica_hits > 0);
        assert!(r.stats.rebalance_moves > 0);
        assert!(r.stats.replica_invalidations > 0);
        assert!(r.stats.transfer_bytes > 0);
        assert_eq!(r.invalidations_issued, 3);
        assert_eq!(r.recomputes, 0, "only invalidations may force recomputes");
    }
}
