//! MEMPHIS engine: the ML-system compiler and multi-backend runtime the
//! lineage cache integrates with.
//!
//! Mirrors SystemDS's architecture at the granularity the paper needs:
//!
//! - [`context::ExecutionContext`] — the interpreter's instruction
//!   execution path. Every instruction runs through the Figure-4 hook:
//!   `TRACE → REUSE → execute → PUT`, with operator placement across the
//!   local CPU, the simulated Spark cluster, and the simulated GPU.
//! - [`context`] also implements the asynchronous operators of §5.1
//!   (`prefetch`, `broadcast`) returning future objects, plus multi-level
//!   (function) reuse of §3.3.
//! - [`plan`] — operator DAGs and program blocks (the compiler's view).
//! - [`compiler`] — the §5 rewrites: CSE, operator placement, prefetch and
//!   broadcast insertion, RDD checkpoint placement, eviction injection,
//!   delay-factor auto-tuning, and the `maxParallelize` linearization of
//!   Algorithm 2.
//! - [`interp`] — executes compiled programs against an execution context.

pub mod compiler;
pub mod config;
pub mod context;
pub mod cost;
pub mod interp;
pub mod ops;
pub mod plan;
pub mod recompute_exec;
pub mod value;

pub use config::{EngineConfig, ReuseMode};
pub use context::ExecutionContext;
pub use value::Value;
