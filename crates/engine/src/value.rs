//! Runtime values: backend-resident data objects and futures from
//! asynchronous operators.

use memphis_gpusim::GpuPtr;
use memphis_matrix::Matrix;
use memphis_sparksim::{BroadcastRef, RddRef};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// A data object bound to a live variable, resident on one backend
/// (the lifecycle of Figure 2(a)).
#[derive(Debug, Clone)]
pub enum Value {
    /// Driver-local dense matrix.
    Matrix(Matrix),
    /// Driver-local scalar.
    Scalar(f64),
    /// Distributed blocked matrix (possibly unmaterialized RDD lineage).
    Rdd {
        /// Handle into the simulated cluster.
        rdd: RddRef,
        /// Logical rows.
        rows: usize,
        /// Logical columns.
        cols: usize,
        /// Block side length.
        blen: usize,
    },
    /// Device-resident matrix.
    Gpu {
        /// Device pointer (managed by the GPU memory manager).
        ptr: GpuPtr,
        /// Logical rows.
        rows: usize,
        /// Logical columns.
        cols: usize,
    },
    /// Broadcast variable handle plus the driver's original matrix (the
    /// serialized broadcast copy can be destroyed by lazy GC without
    /// losing the driver-local value, as in SystemDS).
    Broadcast {
        /// The broadcast handle (may be destroyed by lazy GC).
        bc: BroadcastRef,
        /// The driver-local original.
        local: Matrix,
    },
    /// Result of an asynchronous operator (prefetch): resolves to another
    /// value when the background job completes.
    Future(Future),
}

impl Value {
    /// Logical shape where known.
    pub fn shape(&self) -> Option<(usize, usize)> {
        match self {
            Value::Matrix(m) => Some(m.shape()),
            Value::Scalar(_) => Some((1, 1)),
            Value::Rdd { rows, cols, .. } => Some((*rows, *cols)),
            Value::Gpu { rows, cols, .. } => Some((*rows, *cols)),
            Value::Broadcast { local, .. } => Some(local.shape()),
            Value::Future(_) => None,
        }
    }

    /// Backend tag for debugging and placement decisions.
    pub fn backend(&self) -> &'static str {
        match self {
            Value::Matrix(_) | Value::Scalar(_) => "cp",
            Value::Rdd { .. } => "sp",
            Value::Gpu { .. } => "gpu",
            Value::Broadcast { .. } => "bc",
            Value::Future(_) => "future",
        }
    }
}

struct FutureState {
    slot: Mutex<Option<Value>>,
    ready: Condvar,
}

/// A write-once future produced by asynchronous operators; cloning shares
/// the same slot. `get` blocks until the producer calls `fulfill`.
#[derive(Clone)]
pub struct Future(Arc<FutureState>);

impl Future {
    /// Creates an empty future.
    pub fn new() -> Self {
        Self(Arc::new(FutureState {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }))
    }

    /// Fulfills the future, waking all waiters. Later calls are ignored
    /// (write-once).
    pub fn fulfill(&self, value: Value) {
        let mut slot = self.0.slot.lock();
        if slot.is_none() {
            *slot = Some(value);
            self.0.ready.notify_all();
        }
    }

    /// Blocks until fulfilled and returns a clone of the value.
    pub fn get(&self) -> Value {
        let mut slot = self.0.slot.lock();
        while slot.is_none() {
            self.0.ready.wait(&mut slot);
        }
        slot.clone().expect("fulfilled")
    }

    /// Non-blocking poll.
    pub fn try_get(&self) -> Option<Value> {
        self.0.slot.lock().clone()
    }

    /// True when fulfilled.
    pub fn is_ready(&self) -> bool {
        self.0.slot.lock().is_some()
    }
}

impl Default for Future {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Future {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Future(ready={})", self.is_ready())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn future_fulfill_and_get() {
        let f = Future::new();
        assert!(!f.is_ready());
        assert!(f.try_get().is_none());
        f.fulfill(Value::Scalar(4.0));
        assert!(f.is_ready());
        match f.get() {
            Value::Scalar(v) => assert_eq!(v, 4.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn future_is_write_once() {
        let f = Future::new();
        f.fulfill(Value::Scalar(1.0));
        f.fulfill(Value::Scalar(2.0));
        match f.get() {
            Value::Scalar(v) => assert_eq!(v, 1.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn future_unblocks_waiter_across_threads() {
        let f = Future::new();
        let f2 = f.clone();
        let t = std::thread::spawn(move || f2.get());
        std::thread::sleep(std::time::Duration::from_millis(10));
        f.fulfill(Value::Scalar(7.0));
        match t.join().unwrap() {
            Value::Scalar(v) => assert_eq!(v, 7.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shapes_and_backends() {
        assert_eq!(Value::Scalar(1.0).shape(), Some((1, 1)));
        assert_eq!(Value::Scalar(1.0).backend(), "cp");
        let m = Value::Matrix(Matrix::zeros(3, 4));
        assert_eq!(m.shape(), Some((3, 4)));
        assert_eq!(Value::Future(Future::new()).shape(), None);
    }
}
