//! The interpreter's execution context: live variables, the Figure-4
//! reuse hook around every instruction, operator placement, asynchronous
//! operators (§5.1), and multi-level (function) reuse (§3.3).

use crate::config::{EngineConfig, ReuseMode};
use crate::cost;
use crate::value::{Future, Value};
use memphis_core::cache::entry::CachedObject;
use memphis_core::cache::{ComputeGuard, LineageCache, Probed};
use memphis_core::lineage::{LItem, LineageItem, LineageMap};
use memphis_core::stats::ReuseStats;
use memphis_gpusim::{GpuDevice, GpuError};
use memphis_matrix::{Matrix, MatrixError};
use memphis_sparksim::SparkContext;
use std::collections::HashMap;
use std::sync::Arc;

/// Errors surfaced by instruction execution.
#[derive(Debug)]
pub enum EngineError {
    /// Referenced variable is not bound.
    UnknownVar(String),
    /// A matrix kernel failed.
    Matrix(MatrixError),
    /// The GPU device failed (OOM after all eviction fallbacks).
    Gpu(GpuError),
    /// The operation is not valid for the operand's backend or shape.
    Unsupported(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownVar(v) => write!(f, "unknown variable {v}"),
            EngineError::Matrix(e) => write!(f, "matrix error: {e}"),
            EngineError::Gpu(e) => write!(f, "gpu error: {e}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<MatrixError> for EngineError {
    fn from(e: MatrixError) -> Self {
        EngineError::Matrix(e)
    }
}

impl From<GpuError> for EngineError {
    fn from(e: GpuError) -> Self {
        EngineError::Gpu(e)
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;

/// A live variable binding.
#[derive(Debug, Clone)]
pub(crate) struct Binding {
    pub value: Value,
    pub lineage: Option<LItem>,
    pub cost: f64,
}

/// Simple per-context execution counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Instructions submitted to the execution path.
    pub instructions: u64,
    /// Instructions skipped entirely by reuse.
    pub reused: u64,
    /// Instructions executed on the local CPU.
    pub executed_cp: u64,
    /// Instructions executed as Spark plans.
    pub executed_sp: u64,
    /// Instructions executed as GPU kernel chains.
    pub executed_gpu: u64,
    /// Function calls skipped by multi-level reuse.
    pub functions_reused: u64,
}

impl memphis_obs::IntoMetrics for EngineStats {
    fn metrics_section(&self) -> &'static str {
        "engine"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("instructions", self.instructions),
            ("reused", self.reused),
            ("executed_cp", self.executed_cp),
            ("executed_sp", self.executed_sp),
            ("executed_gpu", self.executed_gpu),
            ("functions_reused", self.functions_reused),
        ]
    }
}

/// The execution context: one per logical script run, sharing the lineage
/// cache (and therefore reuse state) with other contexts via `Arc`.
pub struct ExecutionContext {
    pub(crate) cfg: EngineConfig,
    pub(crate) cache: Arc<LineageCache>,
    pub(crate) lineage: LineageMap,
    pub(crate) vars: HashMap<String, Binding>,
    pub(crate) sc: Option<SparkContext>,
    pub(crate) gpu: Option<Arc<GpuDevice>>,
    pub(crate) delay: u32,
    /// Lineage item of the instruction currently executing (lets
    /// asynchronous action threads PUT their result when it arrives).
    pub(crate) current_item: Option<LItem>,
    /// Counters (instructions, reuse, per-backend execution).
    pub stats: EngineStats,
}

impl ExecutionContext {
    /// Creates a context over an existing cache and optional backends.
    pub fn new(
        cfg: EngineConfig,
        cache: Arc<LineageCache>,
        sc: Option<SparkContext>,
        gpu: Option<Arc<GpuDevice>>,
    ) -> Self {
        let delay = cfg.delay_factor;
        Self {
            cfg,
            cache,
            lineage: LineageMap::new(),
            vars: HashMap::new(),
            sc,
            gpu,
            delay,
            current_item: None,
            stats: EngineStats::default(),
        }
    }

    /// CPU-only context with a fresh cache (convenience for tests).
    pub fn local(cfg: EngineConfig) -> Self {
        let cache = Arc::new(LineageCache::new(
            memphis_core::cache::config::CacheConfig::test(),
        ));
        Self::new(cfg, cache, None, None)
    }

    /// The shared lineage cache.
    pub fn cache(&self) -> &Arc<LineageCache> {
        &self.cache
    }

    /// The Spark driver handle, if attached.
    pub fn spark(&self) -> Option<&SparkContext> {
        self.sc.as_ref()
    }

    /// The GPU device, if attached.
    pub fn gpu_device(&self) -> Option<&Arc<GpuDevice>> {
        self.gpu.as_ref()
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Sets the delayed-caching factor for subsequent instructions (the
    /// per-block value assigned by the auto-tuner, §5.2).
    pub fn set_delay(&mut self, n: u32) {
        self.delay = n.max(1);
    }

    /// Current delayed-caching factor.
    pub fn delay(&self) -> u32 {
        self.delay
    }

    // ------------------------------------------------------------------
    // Variable management
    // ------------------------------------------------------------------

    pub(crate) fn binding(&self, var: &str) -> Result<&Binding> {
        self.vars
            .get(var)
            .ok_or_else(|| EngineError::UnknownVar(var.to_string()))
    }

    /// The current value of a variable.
    pub fn value(&self, var: &str) -> Result<&Value> {
        Ok(&self.binding(var)?.value)
    }

    /// The lineage trace of a variable (None when tracing is disabled).
    pub fn lineage_of(&self, var: &str) -> Option<LItem> {
        self.vars.get(var).and_then(|b| b.lineage.clone())
    }

    /// Binds `var`, releasing any GPU pointer held by its prior value.
    pub(crate) fn bind(&mut self, var: &str, value: Value, lineage: Option<LItem>, cost: f64) {
        if let Some(item) = &lineage {
            self.lineage.bind(var, item.clone());
        }
        let old = self.vars.insert(
            var.to_string(),
            Binding {
                value,
                lineage,
                cost,
            },
        );
        self.release_binding(old);
    }

    fn release_binding(&self, old: Option<Binding>) {
        if let Some(b) = old {
            if let Value::Gpu { ptr, .. } = b.value {
                if self.cfg.gpu_recycling {
                    let height = b.lineage.as_ref().map(|l| l.height).unwrap_or(1);
                    self.cache.gpu_release(ptr, height, b.cost);
                } else {
                    self.cache.gpu_release_and_free(ptr);
                }
            }
        }
    }

    /// Removes a variable (end of scope), releasing backend resources.
    pub fn remove(&mut self, var: &str) {
        let old = self.vars.remove(var);
        self.lineage.remove(var);
        self.release_binding(old);
    }

    /// True when a variable is bound.
    pub fn has(&self, var: &str) -> bool {
        self.vars.contains_key(var)
    }

    /// Aliases `out = in` (no computation; shares the value and lineage).
    pub fn assign(&mut self, out: &str, input: &str) -> Result<()> {
        let b = self.binding(input)?.clone();
        // An alias adds a reference to a GPU pointer.
        if let Value::Gpu { ptr, .. } = &b.value {
            if let Some(g) = self.cache.gpu_manager() {
                g.acquire(*ptr);
            }
        }
        self.bind(out, b.value, b.lineage, b.cost);
        Ok(())
    }

    // ------------------------------------------------------------------
    // The Figure-4 reuse hook
    // ------------------------------------------------------------------

    /// Executes one instruction through `TRACE → REUSE → execute → PUT`.
    ///
    /// `compute` runs only on a cache miss and returns the output value
    /// plus its analytical compute cost.
    pub(crate) fn exec_instr<F>(
        &mut self,
        out: &str,
        opcode: &str,
        data: Vec<String>,
        inputs: &[&str],
        compute: F,
    ) -> Result<()>
    where
        F: FnOnce(&mut Self) -> Result<(Value, f64)>,
    {
        self.stats.instructions += 1;
        let mode = self.cfg.reuse;
        let op: String = opcode.to_string();
        let _instr_span = memphis_obs::span_with(memphis_obs::cat::INTERP, "instr", move || op);

        // TRACE
        let item = if mode.traces() {
            let _trace_span = memphis_obs::span(memphis_obs::cat::INTERP, "trace");
            Some(self.lineage.trace(out, opcode, data, inputs))
        } else {
            None
        };

        // REUSE. A miss claims the in-flight computation: a concurrent
        // session probing the same lineage item blocks on the marker and
        // consumes this session's result (coalesced hit) instead of
        // recomputing. The guard is completed by PUT below; any early
        // return or error drops it, abandoning the flight so waiters
        // retry.
        let mut guard: Option<ComputeGuard> = None;
        if mode.probes_ops() && mode != ReuseMode::ProbeOnly {
            if let Some(item) = &item {
                let probe_span = memphis_obs::span(memphis_obs::cat::INTERP, "probe");
                let probed = self.cache.probe_or_begin(item);
                drop(probe_span);
                match probed {
                    Probed::Hit(hit) | Probed::Coalesced(hit) => {
                        if let Some(value) = self.value_from_cached(&hit.object) {
                            memphis_obs::instant(memphis_obs::cat::REUSE, "hit");
                            let n = self.lineage.compact(item, &hit.canonical);
                            for _ in 0..n {
                                ReuseStats::inc(&self.cache.stats_handle().compactions);
                            }
                            let cost = 1.0; // reused: cost refreshed below by entry metadata
                            self.stats.reused += 1;
                            self.bind(out, value, Some(hit.canonical), cost);
                            return Ok(());
                        }
                        // Unconsumable representation: execute without
                        // owning a flight.
                        memphis_obs::instant(memphis_obs::cat::REUSE, "miss");
                    }
                    Probed::Compute(g) => {
                        guard = Some(g);
                        memphis_obs::instant(memphis_obs::cat::REUSE, "miss");
                    }
                }
            }
        } else if mode == ReuseMode::ProbeOnly {
            // Probe for overhead measurement, discard the result.
            if let Some(item) = &item {
                let _ = self.cache.probe(item);
            }
        }

        // Spark placement (before execution): any distributed input makes
        // this a Spark instruction — LIMA hooks only CP instructions.
        let sp_placed = inputs
            .iter()
            .any(|v| matches!(self.vars.get(*v).map(|b| &b.value), Some(Value::Rdd { .. })));

        // execute
        self.current_item = item.clone();
        let exec_span = memphis_obs::span(memphis_obs::cat::INTERP, "execute");
        let result = compute(self);
        drop(exec_span);
        self.current_item = None;
        let (value, cost_v) = result?;
        if sp_placed {
            self.stats.executed_sp += 1;
        } else {
            match value.backend() {
                "cp" | "bc" => self.stats.executed_cp += 1,
                "sp" => self.stats.executed_sp += 1,
                "gpu" => self.stats.executed_gpu += 1,
                _ => {}
            }
        }

        // PUT (async action results are PUT by their worker thread once
        // available — "reusing prefetched results").
        let lima_skip = mode == ReuseMode::Lima && sp_placed;
        if mode.puts_ops() && !lima_skip && !matches!(value, Value::Future(_)) {
            if let Some(item) = &item {
                if let Some(obj) = self.cacheable_object(&value) {
                    let _put_span = memphis_obs::span(memphis_obs::cat::INTERP, "put");
                    let size_hint = value
                        .shape()
                        .map(|(r, c)| cost::dense_bytes(r, c))
                        .unwrap_or(16);
                    match guard.take() {
                        // Owner path: hand the result to every waiter.
                        Some(g) => {
                            self.cache.complete(g, obj, cost_v, size_hint, self.delay);
                        }
                        None => {
                            self.cache.put(item, obj, cost_v, size_hint, self.delay);
                        }
                    }
                }
            }
        }
        // A leftover guard (future result, LIMA skip, uncacheable value)
        // drops here, abandoning the flight so waiters recompute.
        drop(guard);
        self.bind(out, value, item, cost_v);
        Ok(())
    }

    /// Converts a cached object back into a runtime value, acquiring
    /// backend resources as needed. Returns `None` for objects this mode
    /// cannot consume.
    fn value_from_cached(&self, obj: &CachedObject) -> Option<Value> {
        match obj {
            // The Arc shares the buffer; Matrix itself is a cheap handle.
            CachedObject::Matrix(m) => Some(Value::Matrix(m.as_ref().clone())),
            CachedObject::Scalar(v) => Some(Value::Scalar(*v)),
            CachedObject::Rdd { rdd, rows, cols } => Some(Value::Rdd {
                rdd: rdd.clone(),
                rows: *rows,
                cols: *cols,
                blen: self.cfg.blen,
            }),
            // Probe already acquired the pointer.
            CachedObject::Gpu { ptr, rows, cols } => Some(Value::Gpu {
                ptr: *ptr,
                rows: *rows,
                cols: *cols,
            }),
            CachedObject::Disk(_) => None, // probe converts disk hits to Matrix
        }
    }

    /// Which values this mode offers to the cache.
    fn cacheable_object(&self, value: &Value) -> Option<CachedObject> {
        let mode = self.cfg.reuse;
        match value {
            Value::Matrix(m) => Some(CachedObject::Matrix(Arc::new(m.clone()))),
            Value::Scalar(v) => Some(CachedObject::Scalar(*v)),
            Value::Rdd {
                rdd, rows, cols, ..
            } if mode.multibackend() => Some(CachedObject::Rdd {
                rdd: rdd.clone(),
                rows: *rows,
                cols: *cols,
            }),
            Value::Gpu { ptr, rows, cols } if mode.multibackend() => Some(CachedObject::Gpu {
                ptr: *ptr,
                rows: *rows,
                cols: *cols,
            }),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Data movement
    // ------------------------------------------------------------------

    /// Forces a variable to a driver-local dense matrix: waits on futures,
    /// collects RDDs (a Spark action), and copies device pointers to the
    /// host (a synchronization barrier).
    pub fn get_matrix(&mut self, var: &str) -> Result<Matrix> {
        let value = self.binding(var)?.value.clone();
        match value {
            Value::Matrix(m) => Ok(m),
            Value::Scalar(v) => Ok(Matrix::scalar(v)),
            // The driver's original matrix outlives the broadcast copy.
            Value::Broadcast { local, .. } => Ok(local),
            Value::Rdd {
                rdd,
                rows,
                cols,
                blen,
            } => {
                let sc = self
                    .sc
                    .as_ref()
                    .ok_or_else(|| EngineError::Unsupported("no Spark backend".into()))?;
                let m = sc
                    .collect_blocked(&rdd, rows, cols, blen)
                    .to_dense()
                    .map_err(EngineError::Matrix)?;
                if let Some(item) = self.lineage_of(var) {
                    self.cache.note_job(&item);
                }
                Ok(m)
            }
            Value::Gpu { ptr, .. } => {
                let gpu = self
                    .gpu
                    .as_ref()
                    .ok_or_else(|| EngineError::Unsupported("no GPU backend".into()))?;
                Ok(gpu.copy_to_host(ptr)?)
            }
            Value::Future(f) => {
                let resolved = f.get();
                let b = self.binding(var)?.clone();
                self.bind(var, resolved, b.lineage, b.cost);
                self.get_matrix(var)
            }
        }
    }

    /// Forces a variable to a scalar.
    pub fn get_scalar(&mut self, var: &str) -> Result<f64> {
        match self.binding(var)?.value.clone() {
            Value::Scalar(v) => Ok(v),
            _ => {
                let m = self.get_matrix(var)?;
                m.as_scalar().map_err(EngineError::Matrix)
            }
        }
    }

    // ------------------------------------------------------------------
    // Asynchronous operators (§5.1)
    // ------------------------------------------------------------------

    /// `prefetch`: asynchronously triggers the remote job (Spark collect or
    /// GPU device-to-host copy) that materializes `var` on the driver, and
    /// rebinds the variable to a future. The spawned thread PUTs the
    /// fetched result into the cache once available ("reusing prefetched
    /// results"). No-op when async operators are disabled or the value is
    /// already local.
    pub fn prefetch(&mut self, var: &str) -> Result<()> {
        if !self.cfg.async_ops {
            return Ok(());
        }
        let b = self.binding(var)?.clone();
        let future = Future::new();
        match b.value {
            Value::Rdd {
                rdd,
                rows,
                cols,
                blen,
            } => {
                let sc = self
                    .sc
                    .as_ref()
                    .ok_or_else(|| EngineError::Unsupported("no Spark backend".into()))?
                    .clone();
                let cache = self.cache.clone();
                let item = b.lineage.clone();
                let fut = future.clone();
                let cost = b.cost;
                let puts = self.cfg.reuse.puts_ops();
                std::thread::spawn(move || {
                    let _span = memphis_obs::span(memphis_obs::cat::ASYNC, "prefetch_collect");
                    // The collected result is cached under a derived
                    // "collect" lineage. Probing with an in-flight claim
                    // first means two racing prefetches of the same
                    // lineage (or a prefetch racing a synchronous
                    // collect) run the Spark job once: the loser blocks
                    // on the winner's marker and reuses its matrix.
                    if puts {
                        if let Some(item) = &item {
                            cache.note_job(item);
                            let collected = LineageItem::new("collect", vec![], vec![item.clone()]);
                            match cache.probe_or_begin(&collected) {
                                Probed::Hit(h) | Probed::Coalesced(h) => {
                                    if let CachedObject::Matrix(m) = h.object {
                                        fut.fulfill(Value::Matrix(m.as_ref().clone()));
                                        return;
                                    }
                                }
                                Probed::Compute(g) => {
                                    if let Ok(m) =
                                        sc.collect_blocked(&rdd, rows, cols, blen).to_dense()
                                    {
                                        let size = m.size_bytes();
                                        cache.complete(
                                            g,
                                            CachedObject::Matrix(Arc::new(m.clone())),
                                            cost,
                                            size,
                                            1,
                                        );
                                        fut.fulfill(Value::Matrix(m));
                                    }
                                    return;
                                }
                            }
                        }
                    }
                    if let Ok(m) = sc.collect_blocked(&rdd, rows, cols, blen).to_dense() {
                        fut.fulfill(Value::Matrix(m));
                    }
                });
                self.bind(var, Value::Future(future), b.lineage, b.cost);
                Ok(())
            }
            Value::Gpu { ptr, .. } => {
                let gpu = self
                    .gpu
                    .as_ref()
                    .ok_or_else(|| EngineError::Unsupported("no GPU backend".into()))?
                    .clone();
                let fut = future.clone();
                std::thread::spawn(move || {
                    let _span = memphis_obs::span(memphis_obs::cat::ASYNC, "prefetch_d2h");
                    if let Ok(m) = gpu.copy_to_host(ptr) {
                        fut.fulfill(Value::Matrix(m));
                    }
                });
                // Keep the GPU pointer reference until the copy completes:
                // the future replaces the binding, so bump then release in
                // the thread? The device keeps data until free — binding
                // replacement releases our reference, but the copy was
                // already enqueued (stream order preserves the data).
                self.bind(var, Value::Future(future), b.lineage, b.cost);
                Ok(())
            }
            _ => Ok(()), // already local
        }
    }

    /// `broadcast`: registers a local matrix variable as a Spark broadcast
    /// (torrent-chunked, lazily shipped). Later distributed operators use
    /// the handle instead of re-broadcasting.
    pub fn broadcast(&mut self, var: &str) -> Result<()> {
        let sc = self
            .sc
            .as_ref()
            .ok_or_else(|| EngineError::Unsupported("no Spark backend".into()))?
            .clone();
        let b = self.binding(var)?.clone();
        if let Value::Matrix(m) = b.value {
            let _span = memphis_obs::span(memphis_obs::cat::ASYNC, "broadcast");
            let bc = sc.broadcast(m.clone());
            self.bind(var, Value::Broadcast { bc, local: m }, b.lineage, b.cost);
        }
        Ok(())
    }

    /// The `evict(p)` instruction (§5.2): backend-specific cache cleanup of
    /// `fraction` of the GPU free list.
    pub fn evict_gpu(&mut self, fraction: f64) {
        self.cache.evict_gpu_fraction(fraction);
    }

    /// `checkpoint`: compiler-placed `persist()` on a distributed variable
    /// (§5.2). Counts toward the lineage cache's RDD budget accounting.
    pub fn checkpoint(&mut self, var: &str) -> Result<()> {
        let b = self.binding(var)?;
        if let Value::Rdd {
            rdd, rows, cols, ..
        } = &b.value
        {
            rdd.persist(memphis_sparksim::StorageLevel::MemoryAndDisk);
            let _ = (rows, cols);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Multi-level (function) reuse
    // ------------------------------------------------------------------

    /// Calls a deterministic function with multi-level reuse: if every
    /// output of `name` for these exact inputs is cached, the body is
    /// skipped entirely; otherwise the body runs (with fine-grained reuse
    /// inside) and its outputs are cached under special function items.
    ///
    /// `inputs` must cover every value the body reads that can vary.
    pub fn call_function<F>(
        &mut self,
        name: &str,
        inputs: &[&str],
        outputs: &[&str],
        body: F,
    ) -> Result<()>
    where
        F: FnOnce(&mut Self) -> Result<()>,
    {
        let mode = self.cfg.reuse;
        let func_items: Option<Vec<LItem>> = if mode.traces() {
            let in_items: Vec<LItem> = inputs
                .iter()
                .map(|v| {
                    self.lineage
                        .get(v)
                        .cloned()
                        .ok_or_else(|| EngineError::UnknownVar(v.to_string()))
                })
                .collect::<Result<_>>()?;
            Some(
                outputs
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        LineageItem::new(
                            &format!("func:{name}"),
                            vec![format!("out={i}")],
                            in_items.clone(),
                        )
                    })
                    .collect(),
            )
        } else {
            None
        };

        // Multi-level REUSE: all outputs must hit.
        if mode.multilevel() {
            if let Some(items) = &func_items {
                let hits: Vec<_> = items.iter().map(|i| self.cache.probe(i)).collect();
                if hits.iter().all(|h| h.is_some()) {
                    for ((out, item), hit) in outputs.iter().zip(items).zip(hits) {
                        let hit = hit.expect("checked");
                        if let Some(value) = self.value_from_cached(&hit.object) {
                            self.bind(out, value, Some(item.clone()), 1.0);
                        } else {
                            // Unconsumable cached object: fall through to
                            // execution for everything.
                            return self.run_function_body(name, func_items, outputs, body);
                        }
                    }
                    self.stats.functions_reused += 1;
                    return Ok(());
                }
            }
        }
        self.run_function_body(name, func_items, outputs, body)
    }

    fn run_function_body<F>(
        &mut self,
        _name: &str,
        func_items: Option<Vec<LItem>>,
        outputs: &[&str],
        body: F,
    ) -> Result<()>
    where
        F: FnOnce(&mut Self) -> Result<()>,
    {
        body(self)?;
        // PUT function outputs under the function items and rebind the
        // outputs' lineage to the compact function items.
        if self.cfg.reuse.multilevel() {
            if let Some(items) = func_items {
                for (out, item) in outputs.iter().zip(items) {
                    let Ok(b) = self.binding(out) else { continue };
                    let cost = b.cost;
                    let value = b.value.clone();
                    if let Some(obj) = self.cacheable_function_object(&value) {
                        let size_hint = value
                            .shape()
                            .map(|(r, c)| cost::dense_bytes(r, c))
                            .unwrap_or(16);
                        self.cache.put(&item, obj, cost, size_hint, 1);
                    }
                    let b = self.vars.get_mut(*out).expect("bound");
                    b.lineage = Some(item.clone());
                    self.lineage.bind(out, item);
                }
            }
        }
        Ok(())
    }

    /// Function outputs cacheable under multi-level entries: HELIX caches
    /// local results only; MEMPHIS caches any backend.
    fn cacheable_function_object(&self, value: &Value) -> Option<CachedObject> {
        match value {
            Value::Matrix(m) => Some(CachedObject::Matrix(Arc::new(m.clone()))),
            Value::Scalar(v) => Some(CachedObject::Scalar(*v)),
            Value::Rdd {
                rdd, rows, cols, ..
            } if self.cfg.reuse.multibackend() => Some(CachedObject::Rdd {
                rdd: rdd.clone(),
                rows: *rows,
                cols: *cols,
            }),
            Value::Gpu { ptr, rows, cols } if self.cfg.reuse.multibackend() => {
                Some(CachedObject::Gpu {
                    ptr: *ptr,
                    rows: *rows,
                    cols: *cols,
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_var_errors() {
        let ctx = ExecutionContext::local(EngineConfig::test());
        assert!(matches!(
            ctx.binding("nope"),
            Err(EngineError::UnknownVar(_))
        ));
    }
}
