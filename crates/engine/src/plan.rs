//! Operator DAGs and program blocks — the compiler's view of an ML script
//! (SystemDS-style program compilation: a hierarchy of blocks, each
//! last-level block a DAG of operators).

use memphis_matrix::ops::agg::AggOp;
use memphis_matrix::ops::binary::BinaryOp;
use memphis_matrix::ops::nn::{Conv2dParams, Pool2dParams};
use memphis_matrix::ops::unary::UnaryOp;

use crate::ops::AggDir;

/// A scalar argument that may be loop-dependent.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarRef {
    /// Compile-time constant.
    Const(f64),
    /// The current value of a surrounding loop variable (prevents reuse
    /// across iterations unless values repeat).
    Loop(String),
}

/// Operator kinds the planner understands.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Seeded random generation.
    Rand {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
        /// Seed.
        seed: u64,
    },
    /// Matrix multiply.
    MatMul,
    /// `t(X) %*% X`.
    Tsmm,
    /// `t(X) %*% y`.
    Xty,
    /// Transpose.
    Transpose,
    /// Linear solve.
    Solve,
    /// Elementwise binary.
    Binary(BinaryOp),
    /// Elementwise against a scalar reference.
    BinaryScalar {
        /// Operator.
        op: BinaryOp,
        /// The scalar argument.
        scalar: ScalarRef,
        /// Scalar on the left side.
        swap: bool,
    },
    /// Elementwise unary.
    Unary(UnaryOp),
    /// Aggregation.
    Agg(AggOp, AggDir),
    /// Scalar literal binding (script frontend: `a = 0.5;`).
    Literal(f64),
    /// Lineage-preserving variable aliasing (script frontend: `a = b;`).
    Alias,
    /// Row slice `[start, end)`.
    SliceRows {
        /// First row (inclusive).
        start: usize,
        /// Last row (exclusive).
        end: usize,
    },
    /// Column slice `[start, end)`.
    SliceCols {
        /// First column (inclusive).
        start: usize,
        /// Last column (exclusive).
        end: usize,
    },
    /// 2-D convolution over NCHW-linearized images (inputs: X, W).
    Conv2d(Conv2dParams),
    /// 2-D max pooling over NCHW-linearized images.
    MaxPool2d(Pool2dParams),
    /// Fully-connected layer `X %*% W + b` (inputs: X, W, b).
    Affine,
    /// Compiler-inserted `persist()` on the input (checkpoint, §5.2).
    Checkpoint,
    /// Compiler-inserted asynchronous prefetch of the input (§5.1).
    Prefetch,
    /// Compiler-inserted asynchronous broadcast of the input (§5.1).
    Broadcast,
    /// Compiler-inserted GPU cache cleanup with a fraction (§5.2).
    Evict(f64),
}

impl OpKind {
    /// True for operators that trigger a Spark action when their input is
    /// distributed (roots of remote operator chains).
    pub fn is_action_like(&self) -> bool {
        matches!(
            self,
            OpKind::Tsmm
                | OpKind::Xty
                | OpKind::Transpose
                | OpKind::Agg(_, AggDir::Full)
                | OpKind::Agg(_, AggDir::Col)
        )
    }
}

/// Operator input: an external variable or another node of the same DAG.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Named variable (bound by an outer block or the host).
    Var(String),
    /// Output of DAG node `id`.
    Node(usize),
}

/// One operator node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Node id (index into the DAG).
    pub id: usize,
    /// Operator.
    pub kind: OpKind,
    /// Inputs.
    pub inputs: Vec<Operand>,
    /// Variables this node's output is bound to (CSE may merge several).
    pub outputs: Vec<String>,
}

/// A DAG of operators (one basic block's computation).
#[derive(Debug, Clone, Default)]
pub struct Dag {
    /// Nodes in creation order; `Operand::Node` refers into this list.
    pub nodes: Vec<Node>,
}

impl Dag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a node and returns its id.
    pub fn add(&mut self, kind: OpKind, inputs: Vec<Operand>, output: Option<&str>) -> usize {
        let id = self.nodes.len();
        self.nodes.push(Node {
            id,
            kind,
            inputs,
            outputs: output.map(|s| vec![s.to_string()]).unwrap_or_default(),
        });
        id
    }

    /// Node ids that no other node consumes (DAG sinks).
    pub fn sinks(&self) -> Vec<usize> {
        let mut consumed = vec![false; self.nodes.len()];
        for n in &self.nodes {
            for i in &n.inputs {
                if let Operand::Node(id) = i {
                    consumed[*id] = true;
                }
            }
        }
        (0..self.nodes.len()).filter(|&i| !consumed[i]).collect()
    }

    /// Consumers of each node.
    pub fn consumers(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for n in &self.nodes {
            for i in &n.inputs {
                if let Operand::Node(id) = i {
                    out[*id].push(n.id);
                }
            }
        }
        out
    }
}

/// Per-block compiler hints (delay factor, §5.2 auto-tuning output).
#[derive(Debug, Clone)]
pub struct BlockHints {
    /// Delayed-caching factor n assigned to this block.
    pub delay: u32,
    /// Estimated executions of this block (product of loop trip counts).
    pub exec_estimate: u64,
    /// Fraction of the block's operators that are loop-dependent.
    pub loop_dependent_fraction: f64,
}

impl Default for BlockHints {
    fn default() -> Self {
        Self {
            delay: 1,
            exec_estimate: 1,
            loop_dependent_fraction: 0.0,
        }
    }
}

/// A program block.
#[derive(Debug, Clone)]
pub enum Block {
    /// Straight-line operator DAG.
    Basic {
        /// The computation.
        dag: Dag,
        /// Compiler hints.
        hints: BlockHints,
    },
    /// Counted loop binding `var` to each value in order.
    For {
        /// Loop variable name.
        var: String,
        /// Values iterated in order.
        values: Vec<f64>,
        /// Loop body.
        body: Vec<Block>,
    },
    /// Condition-driven loop: runs `body` while the scalar variable
    /// `cond_var` is non-zero (re-read after each iteration), up to
    /// `max_iterations` (conditional control flow is unknown at compile
    /// time — the reason CSE alone cannot eliminate redundancy, §2.1).
    While {
        /// Scalar condition variable, evaluated by the body.
        cond_var: String,
        /// Safety bound on iterations.
        max_iterations: usize,
        /// Loop body.
        body: Vec<Block>,
    },
    /// Branch on a scalar variable: non-zero runs `then_blocks`, zero
    /// runs `else_blocks`.
    If {
        /// Scalar condition variable.
        cond_var: String,
        /// Taken when the condition is non-zero.
        then_blocks: Vec<Block>,
        /// Taken when the condition is zero.
        else_blocks: Vec<Block>,
    },
}

/// A compiled program: a hierarchy of blocks plus static dimension
/// metadata for external inputs (used by placement).
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Top-level blocks.
    pub blocks: Vec<Block>,
    /// Known dims of external variables (rows, cols).
    pub var_dims: std::collections::HashMap<String, (usize, usize)>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an external input's shape for placement decisions.
    pub fn declare(&mut self, var: &str, rows: usize, cols: usize) {
        self.var_dims.insert(var.to_string(), (rows, cols));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_sinks_and_consumers() {
        let mut d = Dag::new();
        let a = d.add(OpKind::Tsmm, vec![Operand::Var("X".into())], None);
        let b = d.add(
            OpKind::Unary(UnaryOp::Relu),
            vec![Operand::Node(a)],
            Some("out"),
        );
        assert_eq!(d.sinks(), vec![b]);
        assert_eq!(d.consumers()[a], vec![b]);
        assert!(d.consumers()[b].is_empty());
    }

    #[test]
    fn action_like_classification() {
        assert!(OpKind::Tsmm.is_action_like());
        assert!(OpKind::Agg(AggOp::Sum, AggDir::Full).is_action_like());
        assert!(!OpKind::Binary(BinaryOp::Add).is_action_like());
        assert!(!OpKind::Agg(AggOp::Sum, AggDir::Row).is_action_like());
    }
}
