//! The engine-side [`LineageExecutor`]: re-executes serialized lineage
//! traces over the local matrix kernels, enabling the paper's RECOMPUTE
//! API for debugging and cross-environment reproduction (§3.2).

use memphis_core::cache::entry::CachedObject;
use memphis_core::lineage::LItem;
use memphis_core::recompute::LineageExecutor;
use memphis_matrix::ops::agg::{self, AggOp};
use memphis_matrix::ops::binary::{self, BinaryOp};
use memphis_matrix::ops::matmul as mm;
use memphis_matrix::ops::nn;
use memphis_matrix::ops::reorg;
use memphis_matrix::ops::solve as msolve;
use memphis_matrix::ops::unary::{self, UnaryOp};
use memphis_matrix::rand_gen;
use memphis_matrix::Matrix;
use std::collections::HashMap;

/// Executes lineage nodes over driver-local matrices. Leaf nodes resolve
/// through the registered input datasets (by the same names used in
/// `ExecutionContext::read`).
#[derive(Default)]
pub struct MatrixExecutor {
    /// Input datasets by lineage leaf name.
    pub inputs: HashMap<String, Matrix>,
}

impl MatrixExecutor {
    /// Creates an executor with the given input datasets.
    pub fn new(inputs: HashMap<String, Matrix>) -> Self {
        Self { inputs }
    }

    /// Registers one input dataset.
    pub fn with_input(mut self, name: &str, m: Matrix) -> Self {
        self.inputs.insert(name.to_string(), m);
        self
    }
}

fn as_matrix(o: &CachedObject) -> Result<Matrix, String> {
    match o {
        CachedObject::Matrix(m) => Ok(m.as_ref().clone()),
        CachedObject::Scalar(v) => Ok(Matrix::scalar(*v)),
        other => Err(format!("non-local input: {}", other.backend())),
    }
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad {what}: {s}"))
}

fn binary_op_of(opcode: &str) -> Option<BinaryOp> {
    Some(match opcode {
        "+" => BinaryOp::Add,
        "-" => BinaryOp::Sub,
        "*" => BinaryOp::Mul,
        "/" => BinaryOp::Div,
        "^" => BinaryOp::Pow,
        "min" => BinaryOp::Min,
        "max" => BinaryOp::Max,
        ">" => BinaryOp::Greater,
        "<" => BinaryOp::Less,
        ">=" => BinaryOp::GreaterEq,
        "<=" => BinaryOp::LessEq,
        "==" => BinaryOp::Equal,
        "!=" => BinaryOp::NotEqual,
        _ => return None,
    })
}

fn unary_op_of(opcode: &str) -> Option<UnaryOp> {
    Some(match opcode {
        "exp" => UnaryOp::Exp,
        "log" => UnaryOp::Log,
        "sqrt" => UnaryOp::Sqrt,
        "abs" => UnaryOp::Abs,
        "neg" => UnaryOp::Neg,
        "round" => UnaryOp::Round,
        "floor" => UnaryOp::Floor,
        "ceil" => UnaryOp::Ceil,
        "relu" => UnaryOp::Relu,
        "sigmoid" => UnaryOp::Sigmoid,
        "tanh" => UnaryOp::Tanh,
        "sign" => UnaryOp::Sign,
        "recip" => UnaryOp::Recip,
        "notzero" => UnaryOp::NotZero,
        "isnan" => UnaryOp::IsNan,
        "nan0" => UnaryOp::Nan0,
        _ => return None,
    })
}

fn agg_op_of(s: &str) -> Option<AggOp> {
    Some(match s {
        "sum" => AggOp::Sum,
        "mean" => AggOp::Mean,
        "min" => AggOp::Min,
        "max" => AggOp::Max,
        "sumsq" => AggOp::SumSq,
        "nnz" => AggOp::Nnz,
        "var" => AggOp::Var,
        "argmax" => AggOp::ArgMax,
        _ => return None,
    })
}

impl LineageExecutor for MatrixExecutor {
    fn execute(&mut self, item: &LItem, inputs: &[CachedObject]) -> Result<CachedObject, String> {
        let opcode: &str = &item.opcode;
        let m = |i: usize| as_matrix(&inputs[i]);
        let ok = |m: Matrix| Ok(CachedObject::Matrix(std::sync::Arc::new(m)));
        match opcode {
            "leaf" => {
                let name = &item.data[0];
                if let Some(v) = name.strip_prefix("scalar:") {
                    return Ok(CachedObject::Scalar(parse(v, "scalar")?));
                }
                self.inputs
                    .get(name)
                    .cloned()
                    .map(|m| CachedObject::Matrix(std::sync::Arc::new(m)))
                    .ok_or_else(|| format!("unknown input dataset {name}"))
            }
            "rand" => {
                let rows = parse(&item.data[0], "rows")?;
                let cols = parse(&item.data[1], "cols")?;
                let min = parse(&item.data[2], "min")?;
                let max = parse(&item.data[3], "max")?;
                let seed = parse(&item.data[4], "seed")?;
                ok(rand_gen::rand_uniform(rows, cols, min, max, seed))
            }
            "seq" => {
                let from = parse(&item.data[0], "from")?;
                let to = parse(&item.data[1], "to")?;
                let incr = parse(&item.data[2], "incr")?;
                ok(Matrix::seq(from, to, incr))
            }
            "ba+*" => ok(mm::matmul(&m(0)?, &m(1)?).map_err(|e| e.to_string())?),
            "tsmm" => ok(mm::tsmm(&m(0)?).map_err(|e| e.to_string())?),
            "tmm-y" => {
                ok(mm::matmul(&reorg::transpose(&m(0)?), &m(1)?).map_err(|e| e.to_string())?)
            }
            "r'" => ok(reorg::transpose(&m(0)?)),
            "solve" => ok(msolve::solve(&m(0)?, &m(1)?).map_err(|e| e.to_string())?),
            "rightIndex" => {
                let s = parse(&item.data[0], "start")?;
                let e = parse(&item.data[1], "end")?;
                ok(reorg::slice_rows(&m(0)?, s, e).map_err(|e| e.to_string())?)
            }
            "rightIndexCol" => {
                let s = parse(&item.data[0], "start")?;
                let e = parse(&item.data[1], "end")?;
                ok(reorg::slice_cols(&m(0)?, s, e).map_err(|e| e.to_string())?)
            }
            "rbind" => ok(reorg::rbind(&m(0)?, &m(1)?).map_err(|e| e.to_string())?),
            "cbind" => ok(reorg::cbind(&m(0)?, &m(1)?).map_err(|e| e.to_string())?),
            "removeEmpty" => ok(reorg::select_rows(&m(0)?, &m(1)?).map_err(|e| e.to_string())?),
            "softmax" => ok(nn::softmax_rows(&m(0)?)),
            "dropout" => {
                let rate = parse(&item.data[0], "rate")?;
                let seed = parse(&item.data[1], "seed")?;
                ok(nn::dropout(&m(0)?, rate, seed))
            }
            "affine" => ok(nn::affine(&m(0)?, &m(1)?, &m(2)?).map_err(|e| e.to_string())?),
            "collect" => Ok(inputs[0].clone()),
            _ => {
                // Elementwise binary (2 inputs) or against a literal
                // constant (1 input + data).
                if let Some(op) = binary_op_of(opcode) {
                    return if inputs.len() == 2 {
                        ok(binary::binary(&m(0)?, &m(1)?, op).map_err(|e| e.to_string())?)
                    } else {
                        let c = parse(&item.data[0], "constant")?;
                        let swap: bool = parse(&item.data[1], "swap")?;
                        ok(binary::binary_scalar(&m(0)?, c, op, swap))
                    };
                }
                if let Some(op) = unary_op_of(opcode) {
                    return ok(unary::unary(&m(0)?, op));
                }
                if let Some(rest) = opcode.strip_prefix("ua") {
                    let (dir, op_str) = if let Some(r) = rest.strip_prefix('r') {
                        ('r', r)
                    } else if let Some(c) = rest.strip_prefix('c') {
                        ('c', c)
                    } else {
                        (' ', rest)
                    };
                    let op = agg_op_of(op_str).ok_or_else(|| format!("bad agg {opcode}"))?;
                    let x = m(0)?;
                    return match dir {
                        'r' => ok(agg::row_agg(&x, op).map_err(|e| e.to_string())?),
                        'c' => ok(agg::col_agg(&x, op).map_err(|e| e.to_string())?),
                        _ => Ok(CachedObject::Scalar(
                            agg::aggregate(&x, op).map_err(|e| e.to_string())?,
                        )),
                    };
                }
                Err(format!("unsupported opcode for recompute: {opcode}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::context::ExecutionContext;
    use memphis_core::lineage::serialize;
    use memphis_core::recompute::recompute;
    use memphis_matrix::ops::matmul::tsmm;
    use memphis_matrix::rand_gen::rand_uniform;

    #[test]
    fn recompute_reproduces_traced_pipeline() {
        let mut ctx = ExecutionContext::local(EngineConfig::test());
        let x = rand_uniform(16, 4, -1.0, 1.0, 1);
        ctx.read("X", x.clone(), "X.bin").unwrap();
        ctx.tsmm("G", "X").unwrap();
        ctx.binary_const("A", "G", 0.1, BinaryOp::Add, false)
            .unwrap();
        ctx.unary("R", "A", UnaryOp::Sqrt).unwrap();
        let expected = ctx.get_matrix("R").unwrap();

        // Serialize the trace, then RECOMPUTE it from scratch.
        let trace = ctx.lineage_of("R").expect("traced");
        let log = serialize(&trace);
        let mut exec = MatrixExecutor::default().with_input("X.bin", x.clone());
        match recompute(&log, &mut exec).unwrap() {
            CachedObject::Matrix(m) => {
                assert!(m.approx_eq(&expected, 1e-12));
                let manual = unary::unary(
                    &binary::binary_scalar(&tsmm(&x).unwrap(), 0.1, BinaryOp::Add, false),
                    UnaryOp::Sqrt,
                );
                assert!(m.approx_eq(&manual, 1e-12));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn recompute_handles_rand_and_scalars() {
        let mut ctx = ExecutionContext::local(EngineConfig::test());
        ctx.rand("X", 8, 8, 0.0, 1.0, 99).unwrap();
        ctx.literal("s", 3.0).unwrap();
        ctx.binary("Y", "X", "s", BinaryOp::Mul).unwrap();
        ctx.agg("t", "Y", AggOp::Sum, crate::ops::AggDir::Full)
            .unwrap();
        let expected = ctx.get_scalar("t").unwrap();
        let log = serialize(&ctx.lineage_of("t").unwrap());
        let mut exec = MatrixExecutor::default();
        match recompute(&log, &mut exec).unwrap() {
            CachedObject::Scalar(v) => assert!((v - expected).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_dataset_errors() {
        let mut ctx = ExecutionContext::local(EngineConfig::test());
        ctx.read("X", rand_uniform(4, 4, 0.0, 1.0, 2), "missing.bin")
            .unwrap();
        ctx.tsmm("G", "X").unwrap();
        let log = serialize(&ctx.lineage_of("G").unwrap());
        let mut exec = MatrixExecutor::default();
        assert!(recompute(&log, &mut exec).is_err());
    }
}
