//! The engine's instruction set: every method executes through the
//! Figure-4 reuse hook with operator placement across CPU, the simulated
//! Spark cluster, and the simulated GPU device.
//!
//! Distributed matrices are **row-blocked**: one record per `blen`-row
//! stripe, keyed `(row_block, 0)`. This matches the tall-and-skinny
//! feature matrices of the paper's workloads and makes elementwise ops
//! narrow (co-partitioned zips) while aggregations use single-block
//! `reduce()` actions — the implicit-action pattern §4.1 exploits for
//! Spark action reuse.

use crate::context::{EngineError, ExecutionContext, Result};
use crate::cost;
use crate::value::Value;
use memphis_matrix::ops::agg::{self, AggOp};
use memphis_matrix::ops::binary::{self, BinaryOp};
use memphis_matrix::ops::matmul as mm;
use memphis_matrix::ops::nn::{self, Conv2dParams, Pool2dParams};
use memphis_matrix::ops::reorg;
use memphis_matrix::ops::solve as msolve;
use memphis_matrix::ops::unary::{self, UnaryOp};
use memphis_matrix::rand_gen;
use memphis_matrix::{BlockId, Matrix};
use memphis_sparksim::{RddRef, Record};
use std::sync::Arc;

/// Aggregation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggDir {
    /// Full aggregation to a scalar.
    Full,
    /// Per-row aggregation to a column vector.
    Row,
    /// Per-column aggregation to a row vector.
    Col,
}

/// Splits a dense matrix into row-blocked records.
pub(crate) fn row_blocked(m: &Matrix, blen: usize) -> Vec<Record> {
    let rows = m.rows();
    let nrb = rows.div_ceil(blen).max(1);
    (0..nrb)
        .map(|rb| {
            let r0 = rb * blen;
            let r1 = ((rb + 1) * blen).min(rows);
            (
                BlockId { row: rb, col: 0 },
                reorg::slice_rows(m, r0.min(rows), r1).expect("in bounds"),
            )
        })
        .collect()
}

impl ExecutionContext {
    // ------------------------------------------------------------------
    // Data binding (sources)
    // ------------------------------------------------------------------

    /// Binds an input dataset, placing it on Spark when it exceeds the
    /// operation-memory threshold. `name` uniquely identifies the data in
    /// lineage traces (file path / content fingerprint).
    pub fn read(&mut self, var: &str, m: Matrix, name: &str) -> Result<()> {
        if m.size_bytes() > self.cfg.spark_threshold_bytes && self.sc.is_some() {
            return self.read_distributed(var, m, name);
        }
        let item = if self.cfg.reuse.traces() {
            Some(self.lineage.set_leaf(var, name))
        } else {
            None
        };
        let c = m.len() as f64;
        self.bind(var, Value::Matrix(m), item, c);
        Ok(())
    }

    /// Binds an input dataset as a distributed row-blocked RDD.
    pub fn read_distributed(&mut self, var: &str, m: Matrix, name: &str) -> Result<()> {
        let sc = self
            .sc
            .as_ref()
            .ok_or_else(|| EngineError::Unsupported("no Spark backend".into()))?
            .clone();
        let (rows, cols) = m.shape();
        let blen = self.cfg.blen;
        let rdd = sc.parallelize(row_blocked(&m, blen), sc.config().default_parallelism, name);
        let item = if self.cfg.reuse.traces() {
            Some(self.lineage.set_leaf(var, name))
        } else {
            None
        };
        self.bind(
            var,
            Value::Rdd {
                rdd,
                rows,
                cols,
                blen,
            },
            item,
            (rows * cols) as f64,
        );
        Ok(())
    }

    /// Binds a scalar literal. Equal values yield equal lineage, enabling
    /// reuse across calls with repeated hyper-parameters.
    pub fn literal(&mut self, var: &str, v: f64) -> Result<()> {
        let item = if self.cfg.reuse.traces() {
            Some(self.lineage.set_leaf(var, &format!("scalar:{v}")))
        } else {
            None
        };
        self.bind(var, Value::Scalar(v), item, 1.0);
        Ok(())
    }

    /// Seeded uniform random matrix (DML `rand`). Deterministic per seed,
    /// so lineage-based reuse is sound.
    pub fn rand(
        &mut self,
        out: &str,
        rows: usize,
        cols: usize,
        min: f64,
        max: f64,
        seed: u64,
    ) -> Result<()> {
        let data = vec![
            rows.to_string(),
            cols.to_string(),
            min.to_string(),
            max.to_string(),
            seed.to_string(),
        ];
        let threshold = self.cfg.spark_threshold_bytes;
        let has_sc = self.sc.is_some();
        self.exec_instr(out, "rand", data, &[], move |ctx| {
            let m = rand_gen::rand_uniform(rows, cols, min, max, seed);
            let c = cost::flops("rand", rows, 1, cols);
            if m.size_bytes() > threshold && has_sc {
                let v = ctx.matrix_to_rdd_value(m, "rand")?;
                Ok((v, c))
            } else {
                Ok((Value::Matrix(m), c))
            }
        })
    }

    /// Sequence column vector (DML `seq`).
    pub fn seq(&mut self, out: &str, from: f64, to: f64, incr: f64) -> Result<()> {
        let data = vec![from.to_string(), to.to_string(), incr.to_string()];
        self.exec_instr(out, "seq", data, &[], move |_| {
            let m = Matrix::seq(from, to, incr);
            let c = m.len() as f64;
            Ok((Value::Matrix(m), c))
        })
    }

    pub(crate) fn matrix_to_rdd_value(&mut self, m: Matrix, name: &str) -> Result<Value> {
        let sc = self
            .sc
            .as_ref()
            .ok_or_else(|| EngineError::Unsupported("no Spark backend".into()))?
            .clone();
        let (rows, cols) = m.shape();
        let blen = self.cfg.blen;
        let rdd = sc.parallelize(row_blocked(&m, blen), sc.config().default_parallelism, name);
        Ok(Value::Rdd {
            rdd,
            rows,
            cols,
            blen,
        })
    }

    /// Runs a job-triggering action either inline or — when asynchronous
    /// operators are enabled (§5.1's prefetch) — on a background thread,
    /// returning a future immediately. The background thread PUTs the
    /// collected result into the cache once available.
    pub(crate) fn run_action<F>(&mut self, f: F, op_cost: f64) -> Result<(Value, f64)>
    where
        F: FnOnce() -> Matrix + Send + 'static,
    {
        if !self.cfg.async_ops {
            return Ok((Value::Matrix(f()), op_cost));
        }
        let future = crate::value::Future::new();
        let fut = future.clone();
        let cache = self.cache.clone();
        let item = self.current_item.clone();
        let puts = self.cfg.reuse.puts_ops() && self.cfg.reuse.multibackend();
        let delay = self.delay;
        std::thread::spawn(move || {
            let m = f();
            if puts {
                if let Some(item) = &item {
                    let size = m.size_bytes();
                    cache.put(
                        item,
                        memphis_core::cache::entry::CachedObject::Matrix(std::sync::Arc::new(
                            m.clone(),
                        )),
                        op_cost,
                        size,
                        delay,
                    );
                }
            }
            fut.fulfill(Value::Matrix(m));
        });
        Ok((Value::Future(future), op_cost))
    }

    // ------------------------------------------------------------------
    // Input resolution helpers
    // ------------------------------------------------------------------

    /// Resolves futures so the value can be inspected (waits if needed).
    pub(crate) fn resolve(&mut self, var: &str) -> Result<Value> {
        let b = self.binding(var)?.clone();
        match b.value {
            Value::Future(f) => {
                let v = f.get();
                self.bind(var, v.clone(), b.lineage, b.cost);
                Ok(v)
            }
            v => Ok(v),
        }
    }

    /// Forces an input to a local dense matrix (collect / device-to-host).
    pub(crate) fn local_input(&mut self, var: &str) -> Result<Matrix> {
        self.resolve(var)?;
        self.get_matrix(var)
    }

    fn rdd_input(&mut self, var: &str) -> Result<(RddRef, usize, usize, usize)> {
        match self.resolve(var)? {
            Value::Rdd {
                rdd,
                rows,
                cols,
                blen,
            } => Ok((rdd, rows, cols, blen)),
            _ => Err(EngineError::Unsupported(format!(
                "{var} is not distributed"
            ))),
        }
    }

    /// A broadcast handle for a local input, creating (and rebinding) the
    /// broadcast on first use so later operators share it.
    pub(crate) fn bc_input(&mut self, var: &str) -> Result<memphis_sparksim::BroadcastRef> {
        let v = self.resolve(var)?;
        match v {
            // Re-broadcast if lazy GC destroyed the previous copy.
            Value::Broadcast { bc, local } => {
                if bc.is_destroyed() {
                    let sc = self
                        .sc
                        .as_ref()
                        .ok_or_else(|| EngineError::Unsupported("no Spark backend".into()))?;
                    let nbc = sc.broadcast(local.clone());
                    let b = self.binding(var)?.clone();
                    self.bind(
                        var,
                        Value::Broadcast {
                            bc: nbc.clone(),
                            local,
                        },
                        b.lineage,
                        b.cost,
                    );
                    Ok(nbc)
                } else {
                    Ok(bc)
                }
            }
            Value::Matrix(_) => {
                self.broadcast(var)?;
                match self.binding(var)?.value.clone() {
                    Value::Broadcast { bc, .. } => Ok(bc),
                    _ => unreachable!("broadcast() rebinds to Broadcast"),
                }
            }
            Value::Scalar(s) => {
                let sc = self
                    .sc
                    .as_ref()
                    .ok_or_else(|| EngineError::Unsupported("no Spark backend".into()))?;
                Ok(sc.broadcast(Matrix::scalar(s)))
            }
            Value::Rdd { .. } => {
                // Broadcasting a distributed operand requires collecting it
                // to the driver first (it must be small enough).
                let m = self.get_matrix(var)?;
                let b = self.binding(var)?.clone();
                let sc = self
                    .sc
                    .as_ref()
                    .ok_or_else(|| EngineError::Unsupported("no Spark backend".into()))?;
                let bc = sc.broadcast(m.clone());
                self.bind(
                    var,
                    Value::Broadcast {
                        bc: bc.clone(),
                        local: m,
                    },
                    b.lineage,
                    b.cost,
                );
                Ok(bc)
            }
            _ => Err(EngineError::Unsupported(format!(
                "{var} cannot be broadcast from backend {}",
                v.backend()
            ))),
        }
    }

    fn note_job_for(&self, var: &str) {
        if let Some(item) = self.lineage_of(var) {
            self.cache.note_job(&item);
        }
    }

    /// True when the op should run on the GPU.
    fn gpu_target(&self, opcode: &str, inputs: &[&Value], out_cells: usize) -> bool {
        if self.gpu.is_none() {
            return false;
        }
        let any_gpu = inputs.iter().any(|v| matches!(v, Value::Gpu { .. }));
        let any_rdd = inputs.iter().any(|v| matches!(v, Value::Rdd { .. }));
        if any_rdd {
            return false;
        }
        any_gpu || (cost::is_compute_intensive(opcode) && out_cells >= self.cfg.gpu_min_cells)
    }

    // ------------------------------------------------------------------
    // GPU kernel-chain helper
    // ------------------------------------------------------------------

    /// Ensures a variable is device-resident, uploading (H2D) if local,
    /// and returns its pointer. Rebinds the variable for data locality.
    pub(crate) fn ensure_on_gpu(&mut self, var: &str) -> Result<memphis_gpusim::GpuPtr> {
        let b = self.binding(var)?.clone();
        match b.value {
            Value::Gpu { ptr, .. } => Ok(ptr),
            Value::Matrix(m) => {
                let device = self
                    .gpu
                    .as_ref()
                    .ok_or_else(|| EngineError::Unsupported("no GPU backend".into()))?
                    .clone();
                let (rows, cols) = m.shape();
                let height = b.lineage.as_ref().map(|l| l.height).unwrap_or(1);
                let alloc = if self.cfg.gpu_recycling {
                    self.cache.gpu_request(m.size_bytes(), height, b.cost)?
                } else {
                    self.cache.gpu_request_no_recycle(m.size_bytes(), b.cost)?
                };
                device.copy_to_device(&m, alloc.ptr)?;
                self.bind(
                    var,
                    Value::Gpu {
                        ptr: alloc.ptr,
                        rows,
                        cols,
                    },
                    b.lineage,
                    b.cost,
                );
                Ok(alloc.ptr)
            }
            other => Err(EngineError::Unsupported(format!(
                "cannot move {} to GPU",
                other.backend()
            ))),
        }
    }

    /// Runs `kernel` on the device over the inputs, producing an
    /// `out_rows x out_cols` device matrix.
    fn gpu_exec(
        &mut self,
        inputs: &[&str],
        out_rows: usize,
        out_cols: usize,
        op_cost: f64,
        kernel: impl FnOnce(&[&Matrix]) -> Matrix + Send + 'static,
    ) -> Result<(Value, f64)> {
        let ptrs: Vec<memphis_gpusim::GpuPtr> = inputs
            .iter()
            .map(|v| self.ensure_on_gpu(v))
            .collect::<Result<_>>()?;
        let device = self
            .gpu
            .as_ref()
            .ok_or_else(|| EngineError::Unsupported("no GPU backend".into()))?
            .clone();
        let bytes = cost::dense_bytes(out_rows, out_cols).max(8);
        let alloc = if self.cfg.gpu_recycling {
            self.cache.gpu_request(bytes, 1, op_cost)?
        } else {
            self.cache.gpu_request_no_recycle(bytes, op_cost)?
        };
        let out_ptr = alloc.ptr;
        device.launch(Box::new(move |data| {
            let mats: Option<Vec<&Matrix>> = ptrs.iter().map(|p| data.get(&p.addr)).collect();
            if let Some(mats) = mats {
                let result = kernel(&mats);
                data.insert(out_ptr.addr, result);
            }
        }));
        Ok((
            Value::Gpu {
                ptr: out_ptr,
                rows: out_rows,
                cols: out_cols,
            },
            op_cost,
        ))
    }

    // ------------------------------------------------------------------
    // Linear algebra instructions
    // ------------------------------------------------------------------

    /// Transpose. For a distributed vector-sized input this collects to
    /// the driver (the action of Example 4.1: the second transpose of
    /// `(y^T X)^T` collects `b`).
    pub fn transpose(&mut self, out: &str, x: &str) -> Result<()> {
        self.resolve(x)?;
        let xv = self.binding(x)?.value.clone();
        let (r, c) = xv
            .shape()
            .ok_or_else(|| EngineError::Unsupported("transpose of unresolved future".into()))?;
        let use_gpu = self.gpu_target("r'", &[&xv], r * c);
        let xn = x.to_string();
        self.exec_instr(out, "r'", vec![], &[x], move |ctx| {
            let op_cost = cost::flops("r'", r, 1, c);
            match ctx.binding(&xn)?.value.clone() {
                Value::Rdd { .. } => {
                    // Collect-and-transpose (small results only).
                    let m = ctx.local_input(&xn)?;
                    ctx.note_job_for(&xn);
                    Ok((Value::Matrix(reorg::transpose(&m)), op_cost))
                }
                Value::Gpu { .. } if use_gpu => {
                    ctx.gpu_exec(&[&xn], c, r, op_cost, |ms| reorg::transpose(ms[0]))
                }
                _ => {
                    let m = ctx.local_input(&xn)?;
                    Ok((Value::Matrix(reorg::transpose(&m)), op_cost))
                }
            }
        })
    }

    /// Matrix multiply `out = a %*% b`.
    ///
    /// Physical plans: local/GPU dense kernel; `a` distributed × `b` local
    /// → broadcast-based `mapmm` (distributed result); `a` local
    /// row-vector × `b` distributed → broadcast `y^T X` with a `reduce`
    /// action collecting the result to the driver.
    pub fn matmul(&mut self, out: &str, a: &str, b: &str) -> Result<()> {
        self.resolve(a)?;
        self.resolve(b)?;
        let av = self.binding(a)?.value.clone();
        let bv = self.binding(b)?.value.clone();
        let (am, ak) = av
            .shape()
            .ok_or_else(|| EngineError::Unsupported("unknown shape".into()))?;
        let (bk, bn) = bv
            .shape()
            .ok_or_else(|| EngineError::Unsupported("unknown shape".into()))?;
        if ak != bk {
            return Err(EngineError::Matrix(
                memphis_matrix::MatrixError::DimensionMismatch {
                    op: "matmul",
                    lhs: (am, ak),
                    rhs: (bk, bn),
                },
            ));
        }
        let op_cost = cost::flops("ba+*", am, ak, bn);
        let use_gpu = self.gpu_target("ba+*", &[&av, &bv], am * bn);
        let (an, bn_name) = (a.to_string(), b.to_string());
        self.exec_instr(out, "ba+*", vec![], &[a, b], move |ctx| {
            let av = ctx.binding(&an)?.value.clone();
            match av {
                // Distributed X %*% local W  → mapmm, result stays distributed.
                Value::Rdd { .. } => {
                    let (rdd, rows, _cols, blen) = ctx.rdd_input(&an)?;
                    let bc = ctx.bc_input(&bn_name)?;
                    let sc = ctx.spark().expect("rdd implies spark").clone();
                    let mapped = sc.map_with_broadcast(
                        &rdd,
                        "mapmm",
                        &bc,
                        Arc::new(move |k, xb, w| (*k, mm::matmul(xb, w).expect("dims"))),
                    );
                    Ok((
                        Value::Rdd {
                            rdd: mapped,
                            rows,
                            cols: bn,
                            blen,
                        },
                        op_cost,
                    ))
                }
                // Local row-vector y^T %*% distributed X → reduce action.
                Value::Matrix(_) | Value::Scalar(_) | Value::Broadcast { .. }
                    if matches!(ctx.binding(&bn_name)?.value, Value::Rdd { .. }) =>
                {
                    let (rdd, _rows, _cols, blen) = ctx.rdd_input(&bn_name)?;
                    if am != 1 {
                        return Err(EngineError::Unsupported(
                            "local %*% distributed requires a row vector".into(),
                        ));
                    }
                    let bc = ctx.bc_input(&an)?;
                    let sc = ctx.spark().expect("rdd implies spark").clone();
                    let partial = sc.map_with_broadcast(
                        &rdd,
                        "ytX",
                        &bc,
                        Arc::new(move |k, xb, yt| {
                            let y_slice =
                                reorg::slice_cols(yt, k.row * blen, k.row * blen + xb.rows())
                                    .expect("in bounds");
                            (
                                BlockId { row: 0, col: 0 },
                                mm::matmul(&y_slice, xb).expect("dims"),
                            )
                        }),
                    );
                    let result = sc
                        .reduce(
                            &partial,
                            Arc::new(|x, y| binary::binary(&x, &y, BinaryOp::Add).expect("dims")),
                        )
                        .ok_or_else(|| EngineError::Unsupported("empty RDD".into()))?;
                    ctx.note_job_for(&bn_name);
                    Ok((Value::Matrix(result), op_cost))
                }
                _ if use_gpu => ctx.gpu_exec(&[&an, &bn_name], am, bn, op_cost, |ms| {
                    mm::matmul(ms[0], ms[1]).expect("dims")
                }),
                _ => {
                    let ma = ctx.local_input(&an)?;
                    let mb = ctx.local_input(&bn_name)?;
                    let threads = ctx.config().cp_threads;
                    Ok((
                        Value::Matrix(mm::matmul_parallel(&ma, &mb, threads)?),
                        op_cost,
                    ))
                }
            }
        })
    }

    /// Transpose-self multiply `t(X) %*% X` — distributed inputs use the
    /// per-block `tsmm` + `reduce()` action pattern of §4.1.
    pub fn tsmm(&mut self, out: &str, x: &str) -> Result<()> {
        self.resolve(x)?;
        let xv = self.binding(x)?.value.clone();
        let (r, c) = xv
            .shape()
            .ok_or_else(|| EngineError::Unsupported("unknown shape".into()))?;
        let op_cost = cost::flops("tsmm", r, 1, c);
        let use_gpu = self.gpu_target("tsmm", &[&xv], c * c);
        let xn = x.to_string();
        self.exec_instr(out, "tsmm", vec![], &[x], move |ctx| {
            match ctx.binding(&xn)?.value.clone() {
                Value::Rdd { .. } => {
                    let (rdd, _r, _c, _blen) = ctx.rdd_input(&xn)?;
                    let sc = ctx.spark().expect("rdd implies spark").clone();
                    ctx.note_job_for(&xn);
                    ctx.run_action(
                        move || {
                            let partial = sc.map(
                                &rdd,
                                "tsmm-part",
                                Arc::new(|_k, xb| {
                                    (BlockId { row: 0, col: 0 }, mm::tsmm(xb).expect("non-empty"))
                                }),
                            );
                            sc.reduce(
                                &partial,
                                Arc::new(|x, y| {
                                    binary::binary(&x, &y, BinaryOp::Add).expect("dims")
                                }),
                            )
                            .expect("non-empty RDD")
                        },
                        op_cost,
                    )
                }
                _ if use_gpu => ctx.gpu_exec(&[&xn], c, c, op_cost, |ms| {
                    mm::tsmm(ms[0]).expect("non-empty")
                }),
                _ => {
                    let m = ctx.local_input(&xn)?;
                    Ok((Value::Matrix(mm::tsmm(&m)?), op_cost))
                }
            }
        })
    }

    /// `t(X) %*% y` — distributed X broadcasts `y` and reduces to the
    /// driver (action); local X computes directly.
    pub fn xty(&mut self, out: &str, x: &str, y: &str) -> Result<()> {
        self.resolve(x)?;
        self.resolve(y)?;
        let xv = self.binding(x)?.value.clone();
        let (r, c) = xv
            .shape()
            .ok_or_else(|| EngineError::Unsupported("unknown shape".into()))?;
        let yv = self.binding(y)?.value.clone();
        let (_yr, yc) = yv
            .shape()
            .ok_or_else(|| EngineError::Unsupported("unknown shape".into()))?;
        let op_cost = cost::flops("ba+*", c, r, yc);
        let use_gpu = self.gpu_target("ba+*", &[&xv, &yv], c * yc);
        let (xn, yn) = (x.to_string(), y.to_string());
        self.exec_instr(out, "tmm-y", vec![], &[x, y], move |ctx| {
            match ctx.binding(&xn)?.value.clone() {
                // Both distributed and co-partitioned: per-block t(Xb) Yb
                // products combined with a reduce action (no collect of y).
                Value::Rdd { .. } if matches!(ctx.binding(&yn)?.value, Value::Rdd { .. }) => {
                    let (rx, ..) = ctx.rdd_input(&xn)?;
                    let (ry, ..) = ctx.rdd_input(&yn)?;
                    let sc = ctx.spark().expect("rdd implies spark").clone();
                    ctx.note_job_for(&xn);
                    ctx.note_job_for(&yn);
                    ctx.run_action(
                        move || {
                            let partial = sc.zip_join(
                                &rx,
                                &ry,
                                "xty-zip",
                                Arc::new(|_, xb, yb| {
                                    mm::matmul(&reorg::transpose(xb), yb).expect("dims")
                                }),
                            );
                            let rekey = sc.map(
                                &partial,
                                "xty-rekey",
                                Arc::new(|_, m| (BlockId { row: 0, col: 0 }, m.deep_clone())),
                            );
                            sc.reduce(
                                &rekey,
                                Arc::new(|x, y| {
                                    binary::binary(&x, &y, BinaryOp::Add).expect("dims")
                                }),
                            )
                            .expect("non-empty RDD")
                        },
                        op_cost,
                    )
                }
                Value::Rdd { .. } => {
                    let (rdd, _r, _c, blen) = ctx.rdd_input(&xn)?;
                    let bc = ctx.bc_input(&yn)?;
                    let sc = ctx.spark().expect("rdd implies spark").clone();
                    ctx.note_job_for(&xn);
                    ctx.run_action(
                        move || {
                            let partial = sc.map_with_broadcast(
                                &rdd,
                                "xty-part",
                                &bc,
                                Arc::new(move |k, xb, y| {
                                    let y_slice = reorg::slice_rows(
                                        y,
                                        k.row * blen,
                                        k.row * blen + xb.rows(),
                                    )
                                    .expect("in bounds");
                                    (
                                        BlockId { row: 0, col: 0 },
                                        mm::matmul(&reorg::transpose(xb), &y_slice).expect("dims"),
                                    )
                                }),
                            );
                            sc.reduce(
                                &partial,
                                Arc::new(|x, y| {
                                    binary::binary(&x, &y, BinaryOp::Add).expect("dims")
                                }),
                            )
                            .expect("non-empty RDD")
                        },
                        op_cost,
                    )
                }
                _ if use_gpu => ctx.gpu_exec(&[&xn, &yn], c, yc, op_cost, |ms| {
                    mm::matmul(&reorg::transpose(ms[0]), ms[1]).expect("dims")
                }),
                _ => {
                    let mx = ctx.local_input(&xn)?;
                    let my = ctx.local_input(&yn)?;
                    Ok((
                        Value::Matrix(mm::matmul(&reorg::transpose(&mx), &my)?),
                        op_cost,
                    ))
                }
            }
        })
    }

    /// Elementwise binary op with DML broadcasting (matrix/vector/scalar
    /// operands). Distributed inputs stay distributed.
    pub fn binary(&mut self, out: &str, a: &str, b: &str, op: BinaryOp) -> Result<()> {
        self.resolve(a)?;
        self.resolve(b)?;
        let av = self.binding(a)?.value.clone();
        let bv = self.binding(b)?.value.clone();
        let (ar, ac) = av
            .shape()
            .ok_or_else(|| EngineError::Unsupported("unknown shape".into()))?;
        let (br, bc_) = bv
            .shape()
            .ok_or_else(|| EngineError::Unsupported("unknown shape".into()))?;
        let (or_, oc) = (ar.max(br), ac.max(bc_));
        let op_cost = cost::flops(op.opcode(), or_, 1, oc);
        let use_gpu = self.gpu_target(op.opcode(), &[&av, &bv], or_ * oc);
        let (an, bn) = (a.to_string(), b.to_string());
        self.exec_instr(out, op.opcode(), vec![], &[a, b], move |ctx| {
            let av = ctx.binding(&an)?.value.clone();
            let bv = ctx.binding(&bn)?.value.clone();
            match (&av, &bv) {
                (Value::Rdd { .. }, Value::Rdd { .. }) => {
                    let (ra, rows, cols, blen) = ctx.rdd_input(&an)?;
                    let (rb, ..) = ctx.rdd_input(&bn)?;
                    let sc = ctx.spark().expect("rdd implies spark").clone();
                    let zipped = sc.zip_join(
                        &ra,
                        &rb,
                        op.opcode(),
                        Arc::new(move |_, x, y| binary::binary(x, y, op).expect("dims")),
                    );
                    Ok((
                        Value::Rdd {
                            rdd: zipped,
                            rows,
                            cols,
                            blen,
                        },
                        op_cost,
                    ))
                }
                (Value::Rdd { .. }, _) => {
                    let (ra, rows, cols, blen) = ctx.rdd_input(&an)?;
                    let sc = ctx.spark().expect("rdd implies spark").clone();
                    let mapped = match &bv {
                        Value::Scalar(s) => {
                            let s = *s;
                            sc.map(
                                &ra,
                                op.opcode(),
                                Arc::new(move |k, x| (*k, binary::binary_scalar(x, s, op, false))),
                            )
                        }
                        _ => {
                            // Local matrix/vector operand: broadcast; slice
                            // rows per block for column vectors and for
                            // full same-shape matrices.
                            let bcv = ctx.bc_input(&bn)?;
                            let row_sliced = br == rows && rows > 1 && (bc_ == 1 || bc_ == cols);
                            sc.map_with_broadcast(
                                &ra,
                                op.opcode(),
                                &bcv,
                                Arc::new(move |k, x, w| {
                                    let rhs = if row_sliced {
                                        reorg::slice_rows(w, k.row * blen, k.row * blen + x.rows())
                                            .expect("in bounds")
                                    } else {
                                        w.clone()
                                    };
                                    (*k, binary::binary(x, &rhs, op).expect("dims"))
                                }),
                            )
                        }
                    };
                    Ok((
                        Value::Rdd {
                            rdd: mapped,
                            rows,
                            cols,
                            blen,
                        },
                        op_cost,
                    ))
                }
                (_, Value::Rdd { .. }) => {
                    let (rb, rows, cols, blen) = ctx.rdd_input(&bn)?;
                    let sc = ctx.spark().expect("rdd implies spark").clone();
                    let mapped = match &av {
                        Value::Scalar(s) => {
                            let s = *s;
                            sc.map(
                                &rb,
                                op.opcode(),
                                Arc::new(move |k, x| (*k, binary::binary_scalar(x, s, op, true))),
                            )
                        }
                        _ => {
                            // Local matrix/vector on the left: broadcast
                            // it, slicing rows per block when shapes align.
                            let bca = ctx.bc_input(&an)?;
                            let row_sliced = ar == rows && rows > 1 && (ac == 1 || ac == cols);
                            sc.map_with_broadcast(
                                &rb,
                                op.opcode(),
                                &bca,
                                Arc::new(move |k, x, w| {
                                    let lhs = if row_sliced {
                                        reorg::slice_rows(w, k.row * blen, k.row * blen + x.rows())
                                            .expect("in bounds")
                                    } else {
                                        w.clone()
                                    };
                                    (*k, binary::binary(&lhs, x, op).expect("dims"))
                                }),
                            )
                        }
                    };
                    Ok((
                        Value::Rdd {
                            rdd: mapped,
                            rows,
                            cols,
                            blen,
                        },
                        op_cost,
                    ))
                }
                _ if use_gpu => {
                    // Scalars become 1x1 device matrices via upload.
                    ctx.gpu_exec(&[&an, &bn], or_, oc, op_cost, move |ms| {
                        binary::binary(ms[0], ms[1], op).expect("dims")
                    })
                }
                _ => {
                    let ma = ctx.local_input(&an)?;
                    let mb = ctx.local_input(&bn)?;
                    Ok((Value::Matrix(binary::binary(&ma, &mb, op)?), op_cost))
                }
            }
        })
    }

    /// Elementwise op against a literal constant (`X * 2`); the constant
    /// is a lineage data item.
    pub fn binary_const(
        &mut self,
        out: &str,
        a: &str,
        c: f64,
        op: BinaryOp,
        scalar_on_left: bool,
    ) -> Result<()> {
        self.resolve(a)?;
        let av = self.binding(a)?.value.clone();
        let (ar, ac) = av
            .shape()
            .ok_or_else(|| EngineError::Unsupported("unknown shape".into()))?;
        let op_cost = cost::flops(op.opcode(), ar, 1, ac);
        let use_gpu = self.gpu_target(op.opcode(), &[&av], ar * ac);
        let an = a.to_string();
        let data = vec![c.to_string(), scalar_on_left.to_string()];
        self.exec_instr(out, op.opcode(), data, &[a], move |ctx| {
            match ctx.binding(&an)?.value.clone() {
                Value::Rdd { .. } => {
                    let (ra, rows, cols, blen) = ctx.rdd_input(&an)?;
                    let sc = ctx.spark().expect("rdd implies spark").clone();
                    let mapped = sc.map(
                        &ra,
                        op.opcode(),
                        Arc::new(move |k, x| (*k, binary::binary_scalar(x, c, op, scalar_on_left))),
                    );
                    Ok((
                        Value::Rdd {
                            rdd: mapped,
                            rows,
                            cols,
                            blen,
                        },
                        op_cost,
                    ))
                }
                _ if use_gpu => ctx.gpu_exec(&[&an], ar, ac, op_cost, move |ms| {
                    binary::binary_scalar(ms[0], c, op, scalar_on_left)
                }),
                _ => {
                    let m = ctx.local_input(&an)?;
                    Ok((
                        Value::Matrix(binary::binary_scalar(&m, c, op, scalar_on_left)),
                        op_cost,
                    ))
                }
            }
        })
    }

    /// Elementwise unary op.
    pub fn unary(&mut self, out: &str, x: &str, op: UnaryOp) -> Result<()> {
        self.resolve(x)?;
        let xv = self.binding(x)?.value.clone();
        let (r, c) = xv
            .shape()
            .ok_or_else(|| EngineError::Unsupported("unknown shape".into()))?;
        let op_cost = cost::flops(op.opcode(), r, 1, c);
        let use_gpu = self.gpu_target(op.opcode(), &[&xv], r * c);
        let xn = x.to_string();
        self.exec_instr(out, op.opcode(), vec![], &[x], move |ctx| {
            match ctx.binding(&xn)?.value.clone() {
                Value::Rdd { .. } => {
                    let (rx, rows, cols, blen) = ctx.rdd_input(&xn)?;
                    let sc = ctx.spark().expect("rdd implies spark").clone();
                    let mapped = sc.map(
                        &rx,
                        op.opcode(),
                        Arc::new(move |k, x| (*k, unary::unary(x, op))),
                    );
                    Ok((
                        Value::Rdd {
                            rdd: mapped,
                            rows,
                            cols,
                            blen,
                        },
                        op_cost,
                    ))
                }
                _ if use_gpu => {
                    ctx.gpu_exec(&[&xn], r, c, op_cost, move |ms| unary::unary(ms[0], op))
                }
                _ => {
                    let m = ctx.local_input(&xn)?;
                    Ok((Value::Matrix(unary::unary(&m, op)), op_cost))
                }
            }
        })
    }

    /// Aggregation: full (scalar output via `reduce` action on Spark),
    /// row-wise (stays distributed), or column-wise (action to driver).
    pub fn agg(&mut self, out: &str, x: &str, op: AggOp, dir: AggDir) -> Result<()> {
        self.resolve(x)?;
        let xv = self.binding(x)?.value.clone();
        let (r, c) = xv
            .shape()
            .ok_or_else(|| EngineError::Unsupported("unknown shape".into()))?;
        let op_cost = cost::flops(op.opcode(), r, 1, c);
        let xn = x.to_string();
        let opcode = format!(
            "ua{}{}",
            match dir {
                AggDir::Full => "",
                AggDir::Row => "r",
                AggDir::Col => "c",
            },
            op.opcode()
        );
        self.exec_instr(out, &opcode, vec![], &[x], move |ctx| {
            match ctx.binding(&xn)?.value.clone() {
                Value::Rdd { .. } => ctx.spark_agg(&xn, op, dir, r, c, op_cost),
                Value::Gpu { .. } => {
                    // Compute on host after a D2H copy (aggregations are
                    // cheap; SystemDS also returns scalars to the host).
                    let m = ctx.local_input(&xn)?;
                    agg_local(&m, op, dir, op_cost)
                }
                _ => {
                    let m = ctx.local_input(&xn)?;
                    agg_local(&m, op, dir, op_cost)
                }
            }
        })
    }

    fn spark_agg(
        &mut self,
        xn: &str,
        op: AggOp,
        dir: AggDir,
        rows: usize,
        cols: usize,
        op_cost: f64,
    ) -> Result<(Value, f64)> {
        let (rx, _rows, _cols, blen) = self.rdd_input(xn)?;
        let sc = self.spark().expect("rdd implies spark").clone();
        match dir {
            AggDir::Full => {
                let combine: memphis_sparksim::rdd::CombineFn = match op {
                    AggOp::Min => {
                        Arc::new(|a: Matrix, b: Matrix| Matrix::scalar(a.at(0, 0).min(b.at(0, 0))))
                    }
                    AggOp::Max => {
                        Arc::new(|a: Matrix, b: Matrix| Matrix::scalar(a.at(0, 0).max(b.at(0, 0))))
                    }
                    _ => Arc::new(|a: Matrix, b: Matrix| Matrix::scalar(a.at(0, 0) + b.at(0, 0))),
                };
                let part_op = match op {
                    AggOp::Mean => AggOp::Sum,
                    other => other,
                };
                let partial = sc.map(
                    &rx,
                    "agg-part",
                    Arc::new(move |k, x| {
                        (
                            BlockId { row: 0, col: k.col },
                            Matrix::scalar(agg::aggregate(x, part_op).unwrap_or(0.0)),
                        )
                    }),
                );
                let result = sc
                    .reduce(&partial, combine)
                    .ok_or_else(|| EngineError::Unsupported("empty RDD".into()))?;
                self.note_job_for(xn);
                let mut v = result.at(0, 0);
                if op == AggOp::Mean {
                    v /= (rows * cols) as f64;
                }
                Ok((Value::Scalar(v), op_cost))
            }
            AggDir::Col => {
                let part_op = match op {
                    AggOp::Mean => AggOp::Sum,
                    other => other,
                };
                let combine: memphis_sparksim::rdd::CombineFn = match op {
                    AggOp::Min => {
                        Arc::new(|a, b| binary::binary(&a, &b, BinaryOp::Min).expect("dims"))
                    }
                    AggOp::Max => {
                        Arc::new(|a, b| binary::binary(&a, &b, BinaryOp::Max).expect("dims"))
                    }
                    _ => Arc::new(|a, b| binary::binary(&a, &b, BinaryOp::Add).expect("dims")),
                };
                let partial = sc.map(
                    &rx,
                    "colagg-part",
                    Arc::new(move |_k, x| {
                        (
                            BlockId { row: 0, col: 0 },
                            agg::col_agg(x, part_op).expect("non-empty"),
                        )
                    }),
                );
                let result = sc
                    .reduce(&partial, combine)
                    .ok_or_else(|| EngineError::Unsupported("empty RDD".into()))?;
                self.note_job_for(xn);
                let result = if op == AggOp::Mean {
                    binary::binary_scalar(&result, rows as f64, BinaryOp::Div, false)
                } else {
                    result
                };
                Ok((Value::Matrix(result), op_cost))
            }
            AggDir::Row => {
                let mapped = sc.map(
                    &rx,
                    "rowagg",
                    Arc::new(move |k, x| (*k, agg::row_agg(x, op).expect("non-empty"))),
                );
                Ok((
                    Value::Rdd {
                        rdd: mapped,
                        rows,
                        cols: 1,
                        blen,
                    },
                    op_cost,
                ))
            }
        }
    }

    /// Solve `A x = b` (driver-local; inputs are collected if remote).
    pub fn solve(&mut self, out: &str, a: &str, b: &str) -> Result<()> {
        let (an, bn) = (a.to_string(), b.to_string());
        self.resolve(a)?;
        self.resolve(b)?;
        let n = self.binding(a)?.value.shape().map(|(r, _)| r).unwrap_or(1);
        let op_cost = cost::flops("solve", n, n, n);
        self.exec_instr(out, "solve", vec![], &[a, b], move |ctx| {
            let ma = ctx.local_input(&an)?;
            let mb = ctx.local_input(&bn)?;
            Ok((Value::Matrix(msolve::solve(&ma, &mb)?), op_cost))
        })
    }

    /// Row-range slice (local or GPU input; mini-batch extraction).
    pub fn slice_rows(&mut self, out: &str, x: &str, start: usize, end: usize) -> Result<()> {
        let xn = x.to_string();
        self.resolve(x)?;
        let data = vec![start.to_string(), end.to_string()];
        self.exec_instr(out, "rightIndex", data, &[x], move |ctx| {
            let m = ctx.local_input(&xn)?;
            let s = reorg::slice_rows(&m, start, end)?;
            let c = s.len() as f64;
            Ok((Value::Matrix(s), c))
        })
    }

    /// Column-range slice.
    pub fn slice_cols(&mut self, out: &str, x: &str, start: usize, end: usize) -> Result<()> {
        let xn = x.to_string();
        self.resolve(x)?;
        let data = vec![start.to_string(), end.to_string()];
        self.exec_instr(out, "rightIndexCol", data, &[x], move |ctx| {
            let m = ctx.local_input(&xn)?;
            let s = reorg::slice_cols(&m, start, end)?;
            let c = s.len() as f64;
            Ok((Value::Matrix(s), c))
        })
    }

    /// Vertical append.
    pub fn rbind(&mut self, out: &str, a: &str, b: &str) -> Result<()> {
        let (an, bn) = (a.to_string(), b.to_string());
        self.resolve(a)?;
        self.resolve(b)?;
        self.exec_instr(out, "rbind", vec![], &[a, b], move |ctx| {
            let ma = ctx.local_input(&an)?;
            let mb = ctx.local_input(&bn)?;
            let m = reorg::rbind(&ma, &mb)?;
            let c = m.len() as f64;
            Ok((Value::Matrix(m), c))
        })
    }

    /// Horizontal append.
    pub fn cbind(&mut self, out: &str, a: &str, b: &str) -> Result<()> {
        let (an, bn) = (a.to_string(), b.to_string());
        self.resolve(a)?;
        self.resolve(b)?;
        self.exec_instr(out, "cbind", vec![], &[a, b], move |ctx| {
            let ma = ctx.local_input(&an)?;
            let mb = ctx.local_input(&bn)?;
            let m = reorg::cbind(&ma, &mb)?;
            let c = m.len() as f64;
            Ok((Value::Matrix(m), c))
        })
    }

    /// Row selection by 0/1 mask (`removeEmpty`-style).
    pub fn select_rows(&mut self, out: &str, x: &str, mask: &str) -> Result<()> {
        let (xn, mn) = (x.to_string(), mask.to_string());
        self.resolve(x)?;
        self.resolve(mask)?;
        self.exec_instr(out, "removeEmpty", vec![], &[x, mask], move |ctx| {
            let m = ctx.local_input(&xn)?;
            let msk = ctx.local_input(&mn)?;
            let s = reorg::select_rows(&m, &msk)?;
            let c = m.len() as f64;
            Ok((Value::Matrix(s), c))
        })
    }

    // ------------------------------------------------------------------
    // Neural-network instructions
    // ------------------------------------------------------------------

    /// 2-D convolution (GPU-preferred).
    pub fn conv2d(&mut self, out: &str, x: &str, w: &str, p: Conv2dParams) -> Result<()> {
        self.resolve(x)?;
        self.resolve(w)?;
        let xv = self.binding(x)?.value.clone();
        let n = xv.shape().map(|(r, _)| r).unwrap_or(1);
        let patch = p.in_channels * p.kernel * p.kernel;
        let op_cost = cost::flops(
            "conv2d",
            n * p.out_height() * p.out_width(),
            patch,
            p.out_channels,
        );
        let use_gpu = self.gpu_target("conv2d", &[&xv], n * p.out_cols());
        let (xn, wn) = (x.to_string(), w.to_string());
        let data = vec![format!("{p:?}")];
        self.exec_instr(out, "conv2d", data, &[x, w], move |ctx| {
            if use_gpu {
                ctx.gpu_exec(&[&xn, &wn], n, p.out_cols(), op_cost, move |ms| {
                    nn::conv2d(ms[0], ms[1], &p).expect("dims")
                })
            } else {
                let mx = ctx.local_input(&xn)?;
                let mw = ctx.local_input(&wn)?;
                Ok((Value::Matrix(nn::conv2d(&mx, &mw, &p)?), op_cost))
            }
        })
    }

    /// 2-D max pooling.
    pub fn max_pool2d(&mut self, out: &str, x: &str, p: Pool2dParams) -> Result<()> {
        self.resolve(x)?;
        let xv = self.binding(x)?.value.clone();
        let n = xv.shape().map(|(r, _)| r).unwrap_or(1);
        let op_cost = cost::flops("maxpool", n, 1, p.out_cols() * p.window * p.window);
        let use_gpu = self.gpu_target("maxpool", &[&xv], n * p.out_cols());
        let xn = x.to_string();
        let data = vec![format!("{p:?}")];
        self.exec_instr(out, "maxpool", data, &[x], move |ctx| {
            if use_gpu {
                ctx.gpu_exec(&[&xn], n, p.out_cols(), op_cost, move |ms| {
                    nn::max_pool2d(ms[0], &p).expect("dims")
                })
            } else {
                let m = ctx.local_input(&xn)?;
                Ok((Value::Matrix(nn::max_pool2d(&m, &p)?), op_cost))
            }
        })
    }

    /// Affine layer `X %*% W + b` (GPU-preferred).
    pub fn affine(&mut self, out: &str, x: &str, w: &str, b: &str) -> Result<()> {
        self.resolve(x)?;
        self.resolve(w)?;
        self.resolve(b)?;
        let xv = self.binding(x)?.value.clone();
        let wv = self.binding(w)?.value.clone();
        let (n, k) = xv
            .shape()
            .ok_or_else(|| EngineError::Unsupported("unknown shape".into()))?;
        let d = wv.shape().map(|(_, d)| d).unwrap_or(1);
        let op_cost = cost::flops("ba+*", n, k, d);
        let use_gpu = self.gpu_target("affine", &[&xv, &wv], n * d);
        let (xn, wn, bn) = (x.to_string(), w.to_string(), b.to_string());
        self.exec_instr(out, "affine", vec![], &[x, w, b], move |ctx| {
            if use_gpu {
                ctx.gpu_exec(&[&xn, &wn, &bn], n, d, op_cost, |ms| {
                    nn::affine(ms[0], ms[1], ms[2]).expect("dims")
                })
            } else {
                let mx = ctx.local_input(&xn)?;
                let mw = ctx.local_input(&wn)?;
                let mb = ctx.local_input(&bn)?;
                Ok((Value::Matrix(nn::affine(&mx, &mw, &mb)?), op_cost))
            }
        })
    }

    /// Row-wise softmax.
    pub fn softmax(&mut self, out: &str, x: &str) -> Result<()> {
        self.resolve(x)?;
        let xv = self.binding(x)?.value.clone();
        let (r, c) = xv
            .shape()
            .ok_or_else(|| EngineError::Unsupported("unknown shape".into()))?;
        let op_cost = cost::flops("softmax", r, 1, c);
        let use_gpu = self.gpu_target("softmax", &[&xv], r * c);
        let xn = x.to_string();
        self.exec_instr(out, "softmax", vec![], &[x], move |ctx| {
            if use_gpu {
                ctx.gpu_exec(&[&xn], r, c, op_cost, |ms| nn::softmax_rows(ms[0]))
            } else {
                let m = ctx.local_input(&xn)?;
                Ok((Value::Matrix(nn::softmax_rows(&m)), op_cost))
            }
        })
    }

    /// Inverted dropout with a deterministic seed (lineage-sound).
    pub fn dropout(&mut self, out: &str, x: &str, rate: f64, seed: u64) -> Result<()> {
        self.resolve(x)?;
        let xv = self.binding(x)?.value.clone();
        let (r, c) = xv
            .shape()
            .ok_or_else(|| EngineError::Unsupported("unknown shape".into()))?;
        let op_cost = cost::flops("dropout", r, 1, c);
        let use_gpu = self.gpu_target("dropout", &[&xv], r * c);
        let xn = x.to_string();
        let data = vec![rate.to_string(), seed.to_string()];
        self.exec_instr(out, "dropout", data, &[x], move |ctx| {
            if use_gpu {
                ctx.gpu_exec(&[&xn], r, c, op_cost, move |ms| {
                    nn::dropout(ms[0], rate, seed)
                })
            } else {
                let m = ctx.local_input(&xn)?;
                Ok((Value::Matrix(nn::dropout(&m, rate, seed)), op_cost))
            }
        })
    }
}

impl ExecutionContext {
    /// Executes a custom deterministic host-side transformation as a traced
    /// instruction — the escape hatch workload builtins use for primitives
    /// the core operator set lacks (mode imputation, binning, recoding,
    /// one-hot encoding). `opcode` and `data` must uniquely identify the
    /// transformation for lineage soundness.
    pub fn map_custom<F>(
        &mut self,
        out: &str,
        x: &str,
        opcode: &str,
        data: Vec<String>,
        f: F,
    ) -> Result<()>
    where
        F: FnOnce(&Matrix) -> std::result::Result<Matrix, String>,
    {
        let xn = x.to_string();
        self.resolve(x)?;
        self.exec_instr(out, opcode, data, &[x], move |ctx| {
            let m = ctx.local_input(&xn)?;
            let cost = m.len() as f64;
            let r = f(&m).map_err(EngineError::Unsupported)?;
            Ok((Value::Matrix(r), cost))
        })
    }

    /// Like [`ExecutionContext::map_custom`] for binary host transforms.
    pub fn zip_custom<F>(
        &mut self,
        out: &str,
        a: &str,
        b: &str,
        opcode: &str,
        data: Vec<String>,
        f: F,
    ) -> Result<()>
    where
        F: FnOnce(&Matrix, &Matrix) -> std::result::Result<Matrix, String>,
    {
        let (an, bn) = (a.to_string(), b.to_string());
        self.resolve(a)?;
        self.resolve(b)?;
        self.exec_instr(out, opcode, data, &[a, b], move |ctx| {
            let ma = ctx.local_input(&an)?;
            let mb = ctx.local_input(&bn)?;
            let cost = ma.len() as f64;
            let r = f(&ma, &mb).map_err(EngineError::Unsupported)?;
            Ok((Value::Matrix(r), cost))
        })
    }
}

fn agg_local(m: &Matrix, op: AggOp, dir: AggDir, op_cost: f64) -> Result<(Value, f64)> {
    match dir {
        AggDir::Full => Ok((Value::Scalar(agg::aggregate(m, op)?), op_cost)),
        AggDir::Row => Ok((Value::Matrix(agg::row_agg(m, op)?), op_cost)),
        AggDir::Col => Ok((Value::Matrix(agg::col_agg(m, op)?), op_cost)),
    }
}
