//! Program interpreter: executes compiled programs block-by-block against
//! an [`ExecutionContext`], honoring the compiler's linearization order,
//! per-block delay factors, and inserted cache-management operators.

use crate::compiler::{linearize, place, Ordering, PlacementCaps};
use crate::context::{EngineError, ExecutionContext, Result};
use crate::plan::{Block, Dag, OpKind, Operand, Program, ScalarRef};

/// Executes a program. `ordering` selects the linearization strategy
/// (depth-first baseline or Algorithm 2's `maxParallelize`).
pub fn run_program(
    ctx: &mut ExecutionContext,
    program: &Program,
    ordering: Ordering,
) -> Result<()> {
    for block in &program.blocks {
        run_block(ctx, program, block, ordering)?;
    }
    Ok(())
}

fn run_block(
    ctx: &mut ExecutionContext,
    program: &Program,
    block: &Block,
    ordering: Ordering,
) -> Result<()> {
    match block {
        Block::Basic { dag, hints } => {
            let saved_delay = ctx.delay();
            ctx.set_delay(hints.delay);
            let result = run_dag(ctx, program, dag, ordering);
            ctx.set_delay(saved_delay);
            result
        }
        Block::For { var, values, body } => {
            for &v in values {
                ctx.literal(var, v)?;
                for b in body {
                    run_block(ctx, program, b, ordering)?;
                }
            }
            Ok(())
        }
        Block::While {
            cond_var,
            max_iterations,
            body,
        } => {
            let mut iterations = 0;
            while iterations < *max_iterations {
                if ctx.has(cond_var) && ctx.get_scalar(cond_var)? == 0.0 {
                    break;
                }
                for b in body {
                    run_block(ctx, program, b, ordering)?;
                }
                iterations += 1;
            }
            Ok(())
        }
        Block::If {
            cond_var,
            then_blocks,
            else_blocks,
        } => {
            let taken = if ctx.get_scalar(cond_var)? != 0.0 {
                then_blocks
            } else {
                else_blocks
            };
            for b in taken {
                run_block(ctx, program, b, ordering)?;
            }
            Ok(())
        }
    }
}

fn run_dag(
    ctx: &mut ExecutionContext,
    program: &Program,
    dag: &Dag,
    ordering: Ordering,
) -> Result<()> {
    // Registry-driven placement: ask the cache which tiers are registered
    // (and how big the device is) instead of probing context fields.
    let caps = PlacementCaps::from_registry(ctx.cache().registry());
    let backend = place(dag, &program.var_dims, ctx.config(), &caps);
    let order = linearize(dag, &backend, ordering);

    let name_of = |id: usize| -> String {
        dag.nodes[id]
            .outputs
            .first()
            .cloned()
            .unwrap_or_else(|| format!("__n{id}"))
    };
    let operand_name = |o: &Operand| -> String {
        match o {
            Operand::Var(v) => v.clone(),
            Operand::Node(id) => name_of(*id),
        }
    };

    for id in order {
        let node = &dag.nodes[id];
        let out = name_of(id);
        let ins: Vec<String> = node.inputs.iter().map(&operand_name).collect();
        match &node.kind {
            OpKind::Rand {
                rows,
                cols,
                min,
                max,
                seed,
            } => ctx.rand(&out, *rows, *cols, *min, *max, *seed)?,
            OpKind::MatMul => ctx.matmul(&out, &ins[0], &ins[1])?,
            OpKind::Tsmm => ctx.tsmm(&out, &ins[0])?,
            OpKind::Xty => ctx.xty(&out, &ins[0], &ins[1])?,
            OpKind::Transpose => ctx.transpose(&out, &ins[0])?,
            OpKind::Solve => ctx.solve(&out, &ins[0], &ins[1])?,
            OpKind::Binary(op) => ctx.binary(&out, &ins[0], &ins[1], *op)?,
            OpKind::BinaryScalar { op, scalar, swap } => match scalar {
                ScalarRef::Const(c) => ctx.binary_const(&out, &ins[0], *c, *op, *swap)?,
                ScalarRef::Loop(v) => {
                    if !ctx.has(v) {
                        return Err(EngineError::UnknownVar(v.clone()));
                    }
                    if *swap {
                        ctx.binary(&out, v, &ins[0], *op)?
                    } else {
                        ctx.binary(&out, &ins[0], v, *op)?
                    }
                }
            },
            OpKind::Unary(op) => ctx.unary(&out, &ins[0], *op)?,
            OpKind::Agg(op, dir) => ctx.agg(&out, &ins[0], *op, *dir)?,
            OpKind::Literal(v) => ctx.literal(&out, *v)?,
            OpKind::Alias => {
                if out != ins[0] {
                    ctx.assign(&out, &ins[0])?;
                }
            }
            OpKind::SliceRows { start, end } => ctx.slice_rows(&out, &ins[0], *start, *end)?,
            OpKind::SliceCols { start, end } => ctx.slice_cols(&out, &ins[0], *start, *end)?,
            OpKind::Conv2d(p) => ctx.conv2d(&out, &ins[0], &ins[1], *p)?,
            OpKind::MaxPool2d(p) => ctx.max_pool2d(&out, &ins[0], *p)?,
            OpKind::Affine => ctx.affine(&out, &ins[0], &ins[1], &ins[2])?,
            OpKind::Checkpoint => {
                ctx.checkpoint(&ins[0])?;
                if out != ins[0] {
                    ctx.assign(&out, &ins[0])?;
                }
            }
            OpKind::Prefetch => {
                ctx.prefetch(&ins[0])?;
                if out != ins[0] {
                    ctx.assign(&out, &ins[0])?;
                }
            }
            OpKind::Broadcast => {
                ctx.broadcast(&ins[0])?;
                if out != ins[0] {
                    ctx.assign(&out, &ins[0])?;
                }
            }
            OpKind::Evict(fraction) => ctx.evict_gpu(*fraction),
        }
        // Additional output bindings from CSE merges.
        for alias in node.outputs.iter().skip(1) {
            ctx.assign(alias, &out)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::ops::AggDir;
    use crate::plan::BlockHints;
    use memphis_matrix::ops::agg::AggOp;
    use memphis_matrix::ops::binary::BinaryOp;
    use memphis_matrix::rand_gen::rand_uniform;

    /// Grid-search linear regression as a compiled program (Example 4.1).
    fn linreg_program(regs: &[f64], rows: usize, cols: usize) -> Program {
        let mut dag = Dag::new();
        let g = dag.add(OpKind::Tsmm, vec![Operand::Var("X".into())], Some("G"));
        let b = dag.add(
            OpKind::Xty,
            vec![Operand::Var("X".into()), Operand::Var("y".into())],
            Some("bv"),
        );
        let a = dag.add(
            OpKind::BinaryScalar {
                op: BinaryOp::Add,
                scalar: ScalarRef::Loop("reg".into()),
                swap: false,
            },
            vec![Operand::Node(g)],
            None,
        );
        dag.add(
            OpKind::Solve,
            vec![Operand::Node(a), Operand::Node(b)],
            Some("w"),
        );
        let mut p = Program::new();
        p.declare("X", rows, cols);
        p.declare("y", rows, 1);
        p.blocks.push(Block::For {
            var: "reg".into(),
            values: regs.to_vec(),
            body: vec![Block::Basic {
                dag,
                hints: BlockHints::default(),
            }],
        });
        p
    }

    #[test]
    fn program_executes_and_reuses_loop_invariants() {
        let mut ctx = ExecutionContext::local(EngineConfig::test());
        let x = rand_uniform(40, 4, -1.0, 1.0, 1);
        let y = rand_uniform(40, 1, -1.0, 1.0, 2);
        ctx.read("X", x, "X").unwrap();
        ctx.read("y", y, "y").unwrap();
        let p = linreg_program(&[0.1, 0.2, 0.3], 40, 4);
        run_program(&mut ctx, &p, Ordering::DepthFirst).unwrap();
        // tsmm and xty are reg-independent: executed once, reused twice
        // each.
        assert_eq!(ctx.stats.reused, 4);
        assert!(ctx.get_matrix("w").is_ok());
    }

    #[test]
    fn loop_variable_changes_prevent_wrong_reuse() {
        let mut ctx = ExecutionContext::local(EngineConfig::test());
        let x = rand_uniform(20, 3, -1.0, 1.0, 3);
        let y = rand_uniform(20, 1, -1.0, 1.0, 4);
        ctx.read("X", x, "X").unwrap();
        ctx.read("y", y, "y").unwrap();
        let p = linreg_program(&[0.1, 0.5], 20, 3);
        run_program(&mut ctx, &p, Ordering::DepthFirst).unwrap();
        let w1 = ctx.get_matrix("w").unwrap();
        // Run again with only the second reg: the solve for 0.5 is reused,
        // and its result must equal the previous iteration's output.
        let p2 = linreg_program(&[0.5], 20, 3);
        let before = ctx.stats.instructions;
        run_program(&mut ctx, &p2, Ordering::DepthFirst).unwrap();
        let w2 = ctx.get_matrix("w").unwrap();
        assert!(w1.approx_eq(&w2, 0.0), "reg=0.5 output is stable");
        // Everything in the second run was reusable.
        assert!(ctx.stats.instructions > before);
    }

    #[test]
    fn while_loop_runs_until_condition_clears() {
        // body: thresh = sum(X * 0.5^k) > 1  (X shrinks every iteration)
        let mut ctx = ExecutionContext::local(EngineConfig::test());
        let x = rand_uniform(8, 8, 0.9, 1.0, 6);
        ctx.read("X", x, "X").unwrap();
        let mut dag = Dag::new();
        let half = dag.add(
            OpKind::BinaryScalar {
                op: BinaryOp::Mul,
                scalar: ScalarRef::Const(0.5),
                swap: false,
            },
            vec![Operand::Var("X".into())],
            Some("X"),
        );
        let s = dag.add(
            OpKind::Agg(AggOp::Sum, AggDir::Full),
            vec![Operand::Node(half)],
            None,
        );
        dag.add(
            OpKind::BinaryScalar {
                op: BinaryOp::Greater,
                scalar: ScalarRef::Const(1.0),
                swap: false,
            },
            vec![Operand::Node(s)],
            Some("cond"),
        );
        let mut p = Program::new();
        p.declare("X", 8, 8);
        p.blocks.push(Block::While {
            cond_var: "cond".into(),
            max_iterations: 100,
            body: vec![Block::Basic {
                dag,
                hints: BlockHints::default(),
            }],
        });
        run_program(&mut ctx, &p, Ordering::DepthFirst).unwrap();
        // Sum halves each iteration from ~60: needs ~6-7 iterations.
        let cond = ctx.get_scalar("cond").unwrap();
        assert_eq!(cond, 0.0, "loop exits when the sum drops below 1");
        let sum = ctx.get_matrix("X").unwrap();
        assert!(sum.values().iter().all(|&v| v < 0.02));
    }

    #[test]
    fn if_block_takes_the_right_branch() {
        let mut ctx = ExecutionContext::local(EngineConfig::test());
        ctx.read("X", rand_uniform(4, 4, 0.0, 1.0, 7), "X").unwrap();
        let mk_branch = |c: f64| {
            let mut dag = Dag::new();
            dag.add(
                OpKind::BinaryScalar {
                    op: BinaryOp::Mul,
                    scalar: ScalarRef::Const(c),
                    swap: false,
                },
                vec![Operand::Var("X".into())],
                Some("Y"),
            );
            vec![Block::Basic {
                dag,
                hints: BlockHints::default(),
            }]
        };
        for (cond, factor) in [(1.0, 10.0), (0.0, 100.0)] {
            let mut p = Program::new();
            p.declare("X", 4, 4);
            p.blocks.push(Block::If {
                cond_var: "c".into(),
                then_blocks: mk_branch(10.0),
                else_blocks: mk_branch(100.0),
            });
            ctx.literal("c", cond).unwrap();
            run_program(&mut ctx, &p, Ordering::DepthFirst).unwrap();
            let y = ctx.get_matrix("Y").unwrap();
            let x = ctx.get_matrix("X").unwrap();
            let expected =
                memphis_matrix::ops::binary::binary_scalar(&x, factor, BinaryOp::Mul, false);
            assert!(y.approx_eq(&expected, 0.0));
        }
    }

    #[test]
    fn aggregation_block_with_sum() {
        let mut ctx = ExecutionContext::local(EngineConfig::test());
        let x = rand_uniform(10, 4, 0.0, 1.0, 5);
        ctx.read("X", x.clone(), "X").unwrap();
        let mut dag = Dag::new();
        let e = dag.add(
            OpKind::Unary(memphis_matrix::ops::unary::UnaryOp::Exp),
            vec![Operand::Var("X".into())],
            None,
        );
        dag.add(
            OpKind::Agg(AggOp::Sum, AggDir::Full),
            vec![Operand::Node(e)],
            Some("s"),
        );
        let mut p = Program::new();
        p.declare("X", 10, 4);
        p.blocks.push(Block::Basic {
            dag,
            hints: BlockHints::default(),
        });
        run_program(&mut ctx, &p, Ordering::MaxParallelize).unwrap();
        let s = ctx.get_scalar("s").unwrap();
        let expected: f64 = x.values().iter().map(|v| v.exp()).sum();
        assert!((s - expected).abs() < 1e-9);
    }
}
