//! Engine configuration: reuse modes (the paper's baselines) and operator
//! placement thresholds.

/// Which reuse capability is active — these are the experiment
/// configurations of §6 (Base, Trace, Probe, LIMA, HELIX, MPH).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseMode {
    /// No lineage tracing at all (the `Base` baseline).
    None,
    /// Trace lineage but never probe or put (`Trace` in Fig. 11).
    TraceOnly,
    /// Trace and probe, but never put — maximum overhead, zero benefit
    /// (`Probe` in Fig. 11).
    ProbeOnly,
    /// Fine-grained reuse of local CPU intermediates only (the LIMA
    /// baseline [101]).
    Lima,
    /// Coarse-grained reuse of top-level function results only (the HELIX
    /// baseline [125]).
    Helix,
    /// Full MEMPHIS: fine-grained + multi-level reuse across CPU, Spark,
    /// and GPU.
    Memphis,
}

impl ReuseMode {
    /// True when instructions are traced.
    pub fn traces(self) -> bool {
        !matches!(self, ReuseMode::None)
    }

    /// True when the cache is probed for fine-grained (operator) entries.
    pub fn probes_ops(self) -> bool {
        matches!(
            self,
            ReuseMode::ProbeOnly | ReuseMode::Lima | ReuseMode::Memphis
        )
    }

    /// True when operator results are offered to the cache.
    pub fn puts_ops(self) -> bool {
        matches!(self, ReuseMode::Lima | ReuseMode::Memphis)
    }

    /// True when function-level (multi-level) entries are used.
    pub fn multilevel(self) -> bool {
        matches!(self, ReuseMode::Helix | ReuseMode::Memphis)
    }

    /// True when Spark RDDs / actions and GPU pointers may be cached
    /// (multi-backend reuse).
    pub fn multibackend(self) -> bool {
        matches!(self, ReuseMode::Memphis)
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Active reuse mode.
    pub reuse: ReuseMode,
    /// Enable the asynchronous prefetch/broadcast operators of §5.1.
    pub async_ops: bool,
    /// Operations whose estimated output + inputs exceed this many bytes
    /// are placed on Spark (SystemDS's operation-memory threshold).
    pub spark_threshold_bytes: usize,
    /// Place dense compute-intensive operations on the GPU when a device
    /// is attached and the output has at least this many cells.
    pub gpu_min_cells: usize,
    /// Default delayed-caching factor n (overridden per block by the
    /// auto-tuner).
    pub delay_factor: u32,
    /// Block side length for distributed blocked matrices.
    pub blen: usize,
    /// Number of threads for local parallel matmul.
    pub cp_threads: usize,
    /// Pool and recycle GPU pointers through the unified memory manager
    /// (disable for the naive cudaMalloc/cudaFree-per-output baseline).
    pub gpu_recycling: bool,
}

impl EngineConfig {
    /// Test configuration: everything local unless forced, no async, full
    /// reuse, tiny blocks.
    pub fn test() -> Self {
        Self {
            reuse: ReuseMode::Memphis,
            async_ops: false,
            spark_threshold_bytes: usize::MAX,
            gpu_min_cells: usize::MAX,
            delay_factor: 1,
            blen: 8,
            cp_threads: 2,
            gpu_recycling: true,
        }
    }

    /// Benchmark configuration: Spark placement above 4 MB, GPU for dense
    /// ops of at least 4K cells, async enabled.
    pub fn benchmark() -> Self {
        Self {
            reuse: ReuseMode::Memphis,
            async_ops: true,
            spark_threshold_bytes: 4 << 20,
            gpu_min_cells: 4096,
            delay_factor: 1,
            blen: 256,
            cp_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            gpu_recycling: true,
        }
    }

    /// Same configuration with a different reuse mode.
    pub fn with_reuse(mut self, reuse: ReuseMode) -> Self {
        self.reuse = reuse;
        self
    }

    /// Same configuration with async operators toggled.
    pub fn with_async(mut self, on: bool) -> Self {
        self.async_ops = on;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::test()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_capabilities() {
        assert!(!ReuseMode::None.traces());
        assert!(ReuseMode::TraceOnly.traces());
        assert!(!ReuseMode::TraceOnly.probes_ops());
        assert!(ReuseMode::ProbeOnly.probes_ops());
        assert!(!ReuseMode::ProbeOnly.puts_ops());
        assert!(ReuseMode::Lima.puts_ops());
        assert!(!ReuseMode::Lima.multibackend());
        assert!(ReuseMode::Helix.multilevel());
        assert!(!ReuseMode::Helix.probes_ops());
        assert!(ReuseMode::Memphis.multibackend());
        assert!(ReuseMode::Memphis.multilevel());
    }

    #[test]
    fn builders_toggle_fields() {
        let c = EngineConfig::test()
            .with_reuse(ReuseMode::Lima)
            .with_async(true);
        assert_eq!(c.reuse, ReuseMode::Lima);
        assert!(c.async_ops);
    }
}
