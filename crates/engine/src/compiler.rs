//! Compiler passes (§5): CSE, operator placement, checkpoint placement,
//! asynchronous-operator insertion, eviction injection, delay-factor
//! auto-tuning, and operator linearization (depth-first and the
//! `maxParallelize` ordering of Algorithm 2).

use crate::config::EngineConfig;
use crate::cost;
use crate::ops::AggDir;
use crate::plan::{Block, BlockHints, Dag, OpKind, Operand, Program, ScalarRef};
use memphis_core::{BackendId, BackendRegistry};
use std::collections::HashMap;

/// Backend assignment of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Driver-local CPU.
    Cp,
    /// Simulated Spark cluster.
    Sp,
    /// Simulated GPU device.
    Gpu,
}

/// Linearization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ordering {
    /// Plain depth-first, backend-agnostic (the baseline).
    DepthFirst,
    /// Algorithm 2: remote operator chains first, longest first, to
    /// maximize concurrent execution.
    MaxParallelize,
}

/// Capacity view of the registered cache backends, consulted by operator
/// placement. Built from the cache's [`BackendRegistry`] so the compiler
/// asks the tiers what exists (and how much room they have) instead of
/// hard-coding CPU/Spark/GPU branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlacementCaps {
    /// A Spark tier is registered: distributed placement is possible.
    pub spark: bool,
    /// A GPU tier is registered.
    pub gpu: bool,
    /// GPU device capacity in bytes; operands placed there must fit.
    pub gpu_capacity: usize,
}

impl PlacementCaps {
    /// Driver-local execution only — no remote tiers registered.
    pub fn local_only() -> Self {
        Self::default()
    }

    /// Every tier available with an unbounded device (test convenience).
    pub fn all() -> Self {
        Self {
            spark: true,
            gpu: true,
            gpu_capacity: usize::MAX,
        }
    }

    /// Reads tier availability and capacity out of the registry.
    pub fn from_registry(reg: &BackendRegistry) -> Self {
        Self {
            spark: reg.contains(BackendId::Spark),
            gpu: reg.contains(BackendId::Gpu),
            gpu_capacity: reg.get(BackendId::Gpu).map(|b| b.budget()).unwrap_or(0),
        }
    }
}

// ----------------------------------------------------------------------
// Dimension inference and placement
// ----------------------------------------------------------------------

/// Infers output dims of every node from external variable dims.
pub fn infer_dims(dag: &Dag, var_dims: &HashMap<String, (usize, usize)>) -> Vec<(usize, usize)> {
    let mut dims = vec![(1usize, 1usize); dag.nodes.len()];
    let get = |dims: &Vec<(usize, usize)>, o: &Operand| -> (usize, usize) {
        match o {
            Operand::Var(v) => var_dims.get(v).copied().unwrap_or((1, 1)),
            Operand::Node(id) => dims[*id],
        }
    };
    for n in &dag.nodes {
        let d = match &n.kind {
            OpKind::Rand { rows, cols, .. } => (*rows, *cols),
            OpKind::MatMul => {
                let a = get(&dims, &n.inputs[0]);
                let b = get(&dims, &n.inputs[1]);
                (a.0, b.1)
            }
            OpKind::Tsmm => {
                let x = get(&dims, &n.inputs[0]);
                (x.1, x.1)
            }
            OpKind::Xty => {
                let x = get(&dims, &n.inputs[0]);
                let y = get(&dims, &n.inputs[1]);
                (x.1, y.1)
            }
            OpKind::Transpose => {
                let x = get(&dims, &n.inputs[0]);
                (x.1, x.0)
            }
            OpKind::Solve => {
                let a = get(&dims, &n.inputs[0]);
                let b = get(&dims, &n.inputs[1]);
                (a.1, b.1)
            }
            OpKind::Binary(_) => {
                let a = get(&dims, &n.inputs[0]);
                let b = get(&dims, &n.inputs[1]);
                (a.0.max(b.0), a.1.max(b.1))
            }
            OpKind::BinaryScalar { .. }
            | OpKind::Unary(_)
            | OpKind::Alias
            | OpKind::Checkpoint
            | OpKind::Prefetch
            | OpKind::Broadcast => get(&dims, &n.inputs[0]),
            OpKind::Agg(_, AggDir::Full) => (1, 1),
            OpKind::Agg(_, AggDir::Row) => (get(&dims, &n.inputs[0]).0, 1),
            OpKind::Agg(_, AggDir::Col) => (1, get(&dims, &n.inputs[0]).1),
            OpKind::Literal(_) => (1, 1),
            OpKind::SliceRows { start, end } => {
                (end.saturating_sub(*start), get(&dims, &n.inputs[0]).1)
            }
            OpKind::SliceCols { start, end } => {
                (get(&dims, &n.inputs[0]).0, end.saturating_sub(*start))
            }
            OpKind::Conv2d(p) => (get(&dims, &n.inputs[0]).0, p.out_cols()),
            OpKind::MaxPool2d(p) => (get(&dims, &n.inputs[0]).0, p.out_cols()),
            OpKind::Affine => {
                let x = get(&dims, &n.inputs[0]);
                let w = get(&dims, &n.inputs[1]);
                (x.0, w.1)
            }
            OpKind::Evict(_) => (0, 0),
        };
        dims[n.id] = d;
    }
    dims
}

/// Assigns a backend to every node, mirroring the runtime placement rule:
/// distributed inputs keep ops on Spark; action-like ops return to the
/// driver; compute-intensive dense ops of sufficient size go to the GPU.
pub fn place(
    dag: &Dag,
    var_dims: &HashMap<String, (usize, usize)>,
    cfg: &EngineConfig,
    caps: &PlacementCaps,
) -> Vec<Backend> {
    let dims = infer_dims(dag, var_dims);
    let mut backend = vec![Backend::Cp; dag.nodes.len()];
    let input_is_sp = |backend: &Vec<Backend>, o: &Operand| -> bool {
        match o {
            Operand::Var(v) => {
                let (r, c) = var_dims.get(v).copied().unwrap_or((1, 1));
                caps.spark && cost::dense_bytes(r, c) > cfg.spark_threshold_bytes
            }
            // Action-like Spark nodes collect their output to the driver,
            // so consumers see a local value.
            Operand::Node(id) => {
                backend[*id] == Backend::Sp && !dag.nodes[*id].kind.is_action_like()
            }
        }
    };
    for n in &dag.nodes {
        let any_sp = n.inputs.iter().any(|o| input_is_sp(&backend, o));
        let (r, c) = dims[n.id];
        let opcode = opcode_of(&n.kind);
        backend[n.id] = if any_sp {
            // The operator runs on Spark; if action-like, its output is
            // still collected to the driver (handled by input_is_sp).
            Backend::Sp
        } else if caps.gpu
            && cost::is_compute_intensive(opcode)
            && r * c >= cfg.gpu_min_cells
            && cost::dense_bytes(r, c) <= caps.gpu_capacity
        {
            Backend::Gpu
        } else {
            Backend::Cp
        };
    }
    backend
}

fn opcode_of(kind: &OpKind) -> &'static str {
    match kind {
        OpKind::Rand { .. } => "rand",
        OpKind::MatMul => "ba+*",
        OpKind::Tsmm => "tsmm",
        OpKind::Xty => "ba+*",
        OpKind::Transpose => "r'",
        OpKind::Solve => "solve",
        OpKind::Binary(op) | OpKind::BinaryScalar { op, .. } => op.opcode(),
        OpKind::Unary(op) => op.opcode(),
        OpKind::Agg(op, _) => op.opcode(),
        OpKind::Literal(_) => "assignvar",
        OpKind::Alias => "assignvar",
        OpKind::SliceRows { .. } => "rightIndex",
        OpKind::SliceCols { .. } => "rightIndexCol",
        OpKind::Conv2d(_) => "conv2d",
        OpKind::MaxPool2d(_) => "maxpool",
        OpKind::Affine => "affine",
        OpKind::Checkpoint => "chkpoint",
        OpKind::Prefetch => "prefetch",
        OpKind::Broadcast => "broadcast",
        OpKind::Evict(_) => "evict",
    }
}

// ----------------------------------------------------------------------
// CSE
// ----------------------------------------------------------------------

/// Common subexpression elimination within one DAG: structurally identical
/// nodes merge; output names accumulate on the representative.
pub fn cse(dag: &Dag) -> Dag {
    let mut out = Dag::new();
    let mut remap: Vec<usize> = Vec::with_capacity(dag.nodes.len());
    let mut seen: HashMap<String, usize> = HashMap::new();
    for n in &dag.nodes {
        let inputs: Vec<Operand> = n
            .inputs
            .iter()
            .map(|o| match o {
                Operand::Var(v) => Operand::Var(v.clone()),
                Operand::Node(id) => Operand::Node(remap[*id]),
            })
            .collect();
        let key = format!("{:?}|{:?}", n.kind, inputs);
        match seen.get(&key) {
            Some(&rep) => {
                remap.push(rep);
                let rep_outputs = &mut out.nodes[rep].outputs;
                for o in &n.outputs {
                    if !rep_outputs.contains(o) {
                        rep_outputs.push(o.clone());
                    }
                }
            }
            None => {
                let id = out.add(n.kind.clone(), inputs, None);
                out.nodes[id].outputs = n.outputs.clone();
                seen.insert(key, id);
                remap.push(id);
            }
        }
    }
    out
}

// ----------------------------------------------------------------------
// Rewrites of §5
// ----------------------------------------------------------------------

/// Prefetch insertion (§5.1): wraps every action-like root of a Spark
/// operator chain in an asynchronous `Prefetch`, and inserts `Broadcast`
/// after local producers consumed by Spark operators.
pub fn insert_async(dag: &Dag, backend: &[Backend]) -> Dag {
    let mut out = Dag::new();
    let mut remap: Vec<usize> = Vec::with_capacity(dag.nodes.len());
    let consumers = dag.consumers();
    for n in &dag.nodes {
        let inputs: Vec<Operand> = n
            .inputs
            .iter()
            .map(|o| match o {
                Operand::Var(v) => Operand::Var(v.clone()),
                Operand::Node(id) => Operand::Node(remap[*id]),
            })
            .collect();
        let id = out.add(n.kind.clone(), inputs, None);
        out.nodes[id].outputs = n.outputs.clone();
        let mut mapped = id;
        // Action root on Spark, consumed locally → prefetch its result.
        let is_sp_action = backend[n.id] == Backend::Sp && n.kind.is_action_like();
        if is_sp_action {
            let pf = out.add(OpKind::Prefetch, vec![Operand::Node(id)], None);
            out.nodes[pf].outputs = n.outputs.clone();
            out.nodes[id].outputs.clear();
            mapped = pf;
        }
        // Local producer feeding a Spark consumer → broadcast it.
        let feeds_sp = consumers[n.id]
            .iter()
            .any(|&c| backend[c] == Backend::Sp && !dag.nodes[c].kind.is_action_like());
        if backend[n.id] == Backend::Cp && feeds_sp && !matches!(n.kind, OpKind::Broadcast) {
            let bc = out.add(OpKind::Broadcast, vec![Operand::Node(mapped)], None);
            out.nodes[bc].outputs = out.nodes[mapped].outputs.clone();
            out.nodes[mapped].outputs.clear();
            mapped = bc;
        }
        remap.push(mapped);
    }
    out
}

/// Checkpoint placement rewrite 1 (§5.2): when two or more Spark jobs in a
/// block share a dataflow prefix, persist the last shared Spark operator.
pub fn insert_shared_checkpoints(dag: &Dag, backend: &[Backend]) -> Dag {
    // Count, per Spark node, how many distinct action roots consume it
    // (transitively).
    let n = dag.nodes.len();
    let mut reach: Vec<std::collections::HashSet<usize>> = vec![Default::default(); n];
    let actions: Vec<usize> = dag
        .nodes
        .iter()
        .filter(|nd| nd.kind.is_action_like() && backend[nd.id] == Backend::Sp)
        .map(|nd| nd.id)
        .collect();
    for &a in &actions {
        // DFS down from the action's inputs.
        let mut stack: Vec<usize> = dag.nodes[a]
            .inputs
            .iter()
            .filter_map(|o| match o {
                Operand::Node(id) => Some(*id),
                _ => None,
            })
            .collect();
        while let Some(i) = stack.pop() {
            if reach[i].insert(a) {
                stack.extend(dag.nodes[i].inputs.iter().filter_map(|o| match o {
                    Operand::Node(id) => Some(*id),
                    _ => None,
                }));
            }
        }
    }
    // Shared Spark nodes: reached by >= 2 actions. Checkpoint the *last*
    // (highest id) shared one on each chain.
    let shared: Vec<usize> = (0..n)
        .filter(|&i| reach[i].len() >= 2 && backend[i] == Backend::Sp)
        .collect();
    let checkpoint_targets: std::collections::HashSet<usize> = shared
        .iter()
        .copied()
        .filter(|&i| {
            // No consumer of i is itself shared by the same action set.
            !dag.consumers()[i]
                .iter()
                .any(|c| shared.contains(c) && reach[*c] == reach[i])
        })
        .collect();
    rewrite_with_checkpoints(dag, &checkpoint_targets)
}

fn rewrite_with_checkpoints(dag: &Dag, targets: &std::collections::HashSet<usize>) -> Dag {
    let mut out = Dag::new();
    let mut remap: Vec<usize> = Vec::with_capacity(dag.nodes.len());
    for n in &dag.nodes {
        let inputs: Vec<Operand> = n
            .inputs
            .iter()
            .map(|o| match o {
                Operand::Var(v) => Operand::Var(v.clone()),
                Operand::Node(id) => Operand::Node(remap[*id]),
            })
            .collect();
        let id = out.add(n.kind.clone(), inputs, None);
        out.nodes[id].outputs = n.outputs.clone();
        if targets.contains(&n.id) {
            let cp = out.add(OpKind::Checkpoint, vec![Operand::Node(id)], None);
            out.nodes[cp].outputs = out.nodes[id].outputs.clone();
            out.nodes[id].outputs.clear();
            remap.push(cp);
        } else {
            remap.push(id);
        }
    }
    out
}

/// Checkpoint placement rewrite 2 (§5.2): inside a loop, variables that
/// are updated every iteration and consumed by Spark operators build
/// ever-growing lazy plans — persist the updated variable at the end of
/// each iteration (the PNMF pattern of Figure 9(c)).
pub fn insert_loop_checkpoints(program: &mut Program) {
    for block in &mut program.blocks {
        insert_loop_checkpoints_block(block);
    }
}

fn insert_loop_checkpoints_block(block: &mut Block) {
    if let Block::For { body, .. } = block {
        // Variables written AND read by the loop body (loop-carried).
        let mut written: Vec<String> = Vec::new();
        let mut read: Vec<String> = Vec::new();
        for b in body.iter() {
            if let Block::Basic { dag, .. } = b {
                for n in &dag.nodes {
                    written.extend(n.outputs.iter().cloned());
                    for i in &n.inputs {
                        if let Operand::Var(v) = i {
                            read.push(v.clone());
                        }
                    }
                }
            }
        }
        let carried: Vec<String> = written
            .iter()
            .filter(|w| read.contains(w))
            .cloned()
            .collect();
        // Append a checkpoint block for each carried variable.
        if !carried.is_empty() {
            let mut dag = Dag::new();
            for v in carried {
                dag.add(OpKind::Checkpoint, vec![Operand::Var(v.clone())], Some(&v));
            }
            body.push(Block::Basic {
                dag,
                hints: BlockHints::default(),
            });
        }
        for b in body.iter_mut() {
            insert_loop_checkpoints_block(b);
        }
    }
}

/// Eviction injection (§5.2): between consecutive loops whose GPU
/// allocation-size patterns differ, inject an `evict` instruction so the
/// free lists don't thrash through mismatched recycling.
pub fn insert_evictions(program: &mut Program, cfg: &EngineConfig, caps: &PlacementCaps) {
    let mut sizes_prev: Option<Vec<usize>> = None;
    let mut inserts: Vec<usize> = Vec::new();
    for (i, block) in program.blocks.iter().enumerate() {
        if let Block::For { body, .. } = block {
            let mut sizes: Vec<usize> = Vec::new();
            for b in body {
                if let Block::Basic { dag, .. } = b {
                    let dims = infer_dims(dag, &program.var_dims);
                    let backend = place(dag, &program.var_dims, cfg, caps);
                    for n in &dag.nodes {
                        if backend[n.id] == Backend::Gpu {
                            let (r, c) = dims[n.id];
                            sizes.push(cost::dense_bytes(r, c));
                        }
                    }
                }
            }
            sizes.sort_unstable();
            if let Some(prev) = &sizes_prev {
                if !sizes.is_empty() && *prev != sizes {
                    inserts.push(i);
                }
            }
            if !sizes.is_empty() {
                sizes_prev = Some(sizes);
            }
        }
    }
    for (off, i) in inserts.into_iter().enumerate() {
        let mut dag = Dag::new();
        dag.add(OpKind::Evict(1.0), vec![], None);
        program.blocks.insert(
            i + off,
            Block::Basic {
                dag,
                hints: BlockHints::default(),
            },
        );
    }
}

/// Delay-factor auto-tuning (§5.2): walks all blocks, estimating execution
/// frequency and the fraction of loop-dependent operators, then assigns
/// each basic block's delay factor: n = 1 when >80% of operators are
/// loop-independent (highly reusable), n = 2 when partially dependent,
/// n = 4 when fully loop-dependent (not reusable).
pub fn tune_delays(program: &mut Program) {
    for block in &mut program.blocks {
        tune_block(block, 1, &[]);
    }
}

fn tune_block(block: &mut Block, exec_estimate: u64, loop_vars: &[String]) {
    match block {
        Block::Basic { dag, hints } => {
            let total = dag.nodes.len().max(1);
            // A node is loop-dependent if it references a loop variable
            // scalar or (transitively) such a node.
            let mut dep = vec![false; dag.nodes.len()];
            for i in 0..dag.nodes.len() {
                let n = &dag.nodes[i];
                let direct = matches!(
                    &n.kind,
                    OpKind::BinaryScalar { scalar: ScalarRef::Loop(v), .. } if loop_vars.contains(v)
                ) || n
                    .inputs
                    .iter()
                    .any(|o| matches!(o, Operand::Var(v) if loop_vars.contains(v)));
                let transitive = n.inputs.iter().any(|o| match o {
                    Operand::Node(id) => dep[*id],
                    _ => false,
                });
                dep[i] = direct || transitive;
            }
            let frac = dep.iter().filter(|&&d| d).count() as f64 / total as f64;
            hints.exec_estimate = exec_estimate;
            hints.loop_dependent_fraction = frac;
            // Executed once (nothing repeats) or >80% reusable: cache
            // eagerly; partially loop-dependent blocks defer.
            hints.delay = if exec_estimate <= 1 || frac <= 0.2 {
                1
            } else if frac < 1.0 {
                2
            } else {
                4
            };
        }
        Block::For { var, values, body } => {
            let trip = values.len().max(1) as u64;
            let mut vars = loop_vars.to_vec();
            vars.push(var.clone());
            for b in body {
                tune_block(b, exec_estimate.saturating_mul(trip), &vars);
            }
        }
        Block::While {
            cond_var,
            max_iterations,
            body,
        } => {
            // Conditional loops: the trip count is unknown at compile
            // time; assume half the bound and treat the condition variable
            // as loop-dependent.
            let trip = (*max_iterations as u64 / 2).max(2);
            let mut vars = loop_vars.to_vec();
            vars.push(cond_var.clone());
            for b in body {
                tune_block(b, exec_estimate.saturating_mul(trip), &vars);
            }
        }
        Block::If {
            then_blocks,
            else_blocks,
            ..
        } => {
            for b in then_blocks.iter_mut().chain(else_blocks.iter_mut()) {
                tune_block(b, exec_estimate, loop_vars);
            }
        }
    }
}

// ----------------------------------------------------------------------
// Linearization (Algorithm 2)
// ----------------------------------------------------------------------

/// Orders a DAG into an instruction list of node ids.
pub fn linearize(dag: &Dag, backend: &[Backend], strategy: Ordering) -> Vec<usize> {
    match strategy {
        Ordering::DepthFirst => {
            let mut order = Vec::new();
            let mut visited = vec![false; dag.nodes.len()];
            for s in dag.sinks() {
                depth_first(dag, s, &mut visited, &mut order);
            }
            order
        }
        Ordering::MaxParallelize => max_parallelize(dag, backend),
    }
}

fn depth_first(dag: &Dag, id: usize, visited: &mut Vec<bool>, order: &mut Vec<usize>) {
    if visited[id] {
        return;
    }
    visited[id] = true;
    for o in &dag.nodes[id].inputs {
        if let Operand::Node(i) = o {
            depth_first(dag, *i, visited, order);
        }
    }
    order.push(id);
}

/// Algorithm 2: identify Spark-job and GPU chain roots, count the remote
/// operators below each, linearize roots in descending op count (longer
/// chains first → more overlap), then place the remaining local operators.
fn max_parallelize(dag: &Dag, backend: &[Backend]) -> Vec<usize> {
    let n = dag.nodes.len();
    // All-local fast path.
    if backend.iter().all(|&b| b == Backend::Cp) {
        return linearize(dag, backend, Ordering::DepthFirst);
    }
    // Step 1: chain roots = prefetch nodes, Spark action-likes, and GPU
    // nodes whose consumers are local (GPU-to-host boundaries).
    let consumers = dag.consumers();
    let mut roots: Vec<usize> = Vec::new();
    for node in &dag.nodes {
        let i = node.id;
        let is_prefetch = matches!(node.kind, OpKind::Prefetch);
        let is_sp_root = backend[i] == Backend::Sp
            && (node.kind.is_action_like()
                || consumers[i].iter().all(|&c| backend[c] != Backend::Sp));
        let is_gpu_root = backend[i] == Backend::Gpu
            && (consumers[i].is_empty()
                || consumers[i].iter().all(|&c| backend[c] != Backend::Gpu));
        if is_prefetch || is_sp_root || is_gpu_root {
            roots.push(i);
        }
    }
    // Count remote ops per root.
    let remote_count = |root: usize| -> usize {
        let mut stack = vec![root];
        let mut seen = std::collections::HashSet::new();
        let mut count = 0;
        while let Some(i) = stack.pop() {
            if !seen.insert(i) {
                continue;
            }
            if backend[i] != Backend::Cp {
                count += 1;
            }
            for o in &dag.nodes[i].inputs {
                if let Operand::Node(id) = o {
                    stack.push(*id);
                }
            }
        }
        count
    };
    // Step 2: sort roots by descending remote op count and linearize each
    // depth-first.
    let mut counted: Vec<(usize, usize)> = roots.iter().map(|&r| (r, remote_count(r))).collect();
    counted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut order = Vec::new();
    let mut visited = vec![false; n];
    for (r, _) in counted {
        depth_first(dag, r, &mut visited, &mut order);
    }
    // Step 3: the remaining local operators.
    for s in dag.sinks() {
        depth_first(dag, s, &mut visited, &mut order);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use memphis_matrix::ops::binary::BinaryOp;
    use memphis_matrix::ops::unary::UnaryOp;

    fn cfg_sp(threshold: usize) -> EngineConfig {
        let mut c = EngineConfig::test();
        c.spark_threshold_bytes = threshold;
        c
    }

    /// Spark tier registered, no GPU — the classic hybrid-plan setup.
    fn sp_caps() -> PlacementCaps {
        PlacementCaps {
            spark: true,
            gpu: false,
            gpu_capacity: 0,
        }
    }

    /// The linRegDS core of Example 4.1: G=tsmm(X), b=xty(X,y),
    /// A=G+reg*I (approximated as G+reg), w=solve(A, b).
    fn linreg_dag(reg: ScalarRef) -> Dag {
        let mut d = Dag::new();
        let g = d.add(OpKind::Tsmm, vec![Operand::Var("X".into())], None);
        let b = d.add(
            OpKind::Xty,
            vec![Operand::Var("X".into()), Operand::Var("y".into())],
            None,
        );
        let a = d.add(
            OpKind::BinaryScalar {
                op: BinaryOp::Add,
                scalar: reg,
                swap: false,
            },
            vec![Operand::Node(g)],
            None,
        );
        d.add(
            OpKind::Solve,
            vec![Operand::Node(a), Operand::Node(b)],
            Some("w"),
        );
        d
    }

    #[test]
    fn dims_inference_propagates() {
        let d = linreg_dag(ScalarRef::Const(0.1));
        let mut vd = HashMap::new();
        vd.insert("X".into(), (1000, 10));
        vd.insert("y".into(), (1000, 1));
        let dims = infer_dims(&d, &vd);
        assert_eq!(dims[0], (10, 10)); // tsmm
        assert_eq!(dims[1], (10, 1)); // xty
        assert_eq!(dims[3], (10, 1)); // solve
    }

    #[test]
    fn placement_pushes_large_inputs_to_spark() {
        let d = linreg_dag(ScalarRef::Const(0.1));
        let mut vd = HashMap::new();
        vd.insert("X".into(), (1000, 10)); // 80 KB
        vd.insert("y".into(), (1000, 1));
        let b = place(&d, &vd, &cfg_sp(1024), &sp_caps());
        assert_eq!(b[0], Backend::Sp, "tsmm over distributed X");
        assert_eq!(b[1], Backend::Sp, "xty over distributed X");
        assert_eq!(b[3], Backend::Cp, "solve consumes local action results");
        let b = place(&d, &vd, &cfg_sp(usize::MAX), &sp_caps());
        assert!(b.iter().all(|&x| x == Backend::Cp));
    }

    #[test]
    fn placement_respects_registered_tiers() {
        let d = linreg_dag(ScalarRef::Const(0.1));
        let mut vd = HashMap::new();
        vd.insert("X".into(), (1000, 10));
        vd.insert("y".into(), (1000, 1));
        // No Spark tier registered: everything stays on the driver even
        // though X exceeds the distribution threshold.
        let b = place(&d, &vd, &cfg_sp(1024), &PlacementCaps::local_only());
        assert!(b.iter().all(|&x| x == Backend::Cp));
    }

    #[test]
    fn gpu_placement_is_capacity_aware() {
        let mut d = Dag::new();
        d.add(OpKind::Tsmm, vec![Operand::Var("X".into())], Some("g"));
        let mut vd = HashMap::new();
        vd.insert("X".into(), (256, 64));
        let mut cfg = EngineConfig::test();
        cfg.gpu_min_cells = 1;
        let roomy = PlacementCaps {
            spark: false,
            gpu: true,
            gpu_capacity: usize::MAX,
        };
        assert_eq!(place(&d, &vd, &cfg, &roomy)[0], Backend::Gpu);
        // The 64x64 output (32 KB dense) exceeds a 1 KB device: stay local.
        let tight = PlacementCaps {
            spark: false,
            gpu: true,
            gpu_capacity: 1 << 10,
        };
        assert_eq!(place(&d, &vd, &cfg, &tight)[0], Backend::Cp);
    }

    #[test]
    fn cse_merges_identical_nodes() {
        let mut d = Dag::new();
        let t1 = d.add(OpKind::Tsmm, vec![Operand::Var("X".into())], Some("a"));
        let _t2 = d.add(OpKind::Tsmm, vec![Operand::Var("X".into())], Some("b"));
        let _u = d.add(
            OpKind::Unary(UnaryOp::Relu),
            vec![Operand::Node(t1)],
            Some("c"),
        );
        let out = cse(&d);
        assert_eq!(out.nodes.len(), 2);
        assert!(out.nodes[0].outputs.contains(&"a".to_string()));
        assert!(out.nodes[0].outputs.contains(&"b".to_string()));
    }

    #[test]
    fn prefetch_inserted_after_spark_actions() {
        let d = linreg_dag(ScalarRef::Const(0.1));
        let mut vd = HashMap::new();
        vd.insert("X".into(), (1000, 10));
        vd.insert("y".into(), (1000, 1));
        let backend = place(&d, &vd, &cfg_sp(1024), &sp_caps());
        let out = insert_async(&d, &backend);
        let prefetches = out
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, OpKind::Prefetch))
            .count();
        assert_eq!(prefetches, 2, "one per Spark job (tsmm, xty)");
    }

    #[test]
    fn shared_checkpoint_between_overlapping_jobs() {
        // Two actions over a shared Spark elementwise prefix.
        let mut d = Dag::new();
        let e = d.add(
            OpKind::Unary(UnaryOp::Exp),
            vec![Operand::Var("X".into())],
            None,
        );
        d.add(OpKind::Tsmm, vec![Operand::Node(e)], Some("g"));
        d.add(
            OpKind::Agg(memphis_matrix::ops::agg::AggOp::Sum, AggDir::Full),
            vec![Operand::Node(e)],
            Some("s"),
        );
        let mut vd = HashMap::new();
        vd.insert("X".into(), (1000, 10));
        let backend = place(&d, &vd, &cfg_sp(1024), &sp_caps());
        let out = insert_shared_checkpoints(&d, &backend);
        let cps = out
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, OpKind::Checkpoint))
            .count();
        assert_eq!(cps, 1, "the shared exp(X) gets persisted");
    }

    #[test]
    fn loop_checkpoints_for_updated_variables() {
        // while-style loop updating W (the PNMF pattern).
        let mut body_dag = Dag::new();
        body_dag.add(
            OpKind::BinaryScalar {
                op: BinaryOp::Mul,
                scalar: ScalarRef::Const(1.01),
                swap: false,
            },
            vec![Operand::Var("W".into())],
            Some("W"),
        );
        let mut p = Program::new();
        p.declare("W", 100_000, 10);
        p.blocks.push(Block::For {
            var: "i".into(),
            values: (0..5).map(|v| v as f64).collect(),
            body: vec![Block::Basic {
                dag: body_dag,
                hints: BlockHints::default(),
            }],
        });
        insert_loop_checkpoints(&mut p);
        let Block::For { body, .. } = &p.blocks[0] else {
            panic!("for loop expected")
        };
        assert_eq!(body.len(), 2, "checkpoint block appended");
        let Block::Basic { dag, .. } = &body[1] else {
            panic!("basic expected")
        };
        assert!(matches!(dag.nodes[0].kind, OpKind::Checkpoint));
        assert_eq!(dag.nodes[0].outputs, vec!["W".to_string()]);
    }

    #[test]
    fn delay_tuning_by_loop_dependence() {
        // Block A: reg-independent (tsmm of X) → delay 1.
        let mut a = Dag::new();
        a.add(OpKind::Tsmm, vec![Operand::Var("X".into())], Some("g"));
        // Block B: depends on the loop variable → delay 4.
        let mut b = Dag::new();
        b.add(
            OpKind::BinaryScalar {
                op: BinaryOp::Mul,
                scalar: ScalarRef::Loop("reg".into()),
                swap: false,
            },
            vec![Operand::Var("g".into())],
            Some("h"),
        );
        let mut p = Program::new();
        p.blocks.push(Block::For {
            var: "reg".into(),
            values: vec![0.1, 0.2],
            body: vec![
                Block::Basic {
                    dag: a,
                    hints: BlockHints::default(),
                },
                Block::Basic {
                    dag: b,
                    hints: BlockHints::default(),
                },
            ],
        });
        tune_delays(&mut p);
        let Block::For { body, .. } = &p.blocks[0] else {
            panic!()
        };
        let Block::Basic { hints: ha, .. } = &body[0] else {
            panic!()
        };
        let Block::Basic { hints: hb, .. } = &body[1] else {
            panic!()
        };
        assert_eq!(ha.delay, 1, "loop-independent block caches eagerly");
        assert_eq!(hb.delay, 4, "fully loop-dependent block defers");
        assert_eq!(ha.exec_estimate, 2);
    }

    #[test]
    fn max_parallelize_orders_longer_chains_first() {
        // Job1: exp → tsmm (2 remote ops); Job2: xty (1 remote op).
        let mut d = Dag::new();
        let e = d.add(
            OpKind::Unary(UnaryOp::Exp),
            vec![Operand::Var("X".into())],
            None,
        );
        let t = d.add(OpKind::Tsmm, vec![Operand::Node(e)], Some("g"));
        let x = d.add(
            OpKind::Xty,
            vec![Operand::Var("X".into()), Operand::Var("y".into())],
            Some("b"),
        );
        let mut vd = HashMap::new();
        vd.insert("X".into(), (1000, 10));
        vd.insert("y".into(), (1000, 1));
        let backend = place(&d, &vd, &cfg_sp(1024), &sp_caps());
        let order = linearize(&d, &backend, Ordering::MaxParallelize);
        let pos = |id: usize| order.iter().position(|&o| o == id).unwrap();
        assert!(pos(t) < pos(x), "longer Spark chain linearized first");
        assert_eq!(order.len(), 3);
        // Depth-first baseline covers all nodes too.
        let df = linearize(&d, &backend, Ordering::DepthFirst);
        assert_eq!(df.len(), 3);
    }

    #[test]
    fn eviction_injected_between_shifting_gpu_loops() {
        // Two loops with different GPU matmul output sizes (the ensemble
        // pattern of Figure 9(b)).
        let mk_loop = |cols: usize| -> Block {
            let mut d = Dag::new();
            d.add(
                OpKind::MatMul,
                vec![Operand::Var("B".into()), Operand::Var(format!("W{cols}"))],
                Some("h"),
            );
            Block::For {
                var: "i".into(),
                values: vec![0.0, 1.0],
                body: vec![Block::Basic {
                    dag: d,
                    hints: BlockHints::default(),
                }],
            }
        };
        let mut p = Program::new();
        p.declare("B", 128, 64);
        p.declare("W64", 64, 64);
        p.declare("W128", 64, 128);
        p.blocks.push(mk_loop(64));
        p.blocks.push(mk_loop(128));
        let mut cfg = EngineConfig::test();
        cfg.gpu_min_cells = 1;
        insert_evictions(&mut p, &cfg, &PlacementCaps::all());
        assert_eq!(p.blocks.len(), 3, "evict block inserted between loops");
        let Block::Basic { dag, .. } = &p.blocks[1] else {
            panic!("evict block expected")
        };
        assert!(matches!(dag.nodes[0].kind, OpKind::Evict(_)));
    }
}
