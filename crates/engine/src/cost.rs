//! Analytical compute-cost and size estimation, used for eviction scoring
//! (eq. 1 and 2), operator placement, and checkpoint decisions.

/// Estimated floating-point operations of an instruction, given the shapes
/// involved. Units are abstract FLOPs — only relative magnitudes matter
/// for the eviction policies.
pub fn flops(opcode: &str, m: usize, k: usize, n: usize) -> f64 {
    let m = m.max(1) as f64;
    let k = k.max(1) as f64;
    let n = n.max(1) as f64;
    match opcode {
        // Matrix multiply family: 2*m*k*n.
        "ba+*" | "mm" => 2.0 * m * k * n,
        "tsmm" => m * n * n, // symmetric: half of 2*m*n*n
        "solve" => (2.0 / 3.0) * n * n * n + 2.0 * n * n * m,
        "conv2d" => 2.0 * m * k * n, // caller passes im2col dims
        // Cheap elementwise / reorg ops: one pass.
        _ => m * n,
    }
}

/// Dense size in bytes of an `rows x cols` f64 matrix.
pub fn dense_bytes(rows: usize, cols: usize) -> usize {
    rows * cols * 8
}

/// Classifies an opcode as compute-intensive (GPU-worthy in SystemDS's
/// placement heuristic).
pub fn is_compute_intensive(opcode: &str) -> bool {
    matches!(
        opcode,
        "ba+*" | "mm" | "tsmm" | "conv2d" | "affine" | "solve" | "maxpool" | "softmax"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_dominates_elementwise() {
        assert!(flops("ba+*", 100, 100, 100) > flops("+", 100, 1, 100));
    }

    #[test]
    fn tsmm_cheaper_than_full_mm() {
        assert!(flops("tsmm", 1000, 1, 50) < flops("ba+*", 50, 1000, 50));
    }

    #[test]
    fn zero_dims_clamped() {
        assert!(flops("+", 0, 0, 0) >= 1.0);
    }

    #[test]
    fn classification() {
        assert!(is_compute_intensive("ba+*"));
        assert!(is_compute_intensive("conv2d"));
        assert!(!is_compute_intensive("+"));
        assert!(!is_compute_intensive("relu"));
    }

    #[test]
    fn dense_bytes_is_8_per_cell() {
        assert_eq!(dense_bytes(4, 4), 128);
    }
}
