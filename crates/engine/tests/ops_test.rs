//! Instruction-set tests: correctness across backends and the Figure-4
//! reuse behaviour (trace → probe → execute → put).

use memphis_core::cache::config::CacheConfig;
use memphis_core::cache::LineageCache;
use memphis_engine::ops::AggDir;
use memphis_engine::{EngineConfig, ExecutionContext, ReuseMode, Value};
use memphis_gpusim::{GpuConfig, GpuDevice};
use memphis_matrix::ops::agg::AggOp;
use memphis_matrix::ops::binary::BinaryOp;
use memphis_matrix::ops::matmul::{matmul, tsmm};
use memphis_matrix::ops::reorg::transpose;
use memphis_matrix::ops::unary::UnaryOp;
use memphis_matrix::rand_gen::rand_uniform;
use memphis_matrix::Matrix;
use memphis_sparksim::{SparkConfig, SparkContext};
use std::sync::Arc;

fn local_ctx() -> ExecutionContext {
    ExecutionContext::local(EngineConfig::test())
}

fn spark_ctx(threshold: usize) -> ExecutionContext {
    let sc = SparkContext::new(SparkConfig::local_test());
    let cache = Arc::new(LineageCache::new(CacheConfig::test()).with_spark_sync(sc.clone()));
    let mut cfg = EngineConfig::test();
    cfg.spark_threshold_bytes = threshold;
    ExecutionContext::new(cfg, cache, Some(sc), None)
}

fn gpu_ctx(min_cells: usize) -> ExecutionContext {
    let device = Arc::new(GpuDevice::new(GpuConfig::zero_cost(16 << 20)));
    let cache = Arc::new(LineageCache::new(CacheConfig::test()).with_gpu(device.clone()));
    let mut cfg = EngineConfig::test();
    cfg.gpu_min_cells = min_cells;
    ExecutionContext::new(cfg, cache, None, Some(device))
}

#[test]
fn local_matmul_matches_kernel() {
    let mut ctx = local_ctx();
    let a = rand_uniform(12, 6, -1.0, 1.0, 1);
    let b = rand_uniform(6, 9, -1.0, 1.0, 2);
    ctx.read("A", a.clone(), "A").unwrap();
    ctx.read("B", b.clone(), "B").unwrap();
    ctx.matmul("C", "A", "B").unwrap();
    let c = ctx.get_matrix("C").unwrap();
    assert!(c.approx_eq(&matmul(&a, &b).unwrap(), 1e-12));
}

#[test]
fn second_execution_is_reused() {
    let mut ctx = local_ctx();
    let a = rand_uniform(8, 8, -1.0, 1.0, 3);
    ctx.read("A", a.clone(), "A").unwrap();
    ctx.tsmm("T1", "A").unwrap();
    assert_eq!(ctx.stats.reused, 0);
    ctx.tsmm("T2", "A").unwrap();
    assert_eq!(ctx.stats.reused, 1, "identical tsmm must be reused");
    let t1 = ctx.get_matrix("T1").unwrap();
    let t2 = ctx.get_matrix("T2").unwrap();
    assert!(t1.approx_eq(&t2, 0.0));
}

#[test]
fn different_literals_are_not_reused() {
    let mut ctx = local_ctx();
    let a = rand_uniform(4, 4, 0.0, 1.0, 4);
    ctx.read("A", a, "A").unwrap();
    ctx.binary_const("B", "A", 2.0, BinaryOp::Mul, false)
        .unwrap();
    ctx.binary_const("C", "A", 3.0, BinaryOp::Mul, false)
        .unwrap();
    assert_eq!(ctx.stats.reused, 0);
    ctx.binary_const("D", "A", 2.0, BinaryOp::Mul, false)
        .unwrap();
    assert_eq!(ctx.stats.reused, 1);
}

#[test]
fn base_mode_never_traces_or_reuses() {
    let mut ctx = ExecutionContext::local(EngineConfig::test().with_reuse(ReuseMode::None));
    let a = rand_uniform(4, 4, 0.0, 1.0, 5);
    ctx.read("A", a, "A").unwrap();
    ctx.tsmm("T1", "A").unwrap();
    ctx.tsmm("T2", "A").unwrap();
    assert_eq!(ctx.stats.reused, 0);
    assert_eq!(ctx.cache().stats().probes, 0);
    assert!(ctx.lineage_of("T1").is_none());
}

#[test]
fn probe_only_mode_probes_but_never_stores() {
    let mut ctx = ExecutionContext::local(EngineConfig::test().with_reuse(ReuseMode::ProbeOnly));
    let a = rand_uniform(4, 4, 0.0, 1.0, 6);
    ctx.read("A", a, "A").unwrap();
    ctx.tsmm("T1", "A").unwrap();
    ctx.tsmm("T2", "A").unwrap();
    assert_eq!(ctx.stats.reused, 0);
    let s = ctx.cache().stats();
    assert_eq!(s.probes, 2);
    assert_eq!(s.puts, 0);
}

#[test]
fn rand_is_deterministic_and_reusable() {
    let mut ctx = local_ctx();
    ctx.rand("X1", 10, 10, 0.0, 1.0, 42).unwrap();
    ctx.rand("X2", 10, 10, 0.0, 1.0, 42).unwrap();
    assert_eq!(ctx.stats.reused, 1, "same seed reuses");
    ctx.rand("X3", 10, 10, 0.0, 1.0, 43).unwrap();
    assert_eq!(ctx.stats.reused, 1, "different seed re-executes");
}

#[test]
fn unary_binary_agg_pipeline() {
    let mut ctx = local_ctx();
    let a = rand_uniform(6, 6, -2.0, 2.0, 7);
    ctx.read("A", a.clone(), "A").unwrap();
    ctx.unary("R", "A", UnaryOp::Relu).unwrap();
    ctx.binary("S", "R", "A", BinaryOp::Sub).unwrap();
    ctx.agg("total", "S", AggOp::Sum, AggDir::Full).unwrap();
    let total = ctx.get_scalar("total").unwrap();
    let manual: f64 = a.values().iter().map(|&v| v.max(0.0) - v).sum();
    assert!((total - manual).abs() < 1e-9);
}

#[test]
fn scalar_literal_lineage_enables_cross_call_reuse() {
    let mut ctx = local_ctx();
    let a = rand_uniform(8, 4, 0.0, 1.0, 8);
    ctx.read("X", a, "X").unwrap();
    for (i, reg) in [0.1, 0.2, 0.1].iter().enumerate() {
        ctx.literal("reg", *reg).unwrap();
        ctx.binary("Xr", "X", "reg", BinaryOp::Mul).unwrap();
        ctx.assign(&format!("out{i}"), "Xr").unwrap();
    }
    // Third iteration repeats reg=0.1 → reuse.
    assert_eq!(ctx.stats.reused, 1);
}

// ----------------------------------------------------------------------
// Spark placement
// ----------------------------------------------------------------------

#[test]
fn distributed_tsmm_reduce_action() {
    let mut ctx = spark_ctx(0); // everything distributed
    let x = rand_uniform(64, 6, -1.0, 1.0, 9);
    ctx.read("X", x.clone(), "X").unwrap();
    assert!(matches!(ctx.value("X").unwrap(), Value::Rdd { .. }));
    ctx.tsmm("T", "X").unwrap();
    let t = ctx.get_matrix("T").unwrap();
    assert!(t.approx_eq(&tsmm(&x).unwrap(), 1e-9));
    assert!(ctx.spark().unwrap().stats().jobs >= 1);
}

#[test]
fn spark_action_result_reused_without_job() {
    let mut ctx = spark_ctx(0);
    let x = rand_uniform(64, 6, -1.0, 1.0, 10);
    ctx.read("X", x, "X").unwrap();
    ctx.tsmm("T1", "X").unwrap();
    let jobs_after_first = ctx.spark().unwrap().stats().jobs;
    ctx.tsmm("T2", "X").unwrap();
    let jobs_after_second = ctx.spark().unwrap().stats().jobs;
    assert_eq!(
        jobs_after_first, jobs_after_second,
        "action reuse must eliminate the Spark job"
    );
    assert_eq!(ctx.stats.reused, 1);
}

#[test]
fn ytx_broadcast_action_matches_local() {
    let mut ctx = spark_ctx(0);
    let x = rand_uniform(48, 5, -1.0, 1.0, 11);
    let y = rand_uniform(48, 1, -1.0, 1.0, 12);
    ctx.read("X", x.clone(), "X").unwrap();
    ctx.read("yt", transpose(&y), "yt").unwrap();
    ctx.matmul("b", "yt", "X").unwrap();
    let b = ctx.get_matrix("b").unwrap();
    assert!(b.approx_eq(&matmul(&transpose(&y), &x).unwrap(), 1e-9));
}

#[test]
fn xty_distributed_matches_local() {
    let mut ctx = spark_ctx(0);
    let x = rand_uniform(48, 5, -1.0, 1.0, 13);
    let y = rand_uniform(48, 1, -1.0, 1.0, 14);
    ctx.read("X", x.clone(), "X").unwrap();
    ctx.read("y", y.clone(), "y").unwrap();
    ctx.xty("b", "X", "y").unwrap();
    let b = ctx.get_matrix("b").unwrap();
    assert!(b.approx_eq(&matmul(&transpose(&x), &y).unwrap(), 1e-9));
}

#[test]
fn distributed_elementwise_stays_distributed() {
    let mut ctx = spark_ctx(0);
    let x = rand_uniform(32, 4, 0.0, 1.0, 15);
    ctx.read("X", x.clone(), "X").unwrap();
    ctx.binary_const("X2", "X", 2.0, BinaryOp::Mul, false)
        .unwrap();
    assert!(matches!(ctx.value("X2").unwrap(), Value::Rdd { .. }));
    ctx.binary("S", "X2", "X", BinaryOp::Sub).unwrap();
    assert!(matches!(ctx.value("S").unwrap(), Value::Rdd { .. }));
    let s = ctx.get_matrix("S").unwrap();
    assert!(s.approx_eq(&x, 1e-12), "2X - X == X");
}

#[test]
fn rdd_reuse_shares_computation() {
    let mut ctx = spark_ctx(0);
    let x = rand_uniform(32, 4, 0.0, 1.0, 16);
    ctx.read("X", x, "X").unwrap();
    ctx.unary("E1", "X", UnaryOp::Exp).unwrap();
    ctx.unary("E2", "X", UnaryOp::Exp).unwrap();
    assert_eq!(ctx.stats.reused, 1, "RDD handle reused (unmaterialized)");
    let s = ctx.cache().stats();
    assert!(s.hits_rdd >= 1);
}

#[test]
fn distributed_col_agg_and_mean() {
    let mut ctx = spark_ctx(0);
    let x = rand_uniform(40, 3, 0.0, 1.0, 17);
    ctx.read("X", x.clone(), "X").unwrap();
    ctx.agg("cs", "X", AggOp::Sum, AggDir::Col).unwrap();
    ctx.agg("cm", "X", AggOp::Mean, AggDir::Col).unwrap();
    ctx.agg("mx", "X", AggOp::Max, AggDir::Full).unwrap();
    let cs = ctx.get_matrix("cs").unwrap();
    let cm = ctx.get_matrix("cm").unwrap();
    let mx = ctx.get_scalar("mx").unwrap();
    let ecs = memphis_matrix::ops::agg::col_agg(&x, AggOp::Sum).unwrap();
    let ecm = memphis_matrix::ops::agg::col_agg(&x, AggOp::Mean).unwrap();
    assert!(cs.approx_eq(&ecs, 1e-9));
    assert!(cm.approx_eq(&ecm, 1e-9));
    assert!((mx - memphis_matrix::ops::agg::aggregate(&x, AggOp::Max).unwrap()).abs() < 1e-12);
}

#[test]
fn prefetch_returns_future_and_caches_result() {
    let sc = SparkContext::new(SparkConfig::local_test());
    let cache = Arc::new(LineageCache::new(CacheConfig::test()).with_spark_sync(sc.clone()));
    let mut cfg = EngineConfig::test();
    cfg.spark_threshold_bytes = 0;
    cfg.async_ops = true;
    let mut ctx = ExecutionContext::new(cfg, cache, Some(sc), None);
    let x = rand_uniform(32, 4, 0.0, 1.0, 18);
    ctx.read("X", x.clone(), "X").unwrap();
    ctx.unary("E", "X", UnaryOp::Exp).unwrap();
    ctx.prefetch("E").unwrap();
    assert!(matches!(ctx.value("E").unwrap(), Value::Future(_)));
    let e = ctx.get_matrix("E").unwrap();
    assert!(e.approx_eq(&memphis_matrix::ops::unary::unary(&x, UnaryOp::Exp), 1e-12));
}

// ----------------------------------------------------------------------
// GPU placement
// ----------------------------------------------------------------------

#[test]
fn gpu_matmul_matches_local() {
    let mut ctx = gpu_ctx(0); // all compute-intensive ops on device
    let a = rand_uniform(16, 8, -1.0, 1.0, 19);
    let b = rand_uniform(8, 12, -1.0, 1.0, 20);
    ctx.read("A", a.clone(), "A").unwrap();
    ctx.read("B", b.clone(), "B").unwrap();
    ctx.matmul("C", "A", "B").unwrap();
    assert!(matches!(ctx.value("C").unwrap(), Value::Gpu { .. }));
    let c = ctx.get_matrix("C").unwrap();
    assert!(c.approx_eq(&matmul(&a, &b).unwrap(), 1e-12));
    assert_eq!(ctx.stats.executed_gpu, 1);
}

#[test]
fn gpu_chain_stays_on_device() {
    let mut ctx = gpu_ctx(0);
    let a = rand_uniform(16, 16, -1.0, 1.0, 21);
    ctx.read("A", a.clone(), "A").unwrap();
    ctx.tsmm("T", "A").unwrap();
    ctx.unary("R", "T", UnaryOp::Relu).unwrap();
    assert!(matches!(ctx.value("R").unwrap(), Value::Gpu { .. }));
    let r = ctx.get_matrix("R").unwrap();
    let expected = memphis_matrix::ops::unary::unary(&tsmm(&a).unwrap(), UnaryOp::Relu);
    assert!(r.approx_eq(&expected, 1e-12));
    // Only the initial upload crossed the PCIe link (plus the final D2H).
    let dstats = ctx.gpu_device().unwrap().stats();
    assert_eq!(dstats.h2d_bytes, a.size_bytes() as u64);
}

#[test]
fn gpu_pointer_reuse_skips_kernels() {
    let mut ctx = gpu_ctx(0);
    let a = rand_uniform(16, 16, -1.0, 1.0, 22);
    ctx.read("A", a, "A").unwrap();
    ctx.tsmm("T1", "A").unwrap();
    let kernels_before = ctx.gpu_device().unwrap().stats().kernels;
    ctx.tsmm("T2", "A").unwrap();
    assert_eq!(
        ctx.gpu_device().unwrap().stats().kernels,
        kernels_before,
        "GPU pointer reuse must not launch kernels"
    );
    assert_eq!(ctx.cache().stats().hits_gpu, 1);
}

#[test]
fn gpu_recycling_in_minibatch_loop() {
    let mut ctx = gpu_ctx(0);
    let w = rand_uniform(32, 16, -0.5, 0.5, 23);
    ctx.read("W", w, "W").unwrap();
    for i in 0..5 {
        let batch = rand_uniform(8, 32, 0.0, 1.0, 100 + i);
        ctx.read("B", batch, &format!("batch{i}")).unwrap();
        ctx.matmul("H", "B", "W").unwrap();
        ctx.unary("A", "H", UnaryOp::Relu).unwrap();
        ctx.remove("H");
        ctx.remove("A");
        ctx.remove("B");
    }
    let s = ctx.cache().stats();
    assert!(
        s.gpu_recycled > 0,
        "fixed batch sizes must recycle pointers"
    );
    // Allocation count stays far below kernel count.
    let d = ctx.gpu_device().unwrap().stats();
    assert!(d.allocs < d.kernels + 5);
}

#[test]
fn evict_instruction_clears_gpu_free_list() {
    let mut ctx = gpu_ctx(0);
    let a = rand_uniform(16, 16, -1.0, 1.0, 24);
    ctx.read("A", a, "A").unwrap();
    ctx.tsmm("T", "A").unwrap();
    ctx.remove("T"); // pointer to free list, still cached
    ctx.evict_gpu(1.0);
    let g = ctx.cache().gpu_manager().unwrap();
    assert_eq!(g.free_pointers(), 0);
    // Re-execution required now.
    ctx.tsmm("T2", "A").unwrap();
    assert_eq!(ctx.stats.reused, 0);
}

// ----------------------------------------------------------------------
// Multi-level (function) reuse
// ----------------------------------------------------------------------

fn run_func(ctx: &mut ExecutionContext, reg: f64, out: &str) {
    ctx.literal("reg", reg).unwrap();
    ctx.call_function("scalePlusReg", &["X", "reg"], &[out], |c| {
        c.tsmm("G", "X").unwrap();
        c.binary("Gs", "G", "reg", BinaryOp::Add).unwrap();
        c.agg(out, "Gs", AggOp::Sum, AggDir::Full).unwrap();
        Ok(())
    })
    .unwrap();
}

#[test]
fn function_reuse_skips_body() {
    let mut ctx = local_ctx();
    let x = rand_uniform(16, 4, 0.0, 1.0, 25);
    ctx.read("X", x, "X").unwrap();
    run_func(&mut ctx, 0.1, "r1");
    let instrs = ctx.stats.instructions;
    run_func(&mut ctx, 0.1, "r2");
    assert_eq!(ctx.stats.functions_reused, 1);
    assert_eq!(ctx.stats.instructions, instrs, "body skipped entirely");
    assert_eq!(ctx.get_scalar("r1").unwrap(), ctx.get_scalar("r2").unwrap());
    // Different reg executes the body but reuses the reg-independent tsmm.
    run_func(&mut ctx, 0.2, "r3");
    assert_eq!(ctx.stats.functions_reused, 1);
    assert!(ctx.stats.reused >= 1, "fine-grained tsmm reuse inside body");
}

#[test]
fn helix_mode_reuses_functions_but_not_operators() {
    let mut ctx = ExecutionContext::local(EngineConfig::test().with_reuse(ReuseMode::Helix));
    let x = rand_uniform(16, 4, 0.0, 1.0, 26);
    ctx.read("X", x, "X").unwrap();
    run_func(&mut ctx, 0.1, "r1");
    run_func(&mut ctx, 0.1, "r2");
    assert_eq!(ctx.stats.functions_reused, 1);
    // Fine-grained: different reg re-executes everything (no op reuse).
    let instrs = ctx.stats.instructions;
    run_func(&mut ctx, 0.2, "r3");
    assert_eq!(ctx.stats.reused, 0);
    assert!(ctx.stats.instructions > instrs);
}

#[test]
fn lima_reuses_local_but_not_rdds() {
    let sc = SparkContext::new(SparkConfig::local_test());
    let cache = Arc::new(LineageCache::new(CacheConfig::test()).with_spark_sync(sc.clone()));
    let mut cfg = EngineConfig::test().with_reuse(ReuseMode::Lima);
    cfg.spark_threshold_bytes = 512; // X distributed, small results local
    let mut ctx = ExecutionContext::new(cfg, cache, Some(sc), None);
    let x = rand_uniform(32, 4, 0.0, 1.0, 27);
    ctx.read("X", x, "X").unwrap();
    // RDD-producing op: result is distributed, LIMA cannot cache it.
    ctx.unary("E1", "X", UnaryOp::Exp).unwrap();
    ctx.unary("E2", "X", UnaryOp::Exp).unwrap();
    assert_eq!(ctx.stats.reused, 0, "LIMA must not reuse RDDs");
    // Spark actions are Spark instructions: LIMA does not hook them.
    ctx.tsmm("T1", "X").unwrap();
    ctx.tsmm("T2", "X").unwrap();
    assert_eq!(ctx.stats.reused, 0, "LIMA ignores SP instructions");
    // But pure CP instructions (on the collected local result) are cached.
    let t = ctx.get_matrix("T1").unwrap();
    ctx.read("Tl", t, "Tl").unwrap();
    ctx.unary("E1", "Tl", UnaryOp::Exp).unwrap();
    ctx.unary("E2", "Tl", UnaryOp::Exp).unwrap();
    assert_eq!(ctx.stats.reused, 1, "LIMA reuses local CP intermediates");
}

#[test]
fn nn_ops_roundtrip() {
    let mut ctx = local_ctx();
    let x = rand_uniform(4, 27, -1.0, 1.0, 28); // 4 images 3x3x3
    let w = rand_uniform(2, 27, -1.0, 1.0, 29); // 2 filters 3x3x3
    ctx.read("X", x.clone(), "X").unwrap();
    ctx.read("W", w.clone(), "W").unwrap();
    let p = memphis_matrix::ops::nn::Conv2dParams {
        in_channels: 3,
        out_channels: 2,
        height: 3,
        width: 3,
        kernel: 3,
        stride: 1,
        pad: 0,
    };
    ctx.conv2d("C", "X", "W", p).unwrap();
    let c = ctx.get_matrix("C").unwrap();
    assert_eq!(c.shape(), (4, 2));
    ctx.softmax("S", "C").unwrap();
    let s = ctx.get_matrix("S").unwrap();
    let sums = memphis_matrix::ops::agg::row_agg(&s, AggOp::Sum).unwrap();
    assert!(sums.values().iter().all(|v| (v - 1.0).abs() < 1e-12));
    // Dropout determinism → reuse is sound.
    ctx.dropout("D1", "S", 0.5, 7).unwrap();
    ctx.dropout("D2", "S", 0.5, 7).unwrap();
    assert_eq!(ctx.stats.reused, 1);
}

#[test]
fn slice_and_append_ops() {
    let mut ctx = local_ctx();
    let x = rand_uniform(10, 4, 0.0, 1.0, 30);
    ctx.read("X", x.clone(), "X").unwrap();
    ctx.slice_rows("top", "X", 0, 5).unwrap();
    ctx.slice_rows("bottom", "X", 5, 10).unwrap();
    ctx.rbind("whole", "top", "bottom").unwrap();
    let whole = ctx.get_matrix("whole").unwrap();
    assert!(whole.approx_eq(&x, 0.0));
    ctx.slice_cols("left", "X", 0, 2).unwrap();
    ctx.slice_cols("right", "X", 2, 4).unwrap();
    ctx.cbind("whole2", "left", "right").unwrap();
    let whole2 = ctx.get_matrix("whole2").unwrap();
    assert!(whole2.approx_eq(&x, 0.0));
}

#[test]
fn select_rows_masks() {
    let mut ctx = local_ctx();
    let x = Matrix::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
    ctx.read("X", x, "X").unwrap();
    ctx.binary_const("mask", "X", 2.5, BinaryOp::Greater, false)
        .unwrap();
    ctx.select_rows("sel", "X", "mask").unwrap();
    let sel = ctx.get_matrix("sel").unwrap();
    assert_eq!(sel.values(), &[3.0, 4.0]);
}

#[test]
fn solve_linear_regression_normal_equations() {
    let mut ctx = local_ctx();
    let x = rand_uniform(60, 4, -1.0, 1.0, 31);
    let w_true = rand_uniform(4, 1, -1.0, 1.0, 32);
    let y = matmul(&x, &w_true).unwrap();
    ctx.read("X", x, "X").unwrap();
    ctx.read("y", y, "y").unwrap();
    ctx.tsmm("G", "X").unwrap();
    ctx.xty("b", "X", "y").unwrap();
    ctx.solve("w", "G", "b").unwrap();
    let w = ctx.get_matrix("w").unwrap();
    assert!(w.approx_eq(&w_true, 1e-6));
}
