//! Assertion helpers over drained traces: span overlap, busy-time
//! (interval union), critical-path length, per-phase totals. These make
//! the paper's temporal claims *testable* — e.g. that an async-prefetch
//! plan shows prefetch spans concurrent with compute spans while the
//! synchronous plan does not.

use crate::recorder::{EventKind, Trace, TraceEvent};
use std::collections::BTreeMap;

/// Overlap in nanoseconds between two spans (0 if disjoint).
pub fn overlap_ns(a: &TraceEvent, b: &TraceEvent) -> u64 {
    let start = a.event.ts_ns.max(b.event.ts_ns);
    let end = a.end_ns().min(b.end_ns());
    end.saturating_sub(start)
}

fn merged_intervals(spans: &[&TraceEvent]) -> Vec<(u64, u64)> {
    let mut iv: Vec<(u64, u64)> = spans
        .iter()
        .filter(|e| e.event.kind == EventKind::Span)
        .map(|e| (e.event.ts_ns, e.end_ns()))
        .collect();
    iv.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::new();
    for (s, e) in iv {
        match merged.last_mut() {
            Some((_, le)) if s <= *le => *le = (*le).max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

/// Total busy time of a span set: the length of the union of their
/// intervals (concurrent spans are not double-counted).
pub fn busy_ns(spans: &[&TraceEvent]) -> u64 {
    merged_intervals(spans).iter().map(|(s, e)| e - s).sum()
}

/// Overlap between two span *sets*: the length of the intersection of
/// their interval unions. This is the primitive behind "prefetch
/// overlaps compute": nonzero iff some span of `a` runs concurrently
/// with some span of `b`.
pub fn total_overlap_ns(a: &[&TraceEvent], b: &[&TraceEvent]) -> u64 {
    let ia = merged_intervals(a);
    let ib = merged_intervals(b);
    let mut total = 0u64;
    let (mut i, mut j) = (0, 0);
    while i < ia.len() && j < ib.len() {
        let start = ia[i].0.max(ib[j].0);
        let end = ia[i].1.min(ib[j].1);
        total += end.saturating_sub(start);
        if ia[i].1 <= ib[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Critical-path length of a span set: makespan (first start to last
/// end) minus fully idle gaps — i.e. the wall-clock a perfectly
/// dependency-packed execution of these spans cannot beat. Equal to
/// [`busy_ns`] when the set has no idle holes; larger sums than
/// `makespan_ns` are impossible.
pub fn critical_path_ns(spans: &[&TraceEvent]) -> u64 {
    busy_ns(spans)
}

/// Wall-clock extent of a span set: last end minus first start.
pub fn makespan_ns(spans: &[&TraceEvent]) -> u64 {
    let iv = merged_intervals(spans);
    match (iv.first(), iv.last()) {
        (Some((s, _)), Some((_, e))) => e - s,
        _ => 0,
    }
}

/// Fraction of `inner`'s busy time spent concurrent with `outer`
/// (0.0 when `inner` is empty).
pub fn overlap_fraction(inner: &[&TraceEvent], outer: &[&TraceEvent]) -> f64 {
    let busy = busy_ns(inner);
    if busy == 0 {
        return 0.0;
    }
    total_overlap_ns(inner, outer) as f64 / busy as f64
}

/// Per-category busy time (interval union per category), sorted by
/// category name.
pub fn phase_totals(trace: &Trace) -> BTreeMap<&'static str, u64> {
    let mut cats: BTreeMap<&'static str, Vec<&TraceEvent>> = BTreeMap::new();
    for ev in &trace.events {
        if ev.event.kind == EventKind::Span {
            cats.entry(ev.event.cat).or_default().push(ev);
        }
    }
    cats.into_iter().map(|(c, v)| (c, busy_ns(&v))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Event, EventKind, TraceEvent};

    fn span(tid: u64, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            tid,
            thread: String::new(),
            event: Event {
                kind: EventKind::Span,
                cat: "t",
                name: "s",
                ts_ns: ts,
                dur_ns: dur,
                detail: None,
                arg: None,
            },
        }
    }

    #[test]
    fn overlap_of_two_spans() {
        let a = span(0, 0, 100);
        let b = span(1, 50, 100);
        assert_eq!(overlap_ns(&a, &b), 50);
        let c = span(1, 200, 10);
        assert_eq!(overlap_ns(&a, &c), 0);
    }

    #[test]
    fn busy_merges_concurrency() {
        let a = span(0, 0, 100);
        let b = span(1, 50, 100);
        let c = span(0, 300, 50);
        assert_eq!(busy_ns(&[&a, &b, &c]), 200);
        assert_eq!(makespan_ns(&[&a, &b, &c]), 350);
    }

    #[test]
    fn set_overlap_intersects_unions() {
        let a1 = span(0, 0, 100);
        let a2 = span(0, 200, 100);
        let b1 = span(1, 90, 120); // covers 90..210
        assert_eq!(total_overlap_ns(&[&a1, &a2], &[&b1]), 10 + 10);
        assert!(overlap_fraction(&[&b1], &[&a1, &a2]) > 0.16);
    }
}
