//! Trace exporters: Chrome trace-event JSON and a plain-text timeline.

use crate::recorder::{EventKind, Trace};
use crate::MetricsRegistry;
use serde::json::escape_into;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders a [`Trace`] as Chrome trace-event JSON, loadable in
/// `chrome://tracing` or <https://ui.perfetto.dev>.
///
/// Layout:
/// - pid 1 (`memphis`) holds one track per recording thread ("X"
///   complete events for spans, "i" instants), named from the thread's
///   name — so scheduler executors, the GPU stream thread, and the
///   driver/interpreter each get a distinct track. Because the
///   simulators execute modelled costs as real delays, these wall-clock
///   tracks are also the simulated-time tracks.
/// - pid 2 (`metrics`), when a registry is supplied, holds "C" counter
///   events stamped at the trace end, one per section.
///
/// Timestamps are microseconds with nanosecond precision (fractional).
pub fn chrome_trace(trace: &Trace, registry: Option<&MetricsRegistry>) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;

    let meta = |out: &mut String, first: &mut bool, json: String| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&json);
    };

    meta(
        &mut out,
        &mut first,
        "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"memphis\"}}"
            .to_string(),
    );

    // One thread_name metadata record per distinct tid.
    let mut seen: Vec<u64> = Vec::new();
    for ev in &trace.events {
        if seen.contains(&ev.tid) {
            continue;
        }
        seen.push(ev.tid);
        let label = if ev.thread.is_empty() {
            format!("thread-{}", ev.tid)
        } else {
            ev.thread.clone()
        };
        let mut rec = format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":",
            ev.tid
        );
        escape_into(&label, &mut rec);
        rec.push_str("}}");
        meta(&mut out, &mut first, rec);
    }

    let mut end_us = 0.0f64;
    for ev in &trace.events {
        let ts_us = ev.event.ts_ns as f64 / 1_000.0;
        let dur_us = ev.event.dur_ns as f64 / 1_000.0;
        end_us = end_us.max(ts_us + dur_us);
        let mut rec = String::from("{");
        match ev.event.kind {
            EventKind::Span => {
                let _ = write!(rec, "\"ph\":\"X\",\"ts\":{ts_us:.3},\"dur\":{dur_us:.3}");
            }
            EventKind::Instant => {
                let _ = write!(rec, "\"ph\":\"i\",\"ts\":{ts_us:.3},\"s\":\"t\"");
            }
        }
        let _ = write!(rec, ",\"pid\":1,\"tid\":{}", ev.tid);
        rec.push_str(",\"cat\":");
        escape_into(ev.event.cat, &mut rec);
        rec.push_str(",\"name\":");
        match &ev.event.detail {
            // The detail label becomes the visible name; the generic
            // name stays findable under args.kind.
            Some(d) => escape_into(&format!("{} {}", ev.event.name, d), &mut rec),
            None => escape_into(ev.event.name, &mut rec),
        }
        rec.push_str(",\"args\":{\"kind\":");
        escape_into(ev.event.name, &mut rec);
        if let Some((key, val)) = ev.event.arg {
            rec.push(',');
            escape_into(key, &mut rec);
            let _ = write!(rec, ":{val}");
        }
        rec.push_str("}}");
        meta(&mut out, &mut first, rec);
    }

    if let Some(reg) = registry {
        meta(
            &mut out,
            &mut first,
            "{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\",\"args\":{\"name\":\"metrics\"}}"
                .to_string(),
        );
        for (section, name, value) in reg.entries() {
            if value == 0 {
                continue;
            }
            let mut rec = String::from("{\"ph\":\"C\",\"pid\":2,\"tid\":0,\"name\":");
            escape_into(&format!("{section}/{name}"), &mut rec);
            let _ = write!(rec, ",\"ts\":{end_us:.3},\"args\":{{\"value\":{value}}}}}");
            meta(&mut out, &mut first, rec);
        }
    }

    out.push_str("\n]}\n");
    out
}

/// Writes [`chrome_trace`] output to `path`.
pub fn write_chrome_trace(
    path: impl AsRef<Path>,
    trace: &Trace,
    registry: Option<&MetricsRegistry>,
) -> io::Result<()> {
    std::fs::write(path, chrome_trace(trace, registry))
}

/// Renders a [`Trace`] as a human-readable timeline: one line per event
/// ordered by start time, with per-category busy totals appended.
pub fn text_timeline(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>12} {:>10}  {:<24} {:<10} event",
        "start(ms)", "dur(ms)", "thread", "cat"
    );
    for ev in &trace.events {
        let thread = if ev.thread.is_empty() {
            format!("thread-{}", ev.tid)
        } else {
            ev.thread.clone()
        };
        let mut label = ev.event.name.to_string();
        if let Some(d) = &ev.event.detail {
            let _ = write!(label, " {d}");
        }
        if let Some((k, v)) = ev.event.arg {
            let _ = write!(label, " [{k}={v}]");
        }
        let _ = writeln!(
            out,
            "{:>12.3} {:>10.3}  {:<24} {:<10} {}",
            ev.event.ts_ns as f64 / 1e6,
            ev.event.dur_ns as f64 / 1e6,
            thread,
            ev.event.cat,
            label
        );
    }
    let totals = crate::analysis::phase_totals(trace);
    if !totals.is_empty() {
        let _ = writeln!(out, "-- per-category busy time (interval union) --");
        for (cat, busy_ns) in totals {
            let _ = writeln!(out, "{:>12.3} ms  {}", busy_ns as f64 / 1e6, cat);
        }
    }
    if trace.dropped > 0 {
        let _ = writeln!(out, "({} events dropped to ring overwrite)", trace.dropped);
    }
    out
}
