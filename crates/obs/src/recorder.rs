//! The lock-cheap event recorder: per-thread ring buffers behind one
//! global registry, gated by an atomic enabled flag.

use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-thread ring capacity in events. Oldest events are overwritten
/// once full (the overwrite count is preserved in [`Trace::dropped`]).
const RING_CAPACITY: usize = 1 << 16;

/// What an [`Event`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An interval: `ts_ns..ts_ns + dur_ns`.
    Span,
    /// A point in time (`dur_ns` is 0).
    Instant,
}

/// One recorded event. `name` and `cat` are static so the hot path
/// never allocates for them; dynamic context (opcode, item key, stage
/// id) rides in `detail`, built lazily only while tracing is enabled.
#[derive(Debug, Clone)]
pub struct Event {
    pub kind: EventKind,
    /// Category (see [`crate::cat`]); the Chrome-trace `cat` field.
    pub cat: &'static str,
    /// Event name, e.g. `"probe"`, `"task"`, `"kernel"`.
    pub name: &'static str,
    /// Nanoseconds since the epoch armed by [`enable`].
    pub ts_ns: u64,
    /// Span length in nanoseconds; 0 for instants.
    pub dur_ns: u64,
    /// Optional dynamic label (opcode, lineage key, stage id).
    pub detail: Option<String>,
    /// Optional numeric argument, e.g. `("bytes", 4096)`.
    pub arg: Option<(&'static str, u64)>,
}

/// An [`Event`] annotated with the recording thread, as returned by
/// [`drain`].
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Dense per-thread id assigned at first record (stable per run).
    pub tid: u64,
    /// The recording thread's name at registration time, if any.
    pub thread: String,
    pub event: Event,
}

impl TraceEvent {
    /// Span end timestamp (== `ts_ns` for instants).
    pub fn end_ns(&self) -> u64 {
        self.event.ts_ns + self.event.dur_ns
    }
}

/// A drained snapshot of every thread's buffer, sorted by start time.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overwrites, summed over all threads.
    pub dropped: u64,
}

impl Trace {
    /// Spans matching a category and name.
    pub fn spans(&self, cat: &str, name: &str) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| {
                e.event.kind == EventKind::Span && e.event.cat == cat && e.event.name == name
            })
            .collect()
    }

    /// All events in a category.
    pub fn category(&self, cat: &str) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.event.cat == cat).collect()
    }

    /// Instants matching a category and name.
    pub fn instants(&self, cat: &str, name: &str) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| {
                e.event.kind == EventKind::Instant && e.event.cat == cat && e.event.name == name
            })
            .collect()
    }
}

struct ThreadBuf {
    tid: u64,
    name: String,
    /// Ring storage; once `events.len() == RING_CAPACITY`, `head` is the
    /// logical start and pushes overwrite the oldest slot.
    events: Vec<Event>,
    head: usize,
    dropped: u64,
}

impl ThreadBuf {
    fn push(&mut self, ev: Event) {
        if self.events.len() < RING_CAPACITY {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % RING_CAPACITY;
            self.dropped += 1;
        }
    }
}

struct Registry {
    bufs: Vec<Arc<Mutex<ThreadBuf>>>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Total events ever recorded (all threads). Used by tests to assert the
/// disabled path bumps no cursor.
static RECORDED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static REGISTRY: Mutex<Registry> = Mutex::new(Registry { bufs: Vec::new() });
static EPOCH: RwLock<Option<Instant>> = RwLock::new(None);

thread_local! {
    static LOCAL: std::cell::RefCell<Option<Arc<Mutex<ThreadBuf>>>> =
        const { std::cell::RefCell::new(None) };
}

/// Arms the epoch (if unset) and turns recording on.
pub fn enable() {
    let mut epoch = EPOCH.write();
    if epoch.is_none() {
        *epoch = Some(Instant::now());
    }
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns recording off. Buffered events remain drainable.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether recording is on. One relaxed atomic load — this is the entire
/// cost instrumentation sites pay when tracing is disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drops all buffered events and re-arms the epoch at now. Threads keep
/// their registered buffers (and ids); recording state is unchanged.
pub fn reset() {
    let registry = REGISTRY.lock();
    for buf in &registry.bufs {
        let mut b = buf.lock();
        b.events.clear();
        b.head = 0;
        b.dropped = 0;
    }
    drop(registry);
    *EPOCH.write() = Some(Instant::now());
}

/// Number of threads that have registered a buffer. Used by tests to
/// assert the disabled path allocates nothing (a fresh thread recording
/// while disabled must not register).
pub fn thread_count() -> usize {
    REGISTRY.lock().bufs.len()
}

/// Total events recorded since process start (monotonic; survives
/// [`reset`]). The disabled-mode test asserts this does not move.
pub fn total_recorded() -> u64 {
    RECORDED.load(Ordering::Relaxed)
}

fn now_ns() -> u64 {
    let epoch = EPOCH.read();
    match *epoch {
        Some(e) => e.elapsed().as_nanos() as u64,
        None => 0,
    }
}

fn record(ev: Event) {
    RECORDED.fetch_add(1, Ordering::Relaxed);
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current().name().unwrap_or("").to_string();
            let buf = Arc::new(Mutex::new(ThreadBuf {
                tid,
                name,
                events: Vec::new(),
                head: 0,
                dropped: 0,
            }));
            REGISTRY.lock().bufs.push(buf.clone());
            buf
        });
        buf.lock().push(ev);
    });
}

/// Records a point event.
#[inline]
pub fn instant(cat: &'static str, name: &'static str) {
    if !enabled() {
        return;
    }
    record(Event {
        kind: EventKind::Instant,
        cat,
        name,
        ts_ns: now_ns(),
        dur_ns: 0,
        detail: None,
        arg: None,
    });
}

/// Records a point event with a numeric argument (e.g. bytes).
#[inline]
pub fn instant_val(cat: &'static str, name: &'static str, key: &'static str, val: u64) {
    if !enabled() {
        return;
    }
    record(Event {
        kind: EventKind::Instant,
        cat,
        name,
        ts_ns: now_ns(),
        dur_ns: 0,
        detail: None,
        arg: Some((key, val)),
    });
}

/// An in-flight span; records a [`EventKind::Span`] event on drop.
/// Constructed disabled (all-`None`) when tracing is off, in which case
/// drop is a no-op and construction allocated nothing.
#[must_use = "the span is recorded when this guard drops"]
pub struct SpanGuard {
    start_ns: u64,
    cat: &'static str,
    name: &'static str,
    detail: Option<String>,
    arg: Option<(&'static str, u64)>,
    live: bool,
}

impl SpanGuard {
    /// Attaches a numeric argument to the span (kept on the latest call).
    pub fn arg(mut self, key: &'static str, val: u64) -> Self {
        if self.live {
            self.arg = Some((key, val));
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let ts = self.start_ns;
        record(Event {
            kind: EventKind::Span,
            cat: self.cat,
            name: self.name,
            ts_ns: ts,
            dur_ns: now_ns().saturating_sub(ts),
            detail: self.detail.take(),
            arg: self.arg,
        });
    }
}

/// Opens a span on the calling thread; recorded when the guard drops.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            start_ns: 0,
            cat,
            name,
            detail: None,
            arg: None,
            live: false,
        };
    }
    SpanGuard {
        start_ns: now_ns(),
        cat,
        name,
        detail: None,
        arg: None,
        live: true,
    }
}

/// Like [`span`], with a dynamic label built *only* if tracing is
/// enabled (so disabled call sites pay no formatting or allocation).
#[inline]
pub fn span_with(
    cat: &'static str,
    name: &'static str,
    detail: impl FnOnce() -> String,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            start_ns: 0,
            cat,
            name,
            detail: None,
            arg: None,
            live: false,
        };
    }
    SpanGuard {
        start_ns: now_ns(),
        cat,
        name,
        detail: Some(detail()),
        arg: None,
        live: true,
    }
}

/// Snapshots every registered thread buffer into a [`Trace`] sorted by
/// start timestamp. Buffers are not cleared; use [`reset`] for that.
pub fn drain() -> Trace {
    let registry = REGISTRY.lock();
    let mut out = Trace::default();
    for buf in &registry.bufs {
        let b = buf.lock();
        out.dropped += b.dropped;
        // Ring order: head..end is oldest when the ring has wrapped.
        let (older, newer) = b.events.split_at(b.head);
        for ev in newer.iter().chain(older.iter()) {
            out.events.push(TraceEvent {
                tid: b.tid,
                thread: b.name.clone(),
                event: ev.clone(),
            });
        }
    }
    drop(registry);
    out.events
        .sort_by_key(|e| (e.event.ts_ns, e.tid, e.event.dur_ns));
    out
}
