//! The unified named-counter report: one registry absorbing every
//! subsystem's stats snapshot through a single conversion path.

use std::fmt::Write as _;

/// A stats snapshot that can contribute counters to a
/// [`MetricsRegistry`]. Implemented by `ReuseStatsSnapshot`
/// (memphis-core), `StatsSnapshot` (memphis-sparksim), and
/// `GpuStatsSnapshot` (memphis-gpusim) — the one conversion path
/// replacing the bespoke per-backend printing previously duplicated
/// across the bench binaries.
pub trait IntoMetrics {
    /// Section the counters belong under, e.g. `"reuse"`, `"spark"`.
    fn metrics_section(&self) -> &'static str;
    /// `(counter name, value)` pairs in display order.
    fn metrics(&self) -> Vec<(&'static str, u64)>;
}

/// An ordered collection of `section / counter → value` entries with
/// text and JSON renderings. Sections keep insertion order; counters
/// keep the order their snapshot reports them in.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    sections: Vec<(String, Vec<(String, u64)>)>,
}

impl MetricsRegistry {
    pub const fn new() -> Self {
        Self {
            sections: Vec::new(),
        }
    }

    /// Absorbs a snapshot via the [`IntoMetrics`] conversion path.
    pub fn absorb(&mut self, snapshot: &dyn IntoMetrics) {
        self.record_pairs(snapshot.metrics_section(), snapshot.metrics());
    }

    /// Records counters under `section`, overwriting same-named entries
    /// (so absorbing a newer snapshot of the same subsystem updates in
    /// place).
    pub fn record_pairs<N: Into<String>>(
        &mut self,
        section: &str,
        pairs: impl IntoIterator<Item = (N, u64)>,
    ) {
        let sec = match self.sections.iter_mut().find(|(s, _)| s == section) {
            Some((_, entries)) => entries,
            None => {
                self.sections.push((section.to_string(), Vec::new()));
                &mut self.sections.last_mut().unwrap().1
            }
        };
        for (name, value) in pairs {
            let name = name.into();
            match sec.iter_mut().find(|(n, _)| *n == name) {
                Some((_, v)) => *v = value,
                None => sec.push((name, value)),
            }
        }
    }

    /// Records one counter.
    pub fn record(&mut self, section: &str, name: &str, value: u64) {
        self.record_pairs(section, [(name, value)]);
    }

    /// Looks up a counter.
    pub fn get(&self, section: &str, name: &str) -> Option<u64> {
        self.sections
            .iter()
            .find(|(s, _)| s == section)
            .and_then(|(_, entries)| entries.iter().find(|(n, _)| n == name))
            .map(|(_, v)| *v)
    }

    /// Section names in insertion order.
    pub fn sections(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(s, _)| s.as_str())
    }

    /// All `(section, name, value)` entries in report order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.sections.iter().flat_map(|(s, entries)| {
            entries
                .iter()
                .map(move |(n, v)| (s.as_str(), n.as_str(), *v))
        })
    }

    /// True when no counters have been recorded.
    pub fn is_empty(&self) -> bool {
        self.sections.iter().all(|(_, e)| e.is_empty())
    }

    /// Plain-text report: one indented block per section, zero-valued
    /// counters elided (a section whose counters are all zero still
    /// prints its header, so absence of activity is visible).
    pub fn text_report(&self) -> String {
        let mut out = String::new();
        for (section, entries) in &self.sections {
            let _ = writeln!(out, "  [{section}]");
            let mut line = String::new();
            for (name, value) in entries {
                if *value == 0 {
                    continue;
                }
                if !line.is_empty() && line.len() + name.len() > 66 {
                    let _ = writeln!(out, "    {line}");
                    line.clear();
                }
                if !line.is_empty() {
                    line.push(' ');
                }
                let _ = write!(line, "{name}={value}");
            }
            if !line.is_empty() {
                let _ = writeln!(out, "    {line}");
            }
        }
        out
    }

    /// Machine-readable JSON: `{"section": {"counter": value, ...}, ...}`
    /// including zero values, preserving report order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        for (i, (section, entries)) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            serde::json::escape_into(section, &mut out);
            out.push_str(":{");
            for (j, (name, value)) in entries.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                serde::json::escape_into(name, &mut out);
                out.push(':');
                out.push_str(&serde::json::to_string(value));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;
    impl IntoMetrics for Fake {
        fn metrics_section(&self) -> &'static str {
            "fake"
        }
        fn metrics(&self) -> Vec<(&'static str, u64)> {
            vec![("hits", 3), ("misses", 0)]
        }
    }

    #[test]
    fn absorb_and_lookup() {
        let mut reg = MetricsRegistry::new();
        reg.absorb(&Fake);
        assert_eq!(reg.get("fake", "hits"), Some(3));
        assert_eq!(reg.get("fake", "misses"), Some(0));
        assert_eq!(reg.get("fake", "nope"), None);
    }

    #[test]
    fn record_overwrites_in_place() {
        let mut reg = MetricsRegistry::new();
        reg.record("s", "a", 1);
        reg.record("s", "b", 2);
        reg.record("s", "a", 9);
        assert_eq!(reg.get("s", "a"), Some(9));
        let order: Vec<_> = reg.entries().map(|(_, n, _)| n.to_string()).collect();
        assert_eq!(order, ["a", "b"]);
    }

    #[test]
    fn json_shape() {
        let mut reg = MetricsRegistry::new();
        reg.record_pairs("reuse", [("hits", 5u64), ("misses", 0)]);
        assert_eq!(reg.to_json(), r#"{"reuse":{"hits":5,"misses":0}}"#);
    }

    #[test]
    fn text_elides_zeros_but_keeps_section() {
        let mut reg = MetricsRegistry::new();
        reg.record_pairs("idle", [("a", 0u64)]);
        reg.record_pairs("busy", [("a", 1u64)]);
        let text = reg.text_report();
        assert!(text.contains("[idle]"));
        assert!(!text.contains("a=0"));
        assert!(text.contains("a=1"));
    }
}
