//! `memphis-obs`: unified event tracing and metrics for the MEMPHIS
//! reproduction.
//!
//! MEMPHIS's headline claims are *temporal* — lazy reuse beats eager
//! caching, asynchronous prefetch/broadcast overlaps Spark jobs with GPU
//! chains and CPU ops, and eviction/recovery stays off the critical path.
//! End-of-run counters cannot show any of that. This crate records
//! *events*:
//!
//! - [`span`] / [`span_with`] — a named interval on the calling thread,
//!   recorded when the returned [`SpanGuard`] drops.
//! - [`instant`] / [`instant_val`] — a point event (reuse hit, eviction
//!   victim, task retry).
//!
//! Events land in per-thread ring buffers (bounded, oldest-overwritten)
//! registered with a global recorder; the only cross-thread state touched
//! on the hot path is one relaxed atomic load of the enabled flag, and
//! one uncontended per-thread lock when recording. When tracing is
//! disabled — the default — every entry point returns before allocating
//! or touching a buffer cursor, so instrumented hot paths (the
//! interpreter's Figure-4 hook) pay a single atomic load.
//!
//! Timestamps are nanoseconds since a global epoch armed by [`enable`].
//! Because the Spark and GPU simulators execute their modelled costs as
//! real delays, the wall-clock tracks double as the simulated-time
//! tracks.
//!
//! [`drain`] snapshots all buffers into a [`Trace`], which the
//! [`export`] module renders as Chrome trace-event JSON (load in
//! `chrome://tracing` or <https://ui.perfetto.dev>) or a plain-text
//! timeline, and the [`analysis`] module interrogates (span overlap,
//! critical-path length, per-phase totals) so tests can *prove* overlap
//! claims. [`MetricsRegistry`] unifies the per-subsystem stats snapshots
//! into one named-counter report with text and JSON renderings.

pub mod analysis;
pub mod export;
mod recorder;
mod registry;

pub use recorder::{
    disable, drain, enable, enabled, instant, instant_val, reset, span, span_with, thread_count,
    total_recorded, Event, EventKind, SpanGuard, Trace, TraceEvent,
};
pub use registry::{IntoMetrics, MetricsRegistry};

/// Event categories, used as Chrome-trace `cat` and for analysis filters.
pub mod cat {
    /// Interpreter instruction execution (Figure-4 hook).
    pub const INTERP: &str = "interp";
    /// Lineage-cache reuse path: probe/hit/miss/put.
    pub const REUSE: &str = "reuse";
    /// Cache backend internals: MAKE_SPACE, victim selection, spill.
    pub const CACHE: &str = "cache";
    /// Spark-sim scheduler: jobs, stages, tasks.
    pub const SCHED: &str = "sched";
    /// Shuffle writes/fetches.
    pub const SHUFFLE: &str = "shuffle";
    /// Fault recovery: retries, stage resubmission, lost executors.
    pub const RECOVERY: &str = "recovery";
    /// GPU stream operations (kernels, syncs).
    pub const GPU: &str = "gpu";
    /// Host<->device transfers.
    pub const XFER: &str = "xfer";
    /// Asynchronous operators: prefetch/broadcast futures.
    pub const ASYNC: &str = "async";
    /// Multi-session serving harness: per-session phases and rendezvous.
    pub const SERVE: &str = "serve";
    /// Cluster layer: remote probes, transfers, rebalance epochs.
    pub const CLUSTER: &str = "cluster";
}
