//! Device counters used by the GPU experiments (allocation/copy overheads,
//! synchronization barriers, kernel counts).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Atomic device counters.
#[derive(Debug, Default)]
pub struct GpuStats {
    /// `cudaMalloc`-style allocations served.
    pub allocs: AtomicU64,
    /// `cudaFree`-style deallocations.
    pub frees: AtomicU64,
    /// Failed allocation attempts (arena could not fit the request).
    pub alloc_failures: AtomicU64,
    /// Kernels launched.
    pub kernels: AtomicU64,
    /// Host-blocking stream synchronizations.
    pub syncs: AtomicU64,
    /// Host-to-device bytes copied.
    pub h2d_bytes: AtomicU64,
    /// Device-to-host bytes copied.
    pub d2h_bytes: AtomicU64,
    /// Nanoseconds the host spent blocked in alloc/free overhead.
    pub alloc_free_wait_ns: AtomicU64,
    /// Nanoseconds the host spent blocked in transfers.
    pub transfer_wait_ns: AtomicU64,
    /// Nanoseconds the host spent blocked waiting for the stream to drain.
    pub sync_wait_ns: AtomicU64,
    /// Nanoseconds of simulated device compute.
    pub compute_ns: AtomicU64,
}

/// Point-in-time copy of device counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub struct GpuStatsSnapshot {
    /// See [`GpuStats::allocs`].
    pub allocs: u64,
    /// See [`GpuStats::frees`].
    pub frees: u64,
    /// See [`GpuStats::alloc_failures`].
    pub alloc_failures: u64,
    /// See [`GpuStats::kernels`].
    pub kernels: u64,
    /// See [`GpuStats::syncs`].
    pub syncs: u64,
    /// See [`GpuStats::h2d_bytes`].
    pub h2d_bytes: u64,
    /// See [`GpuStats::d2h_bytes`].
    pub d2h_bytes: u64,
    /// See [`GpuStats::alloc_free_wait_ns`].
    pub alloc_free_wait_ns: u64,
    /// See [`GpuStats::transfer_wait_ns`].
    pub transfer_wait_ns: u64,
    /// See [`GpuStats::sync_wait_ns`].
    pub sync_wait_ns: u64,
    /// See [`GpuStats::compute_ns`].
    pub compute_ns: u64,
}

impl GpuStats {
    /// Adds a duration to a nanosecond counter.
    pub fn add_duration(counter: &AtomicU64, d: Duration) {
        counter.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Copies every counter.
    pub fn snapshot(&self) -> GpuStatsSnapshot {
        GpuStatsSnapshot {
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            alloc_failures: self.alloc_failures.load(Ordering::Relaxed),
            kernels: self.kernels.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            h2d_bytes: self.h2d_bytes.load(Ordering::Relaxed),
            d2h_bytes: self.d2h_bytes.load(Ordering::Relaxed),
            alloc_free_wait_ns: self.alloc_free_wait_ns.load(Ordering::Relaxed),
            transfer_wait_ns: self.transfer_wait_ns.load(Ordering::Relaxed),
            sync_wait_ns: self.sync_wait_ns.load(Ordering::Relaxed),
            compute_ns: self.compute_ns.load(Ordering::Relaxed),
        }
    }
}

impl GpuStatsSnapshot {
    /// Uniform key/value view of the headline counters — consumed by the
    /// cache's per-backend stats aggregation.
    pub fn pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("allocs", self.allocs),
            ("frees", self.frees),
            ("kernels", self.kernels),
            ("syncs", self.syncs),
            ("h2d", self.h2d_bytes),
            ("d2h", self.d2h_bytes),
        ]
    }

    /// Counter-wise difference `self - earlier`.
    pub fn delta(&self, earlier: &GpuStatsSnapshot) -> GpuStatsSnapshot {
        GpuStatsSnapshot {
            allocs: self.allocs - earlier.allocs,
            frees: self.frees - earlier.frees,
            alloc_failures: self.alloc_failures - earlier.alloc_failures,
            kernels: self.kernels - earlier.kernels,
            syncs: self.syncs - earlier.syncs,
            h2d_bytes: self.h2d_bytes - earlier.h2d_bytes,
            d2h_bytes: self.d2h_bytes - earlier.d2h_bytes,
            alloc_free_wait_ns: self.alloc_free_wait_ns - earlier.alloc_free_wait_ns,
            transfer_wait_ns: self.transfer_wait_ns - earlier.transfer_wait_ns,
            sync_wait_ns: self.sync_wait_ns - earlier.sync_wait_ns,
            compute_ns: self.compute_ns - earlier.compute_ns,
        }
    }
}

impl memphis_obs::IntoMetrics for GpuStatsSnapshot {
    fn metrics_section(&self) -> &'static str {
        "gpu"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("allocs", self.allocs),
            ("frees", self.frees),
            ("alloc_failures", self.alloc_failures),
            ("kernels", self.kernels),
            ("syncs", self.syncs),
            ("h2d_bytes", self.h2d_bytes),
            ("d2h_bytes", self.d2h_bytes),
            ("alloc_free_wait_ns", self.alloc_free_wait_ns),
            ("transfer_wait_ns", self.transfer_wait_ns),
            ("sync_wait_ns", self.sync_wait_ns),
            ("compute_ns", self.compute_ns),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_accumulates() {
        let s = GpuStats::default();
        GpuStats::add_duration(&s.sync_wait_ns, Duration::from_micros(5));
        GpuStats::add_duration(&s.sync_wait_ns, Duration::from_micros(5));
        assert_eq!(s.snapshot().sync_wait_ns, 10_000);
    }

    #[test]
    fn delta_subtracts() {
        let s = GpuStats::default();
        s.kernels.fetch_add(3, Ordering::Relaxed);
        let a = s.snapshot();
        s.kernels.fetch_add(2, Ordering::Relaxed);
        assert_eq!(s.snapshot().delta(&a).kernels, 2);
    }
}
