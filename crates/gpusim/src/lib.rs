//! A simulated CUDA-like GPU device for the MEMPHIS reproduction.
//!
//! The original MEMPHIS uses NVIDIA A40 GPUs through CUDA. This crate
//! models the device properties the paper's GPU mechanisms depend on
//! (§2.3, §4.2):
//!
//! - **Asynchronous, in-order kernel stream**: kernels enqueue from the
//!   host and run on a dedicated device thread; the host keeps going —
//!   exactly like a single CUDA stream.
//! - **Synchronization barriers**: `cudaMalloc`/`cudaFree`-style
//!   allocation, device-to-host copies, and explicit `synchronize` drain
//!   the stream before returning, stalling the host.
//! - **Allocation overhead & fragmentation**: device memory is a real
//!   first-fit free-list arena over a virtual address space, so repeated
//!   alloc/free with shifting sizes produces genuine fragmentation and
//!   allocation failures.
//! - **Bandwidth-modelled transfers**: host-to-device and device-to-host
//!   copies charge per-byte costs calibrated to the paper's Figure 2(d)
//!   ratios (alloc/free ≈ 4.6x and copy ≈ 9x of kernel compute).
//!
//! Kernels execute the real matrix kernels from `memphis-matrix` on the
//! device thread, so results are bit-identical to CPU execution.

pub mod arena;
pub mod config;
pub mod device;
pub mod stats;

pub use arena::{Arena, DeviceAddr};
pub use config::GpuConfig;
pub use device::{GpuDevice, GpuError, GpuPtr};
pub use stats::{GpuStats, GpuStatsSnapshot};
