//! The simulated GPU device: memory API with synchronization barriers and
//! an asynchronous, in-order kernel stream.

use crate::arena::{Arena, DeviceAddr};
use crate::config::GpuConfig;
use crate::stats::GpuStats;
use crossbeam::channel::{unbounded, Sender};
use memphis_matrix::Matrix;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Device-resident matrix store, indexed by device address.
pub type DeviceData = HashMap<DeviceAddr, Matrix>;

/// A kernel body executed on the device thread.
pub type Kernel = Box<dyn FnOnce(&mut DeviceData) + Send>;

/// Handle to a device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GpuPtr {
    /// Device address.
    pub addr: DeviceAddr,
    /// Allocation size in bytes.
    pub size: usize,
}

/// Errors surfaced by the device API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// The arena has no contiguous range for the request.
    OutOfMemory {
        /// Requested bytes.
        requested: usize,
        /// Largest contiguous free range.
        largest_free: usize,
        /// Total free bytes (may exceed `largest_free` under fragmentation).
        total_free: usize,
    },
    /// The pointer does not refer to a live allocation.
    InvalidPointer,
    /// No data resident at the pointer (kernel never wrote it).
    NoData,
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfMemory {
                requested,
                largest_free,
                total_free,
            } => write!(
                f,
                "device out of memory: requested {requested} B, largest free {largest_free} B, total free {total_free} B"
            ),
            GpuError::InvalidPointer => write!(f, "invalid device pointer"),
            GpuError::NoData => write!(f, "no data resident at device pointer"),
        }
    }
}

impl std::error::Error for GpuError {}

enum StreamCmd {
    Kernel(Kernel),
    Sync(Sender<()>),
}

/// The simulated device. One instance per GPU; `Arc`-share it across host
/// threads.
pub struct GpuDevice {
    cfg: GpuConfig,
    arena: Mutex<Arena>,
    data: Arc<Mutex<DeviceData>>,
    stream: Sender<StreamCmd>,
    device_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    stats: Arc<GpuStats>,
}

impl GpuDevice {
    /// Boots a device with the given configuration.
    pub fn new(cfg: GpuConfig) -> Self {
        let data: Arc<Mutex<DeviceData>> = Arc::new(Mutex::new(HashMap::new()));
        let (tx, rx) = unbounded::<StreamCmd>();
        let stats = Arc::new(GpuStats::default());
        let thread_data = data.clone();
        let thread_stats = stats.clone();
        let launch = cfg.kernel_launch;
        let speedup = cfg.compute_speedup;
        let handle = std::thread::Builder::new()
            .name("gpu-stream-0".into())
            .spawn(move || {
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        StreamCmd::Kernel(k) => {
                            let kernel_span = memphis_obs::span(memphis_obs::cat::GPU, "kernel");
                            if !launch.is_zero() {
                                std::thread::sleep(launch);
                            }
                            let t0 = Instant::now();
                            {
                                let mut data = thread_data.lock();
                                k(&mut data);
                            }
                            let elapsed = t0.elapsed();
                            GpuStats::add_duration(&thread_stats.compute_ns, elapsed);
                            // compute_speedup < 1 models a device slower
                            // than the host core by sleeping the difference;
                            // >= 1 runs at host speed (we cannot execute
                            // faster than real time).
                            if speedup < 1.0 {
                                let extra = elapsed.mul_f64(1.0 / speedup - 1.0);
                                std::thread::sleep(extra);
                            }
                            drop(kernel_span);
                        }
                        StreamCmd::Sync(ack) => {
                            ack.send(()).ok();
                        }
                    }
                }
            })
            .expect("spawn device thread");
        let arena = Mutex::new(Arena::new(cfg.memory_capacity));
        Self {
            cfg,
            arena,
            data,
            stream: tx,
            device_thread: Mutex::new(Some(handle)),
            stats,
        }
    }

    /// Device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Counter snapshot.
    pub fn stats(&self) -> crate::stats::GpuStatsSnapshot {
        self.stats.snapshot()
    }

    /// Bytes currently allocated on the device.
    pub fn mem_used(&self) -> usize {
        self.arena.lock().used()
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.arena.lock().capacity()
    }

    /// Largest contiguous free range (fragmentation probe).
    pub fn largest_free(&self) -> usize {
        self.arena.lock().largest_free_range()
    }

    /// External fragmentation in `[0, 1]`.
    pub fn fragmentation(&self) -> f64 {
        self.arena.lock().fragmentation()
    }

    /// Drains the kernel stream, blocking the host (a synchronization
    /// barrier). Charged to `sync_wait_ns`.
    pub fn synchronize(&self) {
        let _sync_span = memphis_obs::span(memphis_obs::cat::GPU, "sync");
        let t0 = Instant::now();
        let (ack_tx, ack_rx) = unbounded();
        if self.stream.send(StreamCmd::Sync(ack_tx)).is_ok() {
            ack_rx.recv().ok();
        }
        GpuStats::inc(&self.stats.syncs);
        GpuStats::add_duration(&self.stats.sync_wait_ns, t0.elapsed());
    }

    /// `cudaMalloc`: synchronizes the stream, charges the allocation
    /// overhead, and carves `size` bytes out of the arena.
    pub fn alloc(&self, size: usize) -> Result<GpuPtr, GpuError> {
        let _alloc_span =
            memphis_obs::span(memphis_obs::cat::GPU, "alloc").arg("bytes", size as u64);
        self.synchronize();
        let addr = {
            let mut arena = self.arena.lock();
            match arena.alloc(size) {
                Some(a) => a,
                None => {
                    GpuStats::inc(&self.stats.alloc_failures);
                    return Err(GpuError::OutOfMemory {
                        requested: size,
                        largest_free: arena.largest_free_range(),
                        total_free: arena.free_bytes(),
                    });
                }
            }
        };
        if !self.cfg.alloc_overhead.is_zero() {
            std::thread::sleep(self.cfg.alloc_overhead);
        }
        GpuStats::inc(&self.stats.allocs);
        GpuStats::add_duration(&self.stats.alloc_free_wait_ns, self.cfg.alloc_overhead);
        Ok(GpuPtr { addr, size })
    }

    /// `cudaFree`: synchronizes, releases the allocation, and drops any
    /// resident data.
    pub fn free(&self, ptr: GpuPtr) -> Result<(), GpuError> {
        let _free_span =
            memphis_obs::span(memphis_obs::cat::GPU, "free").arg("bytes", ptr.size as u64);
        self.synchronize();
        {
            let mut arena = self.arena.lock();
            arena.free(ptr.addr).ok_or(GpuError::InvalidPointer)?;
        }
        self.data.lock().remove(&ptr.addr);
        if !self.cfg.free_overhead.is_zero() {
            std::thread::sleep(self.cfg.free_overhead);
        }
        GpuStats::inc(&self.stats.frees);
        GpuStats::add_duration(&self.stats.alloc_free_wait_ns, self.cfg.free_overhead);
        Ok(())
    }

    /// Host-to-device copy into an existing allocation: synchronizes and
    /// charges the pageable-transfer cost.
    pub fn copy_to_device(&self, m: &Matrix, ptr: GpuPtr) -> Result<(), GpuError> {
        if self.arena.lock().size_of(ptr.addr) != Some(ptr.size) {
            return Err(GpuError::InvalidPointer);
        }
        let _h2d_span =
            memphis_obs::span(memphis_obs::cat::XFER, "h2d").arg("bytes", m.size_bytes() as u64);
        self.synchronize();
        let delay = GpuConfig::transfer_delay(m.size_bytes(), self.cfg.h2d_ns_per_byte);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        GpuStats::add(&self.stats.h2d_bytes, m.size_bytes() as u64);
        GpuStats::add_duration(&self.stats.transfer_wait_ns, delay);
        self.data.lock().insert(ptr.addr, m.clone());
        Ok(())
    }

    /// Allocates and uploads in one call.
    pub fn upload(&self, m: &Matrix) -> Result<GpuPtr, GpuError> {
        let ptr = self.alloc(m.size_bytes().max(8))?;
        self.copy_to_device(m, ptr)?;
        Ok(ptr)
    }

    /// Device-to-host copy: synchronizes (a barrier, §2.3) and charges the
    /// transfer cost.
    pub fn copy_to_host(&self, ptr: GpuPtr) -> Result<Matrix, GpuError> {
        let _d2h_span =
            memphis_obs::span(memphis_obs::cat::XFER, "d2h").arg("bytes", ptr.size as u64);
        self.synchronize();
        let m = self
            .data
            .lock()
            .get(&ptr.addr)
            .cloned()
            .ok_or(GpuError::NoData)?;
        let delay = GpuConfig::transfer_delay(m.size_bytes(), self.cfg.d2h_ns_per_byte);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        GpuStats::add(&self.stats.d2h_bytes, m.size_bytes() as u64);
        GpuStats::add_duration(&self.stats.transfer_wait_ns, delay);
        Ok(m)
    }

    /// Reads device-resident data without charging transfer costs — for
    /// test assertions only.
    pub fn peek(&self, ptr: GpuPtr) -> Option<Matrix> {
        self.data.lock().get(&ptr.addr).cloned()
    }

    /// Enqueues a kernel on the stream and returns immediately (the host
    /// keeps running — CUDA-style asynchrony).
    pub fn launch(&self, kernel: Kernel) {
        GpuStats::inc(&self.stats.kernels);
        self.stream.send(StreamCmd::Kernel(kernel)).ok();
    }

    /// Enqueues a unary kernel `out = f(in)`.
    pub fn launch_unary<F>(&self, input: GpuPtr, output: GpuPtr, f: F)
    where
        F: FnOnce(&Matrix) -> Matrix + Send + 'static,
    {
        self.launch(Box::new(move |data| {
            if let Some(m) = data.get(&input.addr) {
                let out = f(m);
                data.insert(output.addr, out);
            }
        }));
    }

    /// Enqueues a binary kernel `out = f(a, b)`.
    pub fn launch_binary<F>(&self, a: GpuPtr, b: GpuPtr, output: GpuPtr, f: F)
    where
        F: FnOnce(&Matrix, &Matrix) -> Matrix + Send + 'static,
    {
        self.launch(Box::new(move |data| {
            if let (Some(ma), Some(mb)) = (data.get(&a.addr), data.get(&b.addr)) {
                let out = f(ma, mb);
                data.insert(output.addr, out);
            }
        }));
    }

    /// Full defragmentation: synchronizes, then compacts all live
    /// allocations to the front of the address space. Returns the relocated
    /// pointers, in the same order as `live` — MEMPHIS's last-resort path
    /// (paper §4.2, "rare in practice").
    pub fn defragment(&self, live: &[GpuPtr]) -> Vec<GpuPtr> {
        let _defrag_span =
            memphis_obs::span(memphis_obs::cat::GPU, "defrag").arg("live", live.len() as u64);
        self.synchronize();
        let mut arena = self.arena.lock();
        let mut data = self.data.lock();
        let mut fresh = Arena::new(arena.capacity());
        let mut out = Vec::with_capacity(live.len());
        let mut new_data: DeviceData = HashMap::new();
        for ptr in live {
            let new_addr = fresh
                .alloc(ptr.size)
                .expect("compaction always fits live set");
            if let Some(m) = data.remove(&ptr.addr) {
                new_data.insert(new_addr, m);
            }
            out.push(GpuPtr {
                addr: new_addr,
                size: ptr.size,
            });
        }
        *arena = fresh;
        *data = new_data;
        out
    }
}

impl Drop for GpuDevice {
    fn drop(&mut self) {
        // Close the stream channel by replacing the sender, then join.
        let (tx, _rx) = unbounded();
        let old = std::mem::replace(&mut self.stream, tx);
        drop(old);
        if let Some(h) = self.device_thread.lock().take() {
            h.join().ok();
        }
    }
}

impl GpuStats {
    /// Increments a counter by one.
    #[inline]
    pub fn inc(counter: &std::sync::atomic::AtomicU64) {
        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(counter: &std::sync::atomic::AtomicU64, n: u64) {
        counter.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memphis_matrix::ops::binary::{binary, BinaryOp};
    use memphis_matrix::ops::unary::{unary, UnaryOp};
    use memphis_matrix::rand_gen::rand_uniform;

    fn dev(capacity: usize) -> GpuDevice {
        GpuDevice::new(GpuConfig::zero_cost(capacity))
    }

    #[test]
    fn upload_download_roundtrip() {
        let d = dev(1 << 20);
        let m = rand_uniform(16, 16, -1.0, 1.0, 1);
        let ptr = d.upload(&m).unwrap();
        assert_eq!(d.mem_used(), m.size_bytes());
        let back = d.copy_to_host(ptr).unwrap();
        assert!(back.approx_eq(&m, 0.0));
        d.free(ptr).unwrap();
        assert_eq!(d.mem_used(), 0);
    }

    #[test]
    fn kernels_execute_in_order_asynchronously() {
        let d = dev(1 << 20);
        let m = rand_uniform(8, 8, 0.5, 1.0, 2);
        let input = d.upload(&m).unwrap();
        let mid = d.alloc(m.size_bytes()).unwrap();
        let out = d.alloc(m.size_bytes()).unwrap();
        // Chain: relu → exp, order matters.
        d.launch_unary(input, mid, |x| unary(x, UnaryOp::Relu));
        d.launch_unary(mid, out, |x| unary(x, UnaryOp::Log));
        let got = d.copy_to_host(out).unwrap();
        let expected = unary(&unary(&m, UnaryOp::Relu), UnaryOp::Log);
        assert!(got.approx_eq(&expected, 1e-12));
        assert_eq!(d.stats().kernels, 2);
    }

    #[test]
    fn binary_kernel() {
        let d = dev(1 << 20);
        let a = rand_uniform(4, 4, 0.0, 1.0, 3);
        let b = rand_uniform(4, 4, 0.0, 1.0, 4);
        let pa = d.upload(&a).unwrap();
        let pb = d.upload(&b).unwrap();
        let po = d.alloc(a.size_bytes()).unwrap();
        d.launch_binary(pa, pb, po, |x, y| binary(x, y, BinaryOp::Add).unwrap());
        let got = d.copy_to_host(po).unwrap();
        assert!(got.approx_eq(&binary(&a, &b, BinaryOp::Add).unwrap(), 0.0));
    }

    #[test]
    fn oom_reports_fragmentation() {
        let d = dev(1000);
        let p1 = d.alloc(400).unwrap();
        let _p2 = d.alloc(400).unwrap();
        let err = d.alloc(400).unwrap_err();
        match err {
            GpuError::OutOfMemory {
                requested,
                total_free,
                ..
            } => {
                assert_eq!(requested, 400);
                assert_eq!(total_free, 200);
            }
            other => panic!("unexpected error {other:?}"),
        }
        d.free(p1).unwrap();
        assert!(d.alloc(400).is_ok());
        assert_eq!(d.stats().alloc_failures, 1);
    }

    #[test]
    fn free_invalid_pointer_rejected() {
        let d = dev(1000);
        let bogus = GpuPtr { addr: 123, size: 8 };
        assert_eq!(d.free(bogus), Err(GpuError::InvalidPointer));
        assert_eq!(d.copy_to_host(bogus), Err(GpuError::NoData));
    }

    #[test]
    fn copy_to_device_validates_pointer() {
        let d = dev(1000);
        let m = Matrix::zeros(2, 2);
        let bogus = GpuPtr { addr: 5, size: 32 };
        assert_eq!(d.copy_to_device(&m, bogus), Err(GpuError::InvalidPointer));
    }

    #[test]
    fn sync_counts_barriers() {
        let d = dev(1 << 16);
        let before = d.stats().syncs;
        d.synchronize();
        assert_eq!(d.stats().syncs, before + 1);
        // alloc + free each synchronize too.
        let p = d.alloc(64).unwrap();
        d.free(p).unwrap();
        assert!(d.stats().syncs >= before + 3);
    }

    #[test]
    fn defragment_compacts_live_set() {
        let d = dev(1000);
        let a = d.alloc(200).unwrap();
        let b = d.alloc(200).unwrap();
        let c = d.alloc(200).unwrap();
        let m = rand_uniform(5, 5, 0.0, 1.0, 5);
        d.copy_to_device(&m, c).unwrap();
        d.free(a).unwrap();
        // Hole at front; 400 free total but fragmented.
        d.free(b).unwrap(); // now coalesced front hole of 400
        let live = d.defragment(&[c]);
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].addr, 0, "live allocation moved to front");
        assert_eq!(d.largest_free(), 800);
        let back = d.copy_to_host(live[0]).unwrap();
        assert!(back.approx_eq(&m, 0.0));
    }

    #[test]
    fn transfer_and_compute_counters_accumulate() {
        let d = dev(1 << 20);
        let m = rand_uniform(32, 32, 0.0, 1.0, 6);
        let p = d.upload(&m).unwrap();
        let o = d.alloc(m.size_bytes()).unwrap();
        d.launch_unary(p, o, |x| unary(x, UnaryOp::Relu));
        let _ = d.copy_to_host(o).unwrap();
        let s = d.stats();
        assert_eq!(s.h2d_bytes, m.size_bytes() as u64);
        assert_eq!(s.d2h_bytes, m.size_bytes() as u64);
        assert_eq!(s.kernels, 1);
    }
}
