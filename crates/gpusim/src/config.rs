//! Device configuration and overhead calibration.

use std::time::Duration;

/// Simulated device properties.
///
/// The default calibration reproduces the overhead *ratios* the paper
/// measures in Figure 2(d) for an affine+ReLU mini-batch layer: memory
/// allocation/free ≈ 4.6x and data copy ≈ 9x of the kernel compute time.
/// Absolute values are scaled down so experiments run in seconds.
#[derive(Debug, Clone)]
pub struct GpuConfig {
    /// Device memory capacity in bytes (A40: 48 GB; scaled default 256 MB).
    pub memory_capacity: usize,
    /// `cudaMalloc` overhead — charged on the host *after* a stream sync.
    pub alloc_overhead: Duration,
    /// `cudaFree` overhead — charged on the host after a stream sync.
    pub free_overhead: Duration,
    /// Kernel launch overhead charged on the device thread per kernel.
    pub kernel_launch: Duration,
    /// Host-to-device per-byte cost (pageable transfers; Table 2: 6.1 GB/s
    /// measured from the host on real hardware).
    pub h2d_ns_per_byte: f64,
    /// Device-to-host per-byte cost.
    pub d2h_ns_per_byte: f64,
    /// Device compute speed-up factor versus the host thread: the device
    /// thread busy-executes the real kernel, then the simulated duration is
    /// `real/speedup`. 1.0 means device == CPU core.
    pub compute_speedup: f64,
}

impl GpuConfig {
    /// Zero-overhead configuration for semantic unit tests.
    pub fn zero_cost(memory_capacity: usize) -> Self {
        Self {
            memory_capacity,
            alloc_overhead: Duration::ZERO,
            free_overhead: Duration::ZERO,
            kernel_launch: Duration::ZERO,
            h2d_ns_per_byte: 0.0,
            d2h_ns_per_byte: 0.0,
            compute_speedup: 1.0,
        }
    }

    /// Benchmark calibration: reproduces the Figure 2(d) overhead ratios at
    /// a scale where one mini-batch kernel takes tens of microseconds.
    pub fn calibrated(memory_capacity: usize) -> Self {
        Self {
            memory_capacity,
            alloc_overhead: Duration::from_micros(150),
            free_overhead: Duration::from_micros(80),
            kernel_launch: Duration::from_micros(8),
            h2d_ns_per_byte: 2.0, // ~0.5 GB/s scaled pageable H2D
            d2h_ns_per_byte: 2.0,
            compute_speedup: 4.0,
        }
    }

    /// Transfer delay for `bytes` at the given per-byte cost.
    pub fn transfer_delay(bytes: usize, ns_per_byte: f64) -> Duration {
        Duration::from_nanos((bytes as f64 * ns_per_byte) as u64)
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::calibrated(256 << 20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cost_has_no_overheads() {
        let c = GpuConfig::zero_cost(1024);
        assert_eq!(c.alloc_overhead, Duration::ZERO);
        assert_eq!(c.memory_capacity, 1024);
    }

    #[test]
    fn transfer_delay_is_linear() {
        let a = GpuConfig::transfer_delay(100, 3.0);
        let b = GpuConfig::transfer_delay(200, 3.0);
        assert_eq!(a.as_nanos() * 2, b.as_nanos());
    }

    #[test]
    fn calibrated_ratios_hold() {
        // alloc+free overhead should exceed kernel launch by a large factor
        // (the premise of recycling, Fig 2(d)).
        let c = GpuConfig::default();
        assert!(c.alloc_overhead + c.free_overhead > 10 * c.kernel_launch);
    }
}
