//! First-fit free-list allocator over the device's virtual address space.
//!
//! Unlike a bump allocator, this arena reproduces *real fragmentation*:
//! interleaved allocations and frees of different sizes leave holes, and a
//! request can fail even though total free bytes would suffice — the
//! behaviour MEMPHIS's exact-size recycling policy is designed to avoid
//! (paper §4.2).

use std::collections::BTreeMap;

/// A device address (byte offset into the simulated device memory).
pub type DeviceAddr = u64;

/// Free-list arena over `capacity` bytes of device memory.
#[derive(Debug)]
pub struct Arena {
    capacity: u64,
    /// Free ranges: start address → length, coalesced on free.
    free: BTreeMap<u64, u64>,
    /// Live allocations: start address → length.
    allocated: BTreeMap<u64, u64>,
}

impl Arena {
    /// Creates an arena of `capacity` bytes, fully free.
    pub fn new(capacity: usize) -> Self {
        let mut free = BTreeMap::new();
        if capacity > 0 {
            free.insert(0, capacity as u64);
        }
        Self {
            capacity: capacity as u64,
            free,
            allocated: BTreeMap::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.allocated.values().sum::<u64>() as usize
    }

    /// Bytes currently free (possibly fragmented).
    pub fn free_bytes(&self) -> usize {
        self.free.values().sum::<u64>() as usize
    }

    /// Size of the largest contiguous free range.
    pub fn largest_free_range(&self) -> usize {
        self.free.values().copied().max().unwrap_or(0) as usize
    }

    /// Number of free ranges — a direct fragmentation measure.
    pub fn fragments(&self) -> usize {
        self.free.len()
    }

    /// External fragmentation in `[0, 1]`: 1 - largest_free/total_free.
    pub fn fragmentation(&self) -> f64 {
        let total = self.free_bytes();
        if total == 0 {
            0.0
        } else {
            1.0 - self.largest_free_range() as f64 / total as f64
        }
    }

    /// Allocates `size` bytes first-fit. Returns `None` when no contiguous
    /// free range is large enough (even if total free bytes suffice).
    pub fn alloc(&mut self, size: usize) -> Option<DeviceAddr> {
        if size == 0 {
            return None;
        }
        let size = size as u64;
        let (start, len) = self
            .free
            .iter()
            .find(|(_, &len)| len >= size)
            .map(|(&s, &l)| (s, l))?;
        self.free.remove(&start);
        if len > size {
            self.free.insert(start + size, len - size);
        }
        self.allocated.insert(start, size);
        Some(start)
    }

    /// Frees a previously allocated address, coalescing adjacent free
    /// ranges. Returns the freed size, or `None` for an unknown address.
    pub fn free(&mut self, addr: DeviceAddr) -> Option<usize> {
        let size = self.allocated.remove(&addr)?;
        // Coalesce with the previous free range if adjacent.
        let mut start = addr;
        let mut len = size;
        if let Some((&pstart, &plen)) = self.free.range(..addr).next_back() {
            if pstart + plen == addr {
                self.free.remove(&pstart);
                start = pstart;
                len += plen;
            }
        }
        // Coalesce with the next free range if adjacent.
        if let Some(&nlen) = self.free.get(&(addr + size)) {
            self.free.remove(&(addr + size));
            len += nlen;
        }
        self.free.insert(start, len);
        Some(size as usize)
    }

    /// Size of a live allocation.
    pub fn size_of(&self, addr: DeviceAddr) -> Option<usize> {
        self.allocated.get(&addr).map(|&s| s as usize)
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.allocated.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut a = Arena::new(1000);
        let p = a.alloc(100).unwrap();
        assert_eq!(a.used(), 100);
        assert_eq!(a.size_of(p), Some(100));
        assert_eq!(a.free(p), Some(100));
        assert_eq!(a.used(), 0);
        assert_eq!(a.free_bytes(), 1000);
        assert_eq!(a.fragments(), 1);
    }

    #[test]
    fn zero_and_unknown_rejected() {
        let mut a = Arena::new(100);
        assert!(a.alloc(0).is_none());
        assert!(a.free(55).is_none());
    }

    #[test]
    fn exhaustion_fails() {
        let mut a = Arena::new(100);
        assert!(a.alloc(60).is_some());
        assert!(a.alloc(60).is_none());
        assert!(a.alloc(40).is_some());
    }

    #[test]
    fn fragmentation_blocks_large_alloc() {
        let mut a = Arena::new(300);
        let p1 = a.alloc(100).unwrap();
        let _p2 = a.alloc(100).unwrap();
        let p3 = a.alloc(100).unwrap();
        a.free(p1);
        a.free(p3);
        // 200 bytes free but split into two 100-byte holes.
        assert_eq!(a.free_bytes(), 200);
        assert_eq!(a.largest_free_range(), 100);
        assert!(a.alloc(150).is_none(), "fragmented: no contiguous 150");
        assert!(a.fragmentation() > 0.0);
    }

    #[test]
    fn coalescing_merges_adjacent_holes() {
        let mut a = Arena::new(300);
        let p1 = a.alloc(100).unwrap();
        let p2 = a.alloc(100).unwrap();
        let p3 = a.alloc(100).unwrap();
        a.free(p1);
        a.free(p3);
        a.free(p2); // merges all three
        assert_eq!(a.fragments(), 1);
        assert_eq!(a.largest_free_range(), 300);
        assert!(a.alloc(300).is_some());
    }

    #[test]
    fn first_fit_reuses_earliest_hole() {
        let mut a = Arena::new(400);
        let p1 = a.alloc(100).unwrap();
        let _p2 = a.alloc(100).unwrap();
        a.free(p1);
        let p3 = a.alloc(50).unwrap();
        assert_eq!(p3, p1, "first-fit must reuse the first hole");
    }

    #[test]
    fn live_allocation_count() {
        let mut a = Arena::new(1000);
        let p1 = a.alloc(10).unwrap();
        let _p2 = a.alloc(10).unwrap();
        assert_eq!(a.live_allocations(), 2);
        a.free(p1);
        assert_eq!(a.live_allocations(), 1);
    }
}
