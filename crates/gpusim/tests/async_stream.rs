//! Behavioural tests of the asynchronous kernel stream: the host must be
//! able to run ahead of the device, and synchronization points must drain
//! the queue — the properties MEMPHIS's GPU integration (§2.3, §5.1)
//! relies on.

use memphis_gpusim::{GpuConfig, GpuDevice};
use memphis_matrix::ops::unary::{unary, UnaryOp};
use memphis_matrix::rand_gen::rand_uniform;
use std::time::{Duration, Instant};

#[test]
fn host_runs_ahead_of_slow_kernels() {
    let mut cfg = GpuConfig::zero_cost(8 << 20);
    cfg.kernel_launch = Duration::from_millis(5);
    let d = GpuDevice::new(cfg);
    let m = rand_uniform(8, 8, 0.0, 1.0, 1);
    let input = d.upload(&m).unwrap();
    let out = d.alloc(m.size_bytes()).unwrap();
    let before = d.stats(); // upload/alloc above are sync points themselves
    for _ in 0..10 {
        d.launch_unary(input, out, |x| unary(x, UnaryOp::Relu));
    }
    // Launches must not block the host. Asserting an elapsed-time upper
    // bound here is load-sensitive (the test thread can be descheduled),
    // so check the counters instead: enqueueing hit no synchronization
    // point and spent no time waiting on the stream.
    let s = d.stats();
    assert_eq!(
        s.syncs, before.syncs,
        "launching must not synchronize: {s:?}"
    );
    assert_eq!(
        s.sync_wait_ns, before.sync_wait_ns,
        "host must not wait on the stream: {s:?}"
    );
    let t1 = Instant::now();
    d.synchronize();
    let drain = t1.elapsed();
    assert!(
        drain >= Duration::from_millis(40),
        "sync must wait for the queued kernels: {drain:?}"
    );
}

#[test]
fn alloc_is_a_synchronization_barrier() {
    let mut cfg = GpuConfig::zero_cost(8 << 20);
    cfg.kernel_launch = Duration::from_millis(4);
    let d = GpuDevice::new(cfg);
    let m = rand_uniform(8, 8, 0.0, 1.0, 2);
    let input = d.upload(&m).unwrap();
    let out = d.alloc(m.size_bytes()).unwrap();
    for _ in 0..5 {
        d.launch_unary(input, out, |x| unary(x, UnaryOp::Relu));
    }
    let t0 = Instant::now();
    let extra = d.alloc(64).unwrap(); // cudaMalloc → drains the stream
    assert!(
        t0.elapsed() >= Duration::from_millis(16),
        "alloc must synchronize"
    );
    d.free(extra).unwrap();
}

#[test]
fn concurrent_hosts_share_one_stream_safely() {
    let d = std::sync::Arc::new(GpuDevice::new(GpuConfig::zero_cost(8 << 20)));
    let m = rand_uniform(16, 16, 0.5, 1.0, 3);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let d = d.clone();
            let m = m.clone();
            std::thread::spawn(move || {
                let input = d.upload(&m).unwrap();
                let out = d.alloc(m.size_bytes()).unwrap();
                d.launch_unary(input, out, |x| unary(x, UnaryOp::Sqrt));
                let got = d.copy_to_host(out).unwrap();
                assert!(got.approx_eq(&unary(&m, UnaryOp::Sqrt), 1e-12));
                d.free(out).unwrap();
                d.free(input).unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(d.mem_used(), 0);
}
